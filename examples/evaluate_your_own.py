#!/usr/bin/env python
"""Worked example for METHODOLOGY.md: evaluate a brand-new mechanism.

The candidate is a **polling guard lock** ("SpinGuard"): `enter(guard)`
simply re-checks its guard in a yield loop — no queues, no signalling, the
simplest conceivable conditional mutex.  We put it through the paper's
methodology:

1. solve three suite problems with it (bounded buffer, one-slot buffer,
   FCFS resource);
2. describe the solutions (components + constraint realizations);
3. run the oracle batteries and the criteria;
4. read off the verdict — and watch the FCFS battery expose the
   mechanism's real deficiency (no queue = no arrival-order guarantee),
   exactly the §4.1 "the attempt makes it obvious" effect.

Run:  python examples/evaluate_your_own.py
"""

from repro.core import (
    Component,
    ConstraintRealization,
    Directness,
    Evaluator,
    InformationType,
    ModularityProfile,
    SolutionDescription,
)
from repro.problems import bounded_buffer, fcfs_resource, one_slot_buffer
from repro.problems.base import SolutionBase
from repro.resources import BoundedBuffer, SlotBuffer
from repro.runtime import Scheduler

T2 = InformationType.REQUEST_TIME
T4 = InformationType.SYNC_STATE
T5 = InformationType.LOCAL_STATE
T6 = InformationType.HISTORY


# ----------------------------------------------------------------------
# 0. The new mechanism: ~20 lines
# ----------------------------------------------------------------------
class SpinGuard:
    """``enter(guard)`` polls until the lock is free and the guard holds.

    Deliberately primitive: no wait queue, so who gets in after a release
    is whoever the scheduler happens to run first.
    """

    def __init__(self, sched, name="spin"):
        self._sched = sched
        self.name = name
        self._held = False

    def enter(self, guard=None):
        while self._held or (guard is not None and not guard()):
            yield  # poll again next time we are scheduled
        self._held = True

    def leave(self):
        self._held = False


# ----------------------------------------------------------------------
# 1. Suite solutions
# ----------------------------------------------------------------------
class SpinBoundedBuffer(SolutionBase):
    problem = "bounded_buffer"
    mechanism = "spinguard"

    def __init__(self, sched, capacity=4, name="buf"):
        super().__init__(sched, name)
        self.buffer = BoundedBuffer(capacity)
        self.lock = SpinGuard(sched, name + ".spin")

    def put(self, item, work=0):
        self._request("put", item)
        yield from self.lock.enter(lambda: not self.buffer.full)
        self._start("put")
        yield from self.buffer.put(item)
        yield from self._work(work)
        self._finish("put")
        self.lock.leave()

    def get(self, work=0):
        self._request("get")
        yield from self.lock.enter(lambda: not self.buffer.empty)
        self._start("get")
        item = yield from self.buffer.get()
        yield from self._work(work)
        self._finish("get")
        self.lock.leave()
        return item


class SpinOneSlotBuffer(SolutionBase):
    problem = "one_slot_buffer"
    mechanism = "spinguard"

    def __init__(self, sched, name="slot"):
        super().__init__(sched, name)
        self.slot = SlotBuffer()
        self.lock = SpinGuard(sched, name + ".spin")

    def put(self, item):
        self._request("put", item)
        yield from self.lock.enter(lambda: not self.slot.occupied)
        self._start("put")
        yield from self.slot.put(item)
        self._finish("put")
        self.lock.leave()

    def get(self):
        self._request("get")
        yield from self.lock.enter(lambda: self.slot.occupied)
        self._start("get")
        item = yield from self.slot.get()
        self._finish("get")
        self.lock.leave()
        return item


class SpinFcfsResource(SolutionBase):
    """The doomed attempt: SpinGuard has no queue, so 'first come' is
    whatever the scheduler feels like."""

    problem = "fcfs_resource"
    mechanism = "spinguard"

    def __init__(self, sched, name="res"):
        super().__init__(sched, name)
        self.lock = SpinGuard(sched, name + ".spin")

    def use(self, work=1):
        self._request("use")
        yield from self.lock.enter()
        self._start("use")
        yield from self._work(work)
        self._finish("use")
        self.lock.leave()


# ----------------------------------------------------------------------
# 2. Descriptions
# ----------------------------------------------------------------------
def spin_description(problem, realizations):
    return SolutionDescription(
        problem=problem,
        mechanism="spinguard",
        components=(
            Component("lock:spin", "semaphore", "polling guard lock"),
            Component("guard:condition", "guard", "re-polled predicate"),
        ),
        realizations=realizations,
        modularity=ModularityProfile(False, True, False,
                                     "lock calls at every point of use"),
    )


BUFFER_DESCRIPTION = spin_description("bounded_buffer", (
    ConstraintRealization(
        "buffer_bounds", ("guard:condition",), ("polled_guard",),
        Directness.DIRECT, info_handling={T5: Directness.DIRECT},
    ),
    ConstraintRealization(
        "buffer_mutex", ("lock:spin",), ("polled_guard",),
        Directness.DIRECT, info_handling={T4: Directness.INDIRECT},
    ),
))

SLOT_DESCRIPTION = spin_description("one_slot_buffer", (
    ConstraintRealization(
        "slot_alternation", ("guard:condition",), ("polled_guard",),
        Directness.DIRECT, info_handling={T6: Directness.DIRECT},
    ),
))

FCFS_DESCRIPTION = spin_description("fcfs_resource", (
    ConstraintRealization(
        "resource_mutex", ("lock:spin",), ("polled_guard",),
        Directness.DIRECT, info_handling={T4: Directness.INDIRECT},
    ),
    ConstraintRealization(
        "arrival_order", (), (),
        Directness.UNSUPPORTED,
        info_handling={T2: Directness.UNSUPPORTED},
        notes="no queue: whoever polls first after a release wins",
    ),
))


# ----------------------------------------------------------------------
# 3. Run the methodology
# ----------------------------------------------------------------------
def main():
    evaluator = Evaluator()
    evaluator.add(
        BUFFER_DESCRIPTION,
        bounded_buffer.make_verifier(lambda s: SpinBoundedBuffer(s)),
    )
    evaluator.add(
        SLOT_DESCRIPTION,
        one_slot_buffer.make_verifier(lambda s: SpinOneSlotBuffer(s)),
    )
    evaluator.add(
        FCFS_DESCRIPTION,
        fcfs_resource.make_verifier(lambda s: SpinFcfsResource(s)),
    )
    report = evaluator.evaluate()
    print(report.render())

    print()
    verdicts = {e.key: e.verified for e in report.entries}
    print("bounded_buffer/spinguard verified:", verdicts["bounded_buffer/spinguard"])
    print("one_slot_buffer/spinguard verified:", verdicts["one_slot_buffer/spinguard"])
    print("fcfs_resource/spinguard verified:", verdicts["fcfs_resource/spinguard"],
          " <- the attempt made the deficiency obvious (section 4.1)")
    assert verdicts["bounded_buffer/spinguard"] is True
    assert verdicts["one_slot_buffer/spinguard"] is True
    # No queue -> arrival order is luck; the FCFS battery catches it.
    assert verdicts["fcfs_resource/spinguard"] is False
    failures = [e for e in report.failures()][0]
    print("\nexample violation:", failures.violations[0])


if __name__ == "__main__":
    main()
