#!/usr/bin/env python
"""Disk-head scheduling: the elevator under three mechanisms vs FCFS.

Generates a contended request batch, runs it through the monitor (Hoare
priority waits), serializer (guarantee-order queue), and open-path (guarded)
elevator implementations plus the FCFS semaphore baseline, and compares
service orders and total seek distance.

Run:  python examples/disk_scheduling.py
"""

from repro.core import ascii_table
from repro.problems.disk_scheduler import (
    MonitorDiskScheduler,
    OpenPathDiskScheduler,
    SemaphoreDiskFcfs,
    SerializerDiskScheduler,
    random_plan,
    run_requests,
)


def main() -> None:
    plan = random_plan(seed=42, requests=14)
    print("request batch (delay, track):", plan)
    print()

    rows = []
    for cls in (
        MonitorDiskScheduler,
        SerializerDiskScheduler,
        OpenPathDiskScheduler,
        SemaphoreDiskFcfs,
    ):
        __, impl = run_requests(lambda sched, c=cls: c(sched), plan)
        rows.append([
            cls.__name__,
            impl.mechanism,
            str(impl.disk.total_seek),
            " ".join(str(t) for t in impl.disk.served),
        ])
    print(ascii_table(
        ["scheduler", "mechanism", "total seek", "service order"],
        rows,
        "Elevator vs FCFS on one batch",
    ))

    scan_seek = int(rows[0][2])
    fcfs_seek = int(rows[3][2])
    print("\nSCAN saves {} tracks of head travel ({:.0%} of FCFS).".format(
        fcfs_seek - scan_seek, (fcfs_seek - scan_seek) / fcfs_seek
    ))


if __name__ == "__main__":
    main()
