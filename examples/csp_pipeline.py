#!/usr/bin/env python
"""CSP demo: the §6 future-work mechanism in action.

Builds three things on synchronous channels:

1. a process pipeline (producer → doubler → printer) — communication as the
   only synchronization;
2. the guarded-select bounded buffer (the CSP '78 classic) from the problem
   suite, with an execution timeline;
3. the readers/writers server, showing that select-arm order IS the
   priority constraint.

Run:  python examples/csp_pipeline.py
"""

from repro.mechanisms import Channel
from repro.problems.bounded_buffer import CspBoundedBuffer
from repro.problems.readers_writers import (
    BURST_PLAN,
    CspReadersPriority,
    run_workload,
)
from repro.runtime import Scheduler, render_timeline
from repro.verify import check_no_overtake


def pipeline_demo() -> None:
    print("=" * 60)
    print("1. Pure channel pipeline: produce -> double -> collect")
    sched = Scheduler()
    raw = Channel(sched, "raw")
    doubled = Channel(sched, "doubled")
    collected = []

    def producer():
        for i in range(5):
            yield from raw.send(i)

    def doubler():
        while True:
            value = yield from raw.receive()
            yield from doubled.send(value * 2)

    def collector():
        for __ in range(5):
            value = yield from doubled.receive()
            collected.append(value)

    sched.spawn(producer, name="producer")
    sched.spawn(doubler, name="doubler", daemon=True)
    sched.spawn(collector, name="collector")
    sched.run()
    print("   collected:", collected)
    assert collected == [0, 2, 4, 6, 8]


def buffer_demo() -> None:
    print("=" * 60)
    print("2. Guarded-select bounded buffer (CSP '78)")
    sched = Scheduler()
    buffer = CspBoundedBuffer(sched, capacity=2, name="buf")
    got = []

    def producer():
        for i in range(6):
            yield from buffer.put(i)

    def consumer():
        for __ in range(6):
            item = yield from buffer.get()
            got.append(item)

    sched.spawn(producer, name="producer")
    sched.spawn(consumer, name="consumer")
    result = sched.run()
    print("   consumed:", got)
    print(render_timeline(
        result.trace, {"buf.put": "P", "buf.get": "G"}, width=64
    ))


def readers_writers_demo() -> None:
    print("=" * 60)
    print("3. Readers/writers server: arm order = priority")
    result = run_workload(
        lambda sched: CspReadersPriority(sched), BURST_PLAN
    )
    print(render_timeline(
        result.trace, {"db.read": "R", "db.write": "W"}, width=72
    ))
    violations = check_no_overtake(result.trace, "db", "read", "write")
    print("   readers-priority oracle:", "PASS" if not violations else violations)
    assert not violations


def main() -> None:
    pipeline_demo()
    buffer_demo()
    readers_writers_demo()


if __name__ == "__main__":
    main()
