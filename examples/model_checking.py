#!/usr/bin/env python
"""Schedule exploration demo: find a concurrency bug automatically.

Two versions of a tiny account-transfer system share the same API; one
takes the lock correctly, the other reads a balance *before* acquiring the
lock (a TOCTOU bug that only bites under particular interleavings).  The
exploration engine enumerates every schedule of a 2-process workload —
with equivalence pruning, so the correct version's proof costs fewer
runs — proves the correct version safe, finds a witness schedule for the
buggy one, shrinks it to a locally minimal decision string, and replays
it deterministically.

This is the same machinery experiment E5 uses to rediscover the paper's
footnote-3 anomaly (see also ``python -m repro explore``).

Run:  python examples/model_checking.py
"""

from repro.explore import ExplorationEngine, minimize_witness
from repro.runtime import Mutex, Scheduler, ScriptedPolicy


def make_system(buggy):
    """Returns build_and_run(policy) for a two-transfer workload."""

    def build_and_run(policy):
        sched = Scheduler(policy=policy, preemptive=True)
        lock = Mutex(sched, "account")
        account = {"balance": 100}
        # Register the shared user state so equivalence pruning may not
        # alias states that differ only in the balance (DESIGN.md §9).
        sched.add_fingerprint_provider(lambda: account["balance"])

        def withdraw(amount):
            def body():
                if buggy:
                    observed = account["balance"]  # read OUTSIDE the lock
                    yield from lock.acquire()
                else:
                    yield from lock.acquire()
                    observed = account["balance"]
                yield  # the race window
                account["balance"] = observed - amount
                lock.release()
            return body

        sched.spawn(withdraw(30), name="T1")
        sched.spawn(withdraw(20), name="T2")
        result = sched.run()
        result.results["balance"] = account["balance"]
        return result

    return build_and_run


def check(run):
    return (
        ["lost update: balance={}".format(run.results["balance"])]
        if run.results["balance"] != 50
        else []
    )


def main() -> None:
    print("Exploring the CORRECT system (lock before read):")
    naive = ExplorationEngine(make_system(buggy=False), max_runs=5000)
    outcome = naive.explore(check)
    pruned = ExplorationEngine(
        make_system(buggy=False), max_runs=5000, prune=True
    ).explore(check)
    print("  schedules explored: {} naive / {} pruned, exhausted: {}, "
          "violations: {}".format(
              outcome.runs, pruned.runs, outcome.exhausted,
              len(outcome.violations)))
    assert outcome.ok and outcome.exhausted
    assert pruned.ok and pruned.exhausted and pruned.runs <= outcome.runs

    print("\nExploring the BUGGY system (read before lock):")
    buggy = ExplorationEngine(
        make_system(buggy=True), max_runs=5000, prune=True
    )
    outcome = buggy.explore(check, stop_at_first=True)
    witness = outcome.witness
    print("  witness schedule found after {} runs: {}".format(
        outcome.runs, list(witness)
    ))

    print("\nShrinking the witness (ddmin to local minimality):")
    shrunk = minimize_witness(make_system(buggy=True), check, witness)
    print("  {} -> {} decisions in {} test runs: {}".format(
        len(shrunk.original), len(shrunk.minimized), shrunk.tests,
        list(shrunk.minimized)
    ))

    print("\nReplaying the minimized witness deterministically:")
    replay = make_system(buggy=True)(ScriptedPolicy(list(shrunk.minimized)))
    print("  final balance: {} (expected 50)".format(
        replay.results["balance"]
    ))
    assert replay.results["balance"] != 50
    print("  -> the lost update reproduces on demand; fix and re-explore.")


if __name__ == "__main__":
    main()
