#!/usr/bin/env python
"""Schedule exploration demo: find a concurrency bug automatically.

Two versions of a tiny account-transfer system share the same API; one
takes the lock correctly, the other reads a balance *before* acquiring the
lock (a TOCTOU bug that only bites under particular interleavings).  The
explorer enumerates every schedule of a 2-process workload, proves the
correct version safe, finds a witness schedule for the buggy one, and
replays the witness deterministically.

This is the same machinery experiment E5 uses to rediscover the paper's
footnote-3 anomaly.

Run:  python examples/model_checking.py
"""

from repro.runtime import Mutex, Scheduler, ScriptedPolicy
from repro.verify import ScheduleExplorer


def make_system(buggy):
    """Returns build_and_run(policy) for a two-transfer workload."""

    def build_and_run(policy):
        sched = Scheduler(policy=policy, preemptive=True)
        lock = Mutex(sched, "account")
        account = {"balance": 100}

        def withdraw(amount):
            def body():
                if buggy:
                    observed = account["balance"]  # read OUTSIDE the lock
                    yield from lock.acquire()
                else:
                    yield from lock.acquire()
                    observed = account["balance"]
                yield  # the race window
                account["balance"] = observed - amount
                lock.release()
            return body

        sched.spawn(withdraw(30), name="T1")
        sched.spawn(withdraw(20), name="T2")
        result = sched.run()
        result.results["balance"] = account["balance"]
        return result

    return build_and_run


def check(run):
    return (
        ["lost update: balance={}".format(run.results["balance"])]
        if run.results["balance"] != 50
        else []
    )


def main() -> None:
    print("Exploring the CORRECT system (lock before read):")
    correct = ScheduleExplorer(make_system(buggy=False), max_runs=5000)
    outcome = correct.explore(check)
    print("  schedules explored: {}, exhausted: {}, violations: {}".format(
        outcome.runs, outcome.exhausted, len(outcome.violations)
    ))
    assert outcome.ok and outcome.exhausted

    print("\nExploring the BUGGY system (read before lock):")
    buggy = ScheduleExplorer(make_system(buggy=True), max_runs=5000)
    outcome = buggy.explore(check, stop_at_first=True)
    witness = outcome.witness
    print("  witness schedule found after {} runs: {}".format(
        outcome.runs, list(witness)
    ))

    print("\nReplaying the witness deterministically:")
    replay = make_system(buggy=True)(ScriptedPolicy(list(witness)))
    print("  final balance: {} (expected 50)".format(
        replay.results["balance"]
    ))
    assert replay.results["balance"] != 50
    print("  -> the lost update reproduces on demand; fix and re-explore.")


if __name__ == "__main__":
    main()
