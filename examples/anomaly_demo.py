#!/usr/bin/env python
"""Demonstrate the paper's footnote-3 anomaly (experiment E5).

The paper's Figure-1 readers-priority path-expression solution does not
actually implement Courtois–Heymans–Parnas readers priority: when a second
writer attempts while the first is writing, a reader arriving next is
overtaken.  This script runs the exact scenario on both the Figure-1 path
program and the Courtois monitor solution, prints the access orders side by
side, and lets the schedule explorer rediscover the anomaly on its own.

Run:  python examples/anomaly_demo.py
"""

from repro.problems.readers_writers.anomaly import (
    footnote3_workload,
    render_report,
    run_footnote3_comparison,
)
from repro.problems.readers_writers.pathexpr_impl import (
    FIGURE1_PATHS,
    PathReadersPriority,
)


def main() -> None:
    print("The Figure-1 path program under test:")
    print(FIGURE1_PATHS)

    report = run_footnote3_comparison(explore=True)
    print(render_report(report))

    print("\nBlow-by-blow trace of the anomalous run (path solution):")
    result = footnote3_workload(lambda sched: PathReadersPriority(sched))
    for ev in result.trace:
        if ev.kind in ("request", "op_start", "op_end") and (
            ev.obj.startswith("db.") or "openwrite" in ev.obj
        ):
            print("  " + str(ev))

    assert report.reproduced


if __name__ == "__main__":
    main()
