#!/usr/bin/env python
"""Run the paper's complete evaluation methodology.

This is the headline example: it verifies all 34 registered solutions
(problem × mechanism) against their oracle batteries, then prints the
paper's §5-style result tables — expressive power per information type,
constraint-kind support, modularity, gate usage, constraint independence,
and solution sizes.

Run:  python examples/evaluate_mechanisms.py
"""

from repro.analysis import (
    measure_all,
    per_mechanism_totals,
    render_independence,
    render_totals,
    summarize_independence,
)
from repro.core import coverage_matrix, render_coverage
from repro.problems.registry import all_solutions, build_evaluator


def main() -> None:
    print(render_coverage(coverage_matrix()))
    print()

    evaluator = build_evaluator()
    report = evaluator.evaluate()

    descriptions = [entry.description for entry in all_solutions()]
    report.extras["Constraint independence (section 4.2)"] = (
        render_independence(summarize_independence(descriptions))
        .split("\n", 2)[2]  # body only; the report adds its own heading
    )
    report.extras["Per-mechanism size totals"] = render_totals(
        per_mechanism_totals(measure_all(descriptions))
    ).split("\n", 2)[2]

    print(report.render())

    failures = report.failures()
    print()
    if failures:
        print("FAILED solutions:", [entry.key for entry in failures])
    else:
        print("All {} solutions verified against their oracle batteries.".format(
            sum(1 for e in report.entries if e.verifier is not None)
        ))


if __name__ == "__main__":
    main()
