#!/usr/bin/env python
"""Path-expression playground: write a path program, watch it execute.

Feeds several path programs — including the numeric operator and a
deliberately over-constrained one that deadlocks — through the parser, the
Campbell–Habermann semaphore translation, and the deterministic runtime,
printing what each program permits.

Run:  python examples/pathexpr_playground.py
Pass your own program as an argument:
      python examples/pathexpr_playground.py "path a ; { b } end" a b b a
"""

import sys

from repro.mechanisms.pathexpr import PathResource, parse_paths
from repro.runtime import DeadlockError, Scheduler


def run_program(program: str, invocations):
    """Compile ``program`` and invoke the listed operations concurrently
    (one process per invocation, FIFO schedule).  Returns the op_start order
    or the deadlock diagnosis."""
    sched = Scheduler()
    res = PathResource(sched, program, name="r")

    def caller(op):
        def body():
            yield from res.invoke(op)
        return body

    for index, op in enumerate(invocations):
        sched.spawn(caller(op), name="{}#{}".format(op, index))
    try:
        result = sched.run()
    except DeadlockError as deadlock:
        return "DEADLOCK: {}".format(deadlock)
    order = [
        ev.obj.split(".", 1)[1]
        for ev in result.trace.projection("op_start")
    ]
    blocked = result.blocked
    suffix = "  (blocked: {})".format(blocked) if blocked else ""
    return " -> ".join(order) + suffix


DEMOS = [
    ("one-slot buffer (history via sequencing)",
     "path put ; get end",
     ["get", "put", "get", "put"]),
    ("readers-writers exclusion (burst + selection)",
     "path { read } , write end",
     ["read", "read", "write", "read"]),
    ("capacity-2 buffer (numeric operator)",
     "path 2 : ( put ; get ) end  path put , get end",
     ["put", "put", "put", "get", "get", "get"]),
    ("handshake across two paths",
     "path a ; b end  path b ; c end",
     ["c", "b", "a"]),
    ("over-constrained: b can never run first",
     "path a ; b end",
     ["b"]),
]


def main() -> None:
    if len(sys.argv) > 2:
        program, invocations = sys.argv[1], sys.argv[2:]
        print(run_program(program, invocations))
        return
    for title, program, invocations in DEMOS:
        print("=" * 60)
        print(title)
        for path in parse_paths(program):
            print("   ", path.unparse())
        print("  invoke:", " ".join(invocations))
        outcome = run_program(program, invocations)
        print("  result:", outcome)


if __name__ == "__main__":
    main()
