#!/usr/bin/env python
"""Quickstart: a producer/consumer system on the deterministic runtime.

Builds a monitor-protected bounded buffer from the library's problem suite,
runs producers and consumers against it, prints the consumed values, a slice
of the execution trace, and the oracle verdicts — the whole round trip in
~40 lines of user code.

Run:  python examples/quickstart.py
"""

from repro.problems.bounded_buffer import MonitorBoundedBuffer
from repro.runtime import Scheduler
from repro.verify import check_mutual_exclusion


def main() -> None:
    sched = Scheduler()
    buffer = MonitorBoundedBuffer(sched, capacity=3, name="buf")
    consumed = []

    def producer(tag, count):
        def body():
            for i in range(count):
                yield from buffer.put("{}{}".format(tag, i))
        return body

    def consumer(count):
        def body():
            for __ in range(count):
                item = yield from buffer.get()
                consumed.append(item)
        return body

    sched.spawn(producer("a", 4), name="producer-a")
    sched.spawn(producer("b", 4), name="producer-b")
    sched.spawn(consumer(8), name="consumer")
    result = sched.run()

    print("consumed:", consumed)
    print("\nfirst 12 trace events:")
    print(result.trace.render(limit=12))

    violations = check_mutual_exclusion(
        result.trace, "buf", exclusive_ops=["put", "get"]
    )
    print("\nmutual-exclusion oracle:", "PASS" if not violations else violations)
    assert consumed and not violations


if __name__ == "__main__":
    main()
