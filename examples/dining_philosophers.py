#!/usr/bin/env python
"""Dining philosophers: multi-resource deadlock, found and fixed.

The paper's framework covers single shared resources; this example shows
the library's runtime and explorer handle the classic *multi*-resource
pathology too:

1. the naive solution (every philosopher grabs the left fork first) — the
   explorer finds the circular-wait schedule automatically;
2. the ordered-acquisition fix (lowest-numbered fork first) — verified
   deadlock-free over the *entire* schedule space;
3. a monitor-based solution in the §2 style (a table monitor that only
   admits a philosopher when both forks are free) — also exhaustively
   verified, and starvation-aware via the trace.

Run:  python examples/dining_philosophers.py
"""

from repro.mechanisms import Monitor
from repro.runtime import Mutex, Scheduler, ScriptedPolicy
from repro.verify import ScheduleExplorer

N = 3  # philosophers (3 keeps the exhaustive space small)
MEALS = 1


def naive_system(policy):
    """Left fork first: circular wait is reachable."""
    sched = Scheduler(policy=policy, preemptive=True)
    forks = [Mutex(sched, "fork{}".format(i)) for i in range(N)]
    eaten = {"count": 0}

    def philosopher(i):
        def body():
            for __ in range(MEALS):
                left, right = forks[i], forks[(i + 1) % N]
                yield from left.acquire()
                yield from right.acquire()
                eaten["count"] += 1
                right.release()
                left.release()
        return body

    for i in range(N):
        sched.spawn(philosopher(i), name="phil{}".format(i))
    result = sched.run(on_deadlock="return")
    result.results["eaten"] = eaten["count"]
    return result


def ordered_system(policy):
    """Global fork order: the circular wait is impossible."""
    sched = Scheduler(policy=policy, preemptive=True)
    forks = [Mutex(sched, "fork{}".format(i)) for i in range(N)]

    def philosopher(i):
        def body():
            for __ in range(MEALS):
                a, b = sorted((i, (i + 1) % N))
                yield from forks[a].acquire()
                yield from forks[b].acquire()
                forks[b].release()
                forks[a].release()
        return body

    for i in range(N):
        sched.spawn(philosopher(i), name="phil{}".format(i))
    return sched.run(on_deadlock="return")


def monitor_system(policy):
    """A table monitor in the §2 style: admission only with both forks."""
    sched = Scheduler(policy=policy, preemptive=True)
    mon = Monitor(sched, "table")
    can_eat = [mon.condition("can_eat{}".format(i)) for i in range(N)]
    fork_free = [True] * N

    def pick_up(i):
        yield from mon.enter()
        while not (fork_free[i] and fork_free[(i + 1) % N]):
            yield from can_eat[i].wait()
        fork_free[i] = fork_free[(i + 1) % N] = False
        mon.exit()

    def put_down(i):
        yield from mon.enter()
        fork_free[i] = fork_free[(i + 1) % N] = True
        yield from can_eat[(i - 1) % N].signal()
        yield from can_eat[(i + 1) % N].signal()
        mon.exit()

    def philosopher(i):
        def body():
            for __ in range(MEALS):
                yield from pick_up(i)
                yield
                yield from put_down(i)
        return body

    for i in range(N):
        sched.spawn(philosopher(i), name="phil{}".format(i))
    return sched.run(on_deadlock="return")


def deadlock_check(run):
    return ["deadlock: {}".format(run.blocked)] if run.deadlocked else []


def main() -> None:
    print("Naive (left fork first): hunting for the circular wait...")
    explorer = ScheduleExplorer(naive_system, max_runs=20000, max_depth=100)
    outcome = explorer.explore(deadlock_check, stop_at_first=True)
    assert outcome.witness is not None
    print("  deadlock witness found after {} schedules: {}".format(
        outcome.runs, list(outcome.witness)
    ))
    replay = naive_system(ScriptedPolicy(list(outcome.witness)))
    print("  replay blocked processes: {} (ate {} meals)".format(
        replay.blocked, replay.results["eaten"]
    ))

    print("\nOrdered acquisition: verifying the whole schedule space...")
    explorer = ScheduleExplorer(ordered_system, max_runs=200000, max_depth=200)
    outcome = explorer.explore(deadlock_check)
    print("  schedules: {}, exhausted: {}, deadlocks: {}".format(
        outcome.runs, outcome.exhausted, len(outcome.violations)
    ))
    assert outcome.ok and outcome.exhausted

    print("\nTable monitor: verifying the whole schedule space...")
    explorer = ScheduleExplorer(monitor_system, max_runs=200000, max_depth=200)
    outcome = explorer.explore(deadlock_check)
    print("  schedules: {}, exhausted: {}, deadlocks: {}".format(
        outcome.runs, outcome.exhausted, len(outcome.violations)
    ))
    assert outcome.ok and outcome.exhausted


if __name__ == "__main__":
    main()
