"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``evaluate``      — run the full methodology (verifies all solutions,
  prints the §5-style tables).  ``--fast`` skips the verifier batteries.
* ``coverage``      — the footnote-2 problem/information-type matrix.
* ``independence``  — the §4.2 constraint-independence table.
* ``anomaly``       — the footnote-3 demonstration (experiment E5).
* ``pairs``         — the §4.2 pairwise information-type check.
* ``list``          — every registered solution.
* ``timeline``      — render one solution's schedule as an ASCII Gantt
  chart (``--problem``/``--mechanism`` select the solution).
* ``robustness``    — chaos-explore every mechanism (kill a process at
  every reachable fault point across schedules) and print the
  fault-containment table.  ``--fast`` trims the schedule budget;
  ``--json`` emits machine-readable results.
* ``profile``       — run one (problem, mechanism) workload under full
  instrumentation: metrics report, ASCII span timeline, contention bars;
  ``--export chrome --out trace.json`` writes a Perfetto-loadable trace.
* ``metrics``       — profile every registered pair (filter with
  ``--problem``/``--mechanism``) and tabulate the counters side by side.
* ``explore``       — exhaustively explore one solution's schedule space
  (``repro explore <problem> <mechanism>``): equivalence-pruned search,
  ``--workers N`` for a parallel frontier, ``--minimize`` to shrink a
  found witness; ``repro explore list`` names the available targets.

``--seed`` (where accepted) switches the run to a seeded random scheduling
policy; omitting it keeps the deterministic FIFO schedule.  ``--json``
everywhere prints machine-readable output instead of tables.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from .analysis import (
        render_independence,
        summarize_independence,
    )
    from .problems.registry import all_solutions, build_evaluator

    report = build_evaluator().evaluate(run_verifiers=not args.fast)
    descriptions = [e.description for e in all_solutions()]
    report.extras["Constraint independence (section 4.2)"] = (
        render_independence(summarize_independence(descriptions))
        .split("\n", 2)[2]
    )
    print(report.render())
    failures = report.failures()
    if failures:
        print("\nFAILED:", [e.key for e in failures])
        return 1
    return 0


def _cmd_coverage(args: argparse.Namespace) -> int:
    from .core import coverage_matrix, render_coverage, uncovered_types

    print(render_coverage(coverage_matrix()))
    gaps = uncovered_types()
    print(
        "\nuncovered information types:",
        ", ".join(t.short for t in gaps) if gaps else "none (complete suite)",
    )
    return 0


def _cmd_independence(args: argparse.Namespace) -> int:
    from .analysis import render_independence, summarize_independence
    from .problems.registry import all_solutions

    descriptions = [e.description for e in all_solutions()]
    print(render_independence(summarize_independence(descriptions)))
    return 0


def _cmd_anomaly(args: argparse.Namespace) -> int:
    from .problems.readers_writers.anomaly import (
        render_report,
        run_footnote3_comparison,
    )

    report = run_footnote3_comparison(explore=not args.fast)
    print(render_report(report))
    return 0 if report.reproduced else 1


def _cmd_pairs(args: argparse.Namespace) -> int:
    from .core import conflicting_pairs, pair_coverage, render_pair_coverage
    from .problems.registry import all_solutions

    descriptions = [e.description for e in all_solutions()]
    print(render_pair_coverage(
        pair_coverage(), conflicting_pairs(descriptions)
    ))
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    from .core import ascii_table
    from .problems.registry import all_solutions

    rows = [
        [entry.problem, entry.mechanism, entry.notes]
        for entry in all_solutions()
    ]
    print(ascii_table(["problem", "mechanism", "notes"], rows,
                      "Registered solutions"))
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    from .problems.readers_writers import BURST_PLAN, run_workload
    from .problems.registry import get_solution
    from .runtime import render_timeline

    try:
        entry = get_solution(args.problem, args.mechanism)
    except KeyError:
        print("no such solution: {}/{}".format(args.problem, args.mechanism))
        return 1
    if args.problem not in ("readers_priority", "writers_priority", "rw_fcfs"):
        print("timeline currently supports the readers/writers family")
        return 1
    result = run_workload(entry.factory, BURST_PLAN,
                          policy=_seed_policy(args))
    print(render_timeline(
        result.trace, {"db.read": "R", "db.write": "W"}, width=args.width
    ))
    return 0


def _cmd_robustness(args: argparse.Namespace) -> int:
    from .verify.chaos import expected_classifications, robustness_report

    results, table = robustness_report(fast=args.fast)
    expected = expected_classifications()
    surprises = [
        "{}: got {}, fault model predicts {}".format(
            r.name, r.classification, expected[r.name]
        )
        for r in results
        if r.classification != expected[r.name]
    ]
    if args.json:
        print(json.dumps({
            "scenarios": [
                {
                    "name": r.name,
                    "victim": r.victim,
                    "runs": r.runs,
                    "contained": r.contained,
                    "propagated": r.propagated,
                    "deadlocked": r.deadlocked,
                    "violations": r.violations,
                    "classification": r.classification,
                    "expected": expected[r.name],
                }
                for r in results
            ],
            "surprises": surprises,
        }, indent=2))
        return 1 if surprises else 0
    print(table)
    if surprises:
        print("\nUNEXPECTED:", *surprises, sep="\n  ")
        return 1
    print("\nall classifications match the fault model (DESIGN.md)")
    return 0


def _seed_policy(args: argparse.Namespace):
    """``--seed N`` -> a seeded random policy; None keeps FIFO determinism."""
    if getattr(args, "seed", None) is None:
        return None
    from .runtime.policies import RandomPolicy

    return RandomPolicy(args.seed)


def _cmd_profile(args: argparse.Namespace) -> int:
    from .obs import (
        ascii_contention,
        ascii_timeline,
        profileable,
        run_profile,
        write_chrome_trace,
        write_jsonl,
    )

    try:
        report = run_profile(args.problem, args.mechanism, seed=args.seed)
    except KeyError:
        print("no profiling workload for {}/{}; choose one of:".format(
            args.problem, args.mechanism))
        for label in profileable():
            print("  " + label)
        return 1

    if args.export:
        out = args.out or "trace.json"
        label = "{}/{}".format(args.problem, args.mechanism)
        if args.export == "chrome":
            write_chrome_trace(out, report.spans, report.result.trace, label)
        else:
            write_jsonl(out, report.spans, report.result.trace)
        if not args.json:
            print("wrote {} trace to {}".format(args.export, out))

    if args.json:
        print(json.dumps(report.to_dict(), indent=2, default=str))
        return 0

    print("profile {}/{}{}".format(
        args.problem, args.mechanism,
        " (seed {})".format(args.seed) if args.seed is not None else ""))
    print()
    print(report.metrics.render())
    print()
    print(ascii_timeline(report.spans, width=args.width))
    print()
    print(ascii_contention(report.blocked_by_object))
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    from .explore import (
        available_targets,
        explore_parallel,
        get_target,
        minimize_witness,
    )

    if args.problem == "list":
        for problem, mechanism in available_targets():
            print("{} {}".format(problem, mechanism))
        return 0
    if args.mechanism is None:
        print("error: a mechanism is required "
              "(see 'repro explore list')", file=sys.stderr)
        return 2
    try:
        target = get_target(args.problem, args.mechanism)
    except KeyError as bad:
        print("error: {}".format(bad.args[0]), file=sys.stderr)
        return 2
    result = explore_parallel(
        target,
        workers=args.workers,
        max_runs=args.max_runs,
        max_depth=args.max_depth,
        prune=args.prune,
        seed=args.seed,
        stop_at_first=args.stop_at_first,
    )
    minimized = None
    if args.minimize and result.witness is not None:
        minimized = minimize_witness(
            target.runner(), target.checker, result.witness
        )
    if args.json:
        payload = {
            "problem": args.problem,
            "mechanism": args.mechanism,
            "workers": args.workers,
            "prune": args.prune,
            "runs": result.runs,
            "pruned": result.pruned,
            "states": result.states,
            "exhausted": result.exhausted,
            "ok": result.ok,
            "violations": len(result.violations),
            "witness": list(result.witness) if result.witness else None,
        }
        if minimized is not None:
            payload["minimized"] = {
                "decisions": list(minimized.minimized),
                "reduction": minimized.reduction,
                "tests": minimized.tests,
                "locally_minimal": minimized.locally_minimal,
                "messages": list(minimized.messages),
            }
        print(json.dumps(payload, indent=2))
        return 0 if result.ok else 1
    print("explore {}/{}: {} run(s), {} pruned, {} state(s), {}".format(
        args.problem, args.mechanism, result.runs, result.pruned,
        result.states,
        "exhausted" if result.exhausted else "budget hit",
    ))
    if result.ok:
        print("no violations found")
        return 0
    print("{} violating schedule(s); first witness: {}".format(
        len(result.violations), list(result.witness)))
    for message in result.violations[0][1]:
        print("  " + message)
    if minimized is not None:
        print()
        print("minimized to {} decision(s) ({} removed, {} test runs{}): "
              "{}".format(
                  len(minimized.minimized), minimized.reduction,
                  minimized.tests,
                  "" if minimized.locally_minimal else ", budget hit",
                  list(minimized.minimized)))
        for message in minimized.messages:
            print("  " + message)
        print()
        print(minimized.timeline)
    return 1


def _cmd_metrics(args: argparse.Namespace) -> int:
    from .obs import comparison_table, metrics_suite

    reports = metrics_suite(args.problem, args.mechanism, seed=args.seed)
    if not reports:
        print("nothing matches problem={} mechanism={}".format(
            args.problem, args.mechanism))
        return 1
    if args.json:
        print(json.dumps([
            {
                "problem": r.problem,
                "mechanism": r.mechanism,
                "seed": r.seed,
                "metrics": r.metrics.to_dict(),
            }
            for r in reports
        ], indent=2, default=str))
        return 0
    print(comparison_table(reports))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Evaluating Synchronization Mechanisms' "
        "(Bloom, SOSP 1979)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_eval = sub.add_parser("evaluate", help="run the full methodology")
    p_eval.add_argument("--fast", action="store_true",
                        help="skip the verifier batteries")
    p_eval.set_defaults(func=_cmd_evaluate)

    p_cov = sub.add_parser("coverage", help="footnote-2 coverage matrix")
    p_cov.set_defaults(func=_cmd_coverage)

    p_ind = sub.add_parser("independence", help="the section-4.2 table")
    p_ind.set_defaults(func=_cmd_independence)

    p_anom = sub.add_parser("anomaly", help="the footnote-3 demonstration")
    p_anom.add_argument("--fast", action="store_true",
                        help="skip the explorer search")
    p_anom.set_defaults(func=_cmd_anomaly)

    p_pairs = sub.add_parser("pairs", help="pairwise info-type check")
    p_pairs.set_defaults(func=_cmd_pairs)

    p_list = sub.add_parser("list", help="list registered solutions")
    p_list.set_defaults(func=_cmd_list)

    p_tl = sub.add_parser("timeline", help="render one solution's schedule")
    p_tl.add_argument("--problem", default="readers_priority")
    p_tl.add_argument("--mechanism", default="monitor")
    p_tl.add_argument("--width", type=int, default=72)
    p_tl.add_argument("--seed", type=int, default=None,
                      help="seeded random scheduling policy (default: FIFO)")
    p_tl.set_defaults(func=_cmd_timeline)

    p_rob = sub.add_parser(
        "robustness", help="fault-containment table for every mechanism"
    )
    p_rob.add_argument("--fast", action="store_true",
                       help="trim the per-fault-point schedule budget")
    p_rob.add_argument("--json", action="store_true",
                       help="machine-readable output")
    p_rob.set_defaults(func=_cmd_robustness)

    p_prof = sub.add_parser(
        "profile", help="instrumented run of one (problem, mechanism) pair"
    )
    p_prof.add_argument("problem")
    p_prof.add_argument("mechanism")
    p_prof.add_argument("--export", choices=("chrome", "jsonl"), default=None,
                        help="also write the trace in this format")
    p_prof.add_argument("--out", default=None,
                        help="export path (default: trace.json)")
    p_prof.add_argument("--width", type=int, default=72,
                        help="ASCII timeline width")
    p_prof.add_argument("--seed", type=int, default=None,
                        help="seeded random scheduling policy (default: FIFO)")
    p_prof.add_argument("--json", action="store_true",
                        help="machine-readable output")
    p_prof.set_defaults(func=_cmd_profile)

    p_met = sub.add_parser(
        "metrics", help="metrics comparison across registered solutions"
    )
    p_met.add_argument("--problem", default=None,
                       help="restrict to one problem")
    p_met.add_argument("--mechanism", default=None,
                       help="restrict to one mechanism")
    p_met.add_argument("--seed", type=int, default=None,
                       help="seeded random scheduling policy (default: FIFO)")
    p_met.add_argument("--json", action="store_true",
                       help="machine-readable output")
    p_met.set_defaults(func=_cmd_metrics)

    p_exp = sub.add_parser(
        "explore",
        help="exhaustively explore one solution's schedule space",
    )
    p_exp.add_argument("problem",
                       help="target problem, or 'list' to enumerate targets")
    p_exp.add_argument("mechanism", nargs="?", default=None,
                       help="mechanism to explore")
    p_exp.add_argument("--workers", type=int, default=1,
                       help="worker processes (default 1: in-process)")
    p_exp.add_argument("--max-runs", type=int, default=2000,
                       help="schedule budget (default 2000)")
    p_exp.add_argument("--max-depth", type=int, default=60,
                       help="branching horizon (default 60)")
    prune = p_exp.add_mutually_exclusive_group()
    prune.add_argument("--prune", dest="prune", action="store_true",
                       default=True,
                       help="equivalence pruning (default)")
    prune.add_argument("--no-prune", dest="prune", action="store_false",
                       help="naive first-deviation DFS")
    p_exp.add_argument("--seed", type=int, default=None,
                       help="deterministic frontier shuffle for budgeted "
                       "searches")
    p_exp.add_argument("--stop-at-first", action="store_true",
                       help="stop at the first violating schedule")
    p_exp.add_argument("--minimize", action="store_true",
                       help="shrink the witness to a locally minimal "
                       "decision string and replay its timeline")
    p_exp.add_argument("--json", action="store_true",
                       help="machine-readable output")
    p_exp.set_defaults(func=_cmd_explore)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
