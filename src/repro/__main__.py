"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``evaluate``      — run the full methodology (verifies all solutions,
  prints the §5-style tables).  ``--fast`` skips the verifier batteries.
* ``coverage``      — the footnote-2 problem/information-type matrix.
* ``independence``  — the §4.2 constraint-independence table.
* ``anomaly``       — the footnote-3 demonstration (experiment E5).
* ``pairs``         — the §4.2 pairwise information-type check.
* ``list``          — every registered solution.
* ``timeline``      — render one solution's schedule as an ASCII Gantt
  chart (``--problem``/``--mechanism`` select the solution).
* ``robustness``    — chaos-explore every mechanism (kill a process at
  every reachable fault point across schedules) and print the
  fault-containment table.  ``--fast`` trims the schedule budget;
  ``--json`` emits machine-readable results.
* ``profile``       — run one (problem, mechanism) workload under full
  instrumentation: metrics report, ASCII span timeline, contention bars;
  ``--export chrome --out trace.json`` writes a Perfetto-loadable trace.
  ``--self`` turns the lens around: cProfile the harness's own
  exploration loop and print the hotspot list.
* ``metrics``       — profile every registered pair (filter with
  ``--problem``/``--mechanism``) and tabulate the counters side by side.
* ``explore``       — exhaustively explore one solution's schedule space
  (``repro explore <problem> <mechanism>``): equivalence-pruned search,
  ``--workers N`` for a parallel frontier, ``--minimize`` to shrink a
  found witness; ``repro explore list`` names the available targets.
  Harness telemetry: ``--watch`` live progress lines, ``--self-profile``
  cProfile hotspots, ``--record`` a gateable run-store record,
  ``--export chrome`` the worker-lane + counter harness track.
* ``causal``        — happens-before critical path of one (problem,
  mechanism) run: per-segment attribution (exclusion vs priority
  constraints, T1-T6 information types), what-if virtual speedups, the
  run record persisted under ``.repro/runs/``; ``--export chrome``
  highlights the critical path in the trace.
* ``regress``       — compare current runs against a stored baseline
  (``--baseline path``) and exit nonzero on gated-metric regressions;
  ``--write-baseline path`` records the baseline, ``--inject-delay N``
  injects a synthetic slowdown to prove the gate trips, ``--load`` gates
  saturation-sweep latency tails (p95/p99) instead of causal profiles,
  ``--explore`` gates exploration throughput (deterministic schedule
  count + wall-clock schedules/sec) against an explore baseline.
* ``resilience``    — combined-fault table (experiment E22): crash-restart
  nodes under partitions at 5-node clusters, fenced vs unfenced, with
  MTTR and availability per cell; ``--search`` runs the joint
  crash×partition fault-plan search (ddmin-minimized mixed witness, then
  the same faults replayed with fencing on).
* ``synth``         — CEGIS synthesis & repair: diagnose the footnote-3
  anomaly in the verbatim Figure-1 program (minimized witness + causal
  chain), then search the candidate grammar for a minimal synchronizer
  that is exhaustively violation-free and keeps readers concurrent;
  ``--fast`` is the CI smoke mode, verdicts are cached and replayable.

``--seed`` (where accepted) switches the run to a seeded random scheduling
policy; omitting it keeps the deterministic FIFO schedule.  ``--json``
everywhere prints machine-readable output instead of tables.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

#: default run-store location for ``repro causal`` / ``repro regress``.
RUNS_DIR = os.path.join(".repro", "runs")


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from .analysis import (
        render_independence,
        summarize_independence,
    )
    from .problems.registry import all_solutions, build_evaluator

    report = build_evaluator().evaluate(run_verifiers=not args.fast)
    descriptions = [e.description for e in all_solutions()]
    report.extras["Constraint independence (section 4.2)"] = (
        render_independence(summarize_independence(descriptions))
        .split("\n", 2)[2]
    )
    print(report.render())
    failures = report.failures()
    if failures:
        print("\nFAILED:", [e.key for e in failures])
        return 1
    return 0


def _cmd_coverage(args: argparse.Namespace) -> int:
    from .core import coverage_matrix, render_coverage, uncovered_types

    print(render_coverage(coverage_matrix()))
    gaps = uncovered_types()
    print(
        "\nuncovered information types:",
        ", ".join(t.short for t in gaps) if gaps else "none (complete suite)",
    )
    return 0


def _cmd_independence(args: argparse.Namespace) -> int:
    from .analysis import render_independence, summarize_independence
    from .problems.registry import all_solutions

    descriptions = [e.description for e in all_solutions()]
    print(render_independence(summarize_independence(descriptions)))
    return 0


def _cmd_anomaly(args: argparse.Namespace) -> int:
    from .problems.readers_writers.anomaly import (
        render_report,
        run_footnote3_comparison,
    )

    report = run_footnote3_comparison(explore=not args.fast)
    print(render_report(report))
    return 0 if report.reproduced else 1


def _cmd_pairs(args: argparse.Namespace) -> int:
    from .core import conflicting_pairs, pair_coverage, render_pair_coverage
    from .problems.registry import all_solutions

    descriptions = [e.description for e in all_solutions()]
    print(render_pair_coverage(
        pair_coverage(), conflicting_pairs(descriptions)
    ))
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    from .core import ascii_table
    from .problems.registry import all_solutions

    rows = [
        [entry.problem, entry.mechanism, entry.notes]
        for entry in all_solutions()
    ]
    print(ascii_table(["problem", "mechanism", "notes"], rows,
                      "Registered solutions"))
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    from .problems.readers_writers import BURST_PLAN, run_workload
    from .problems.registry import get_solution
    from .runtime import render_timeline

    try:
        entry = get_solution(args.problem, args.mechanism)
    except KeyError:
        print("no such solution: {}/{}".format(args.problem, args.mechanism))
        return 1
    if args.problem not in ("readers_priority", "writers_priority", "rw_fcfs"):
        print("timeline currently supports the readers/writers family")
        return 1
    result = run_workload(entry.factory, BURST_PLAN,
                          policy=_seed_policy(args))
    print(render_timeline(
        result.trace, {"db.read": "R", "db.write": "W"}, width=args.width
    ))
    return 0


def _cmd_robustness(args: argparse.Namespace) -> int:
    from .verify.chaos import expected_classifications, robustness_report

    results, table = robustness_report(fast=args.fast)
    expected = expected_classifications()
    surprises = [
        "{}: got {}, fault model predicts {}".format(
            r.name, r.classification, expected[r.name]
        )
        for r in results
        if r.classification != expected[r.name]
    ]
    if args.json:
        print(json.dumps({
            "scenarios": [
                {
                    "name": r.name,
                    "victim": r.victim,
                    "runs": r.runs,
                    "contained": r.contained,
                    "propagated": r.propagated,
                    "deadlocked": r.deadlocked,
                    "step_limited": r.step_limited,
                    "violations": r.violations,
                    "classification": r.classification,
                    "expected": expected[r.name],
                }
                for r in results
            ],
            "surprises": surprises,
        }, indent=2))
        return 1 if surprises else 0
    print(table)
    if surprises:
        print("\nUNEXPECTED:", *surprises, sep="\n  ")
        return 1
    print("\nall classifications match the fault model (DESIGN.md)")
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    from .verify.partition import partition_report

    results, table = partition_report(fast=args.fast)
    surprises = [s for r in results for s in r.surprises]
    violations = [v for r in results for v in r.violations]
    if args.json:
        print(json.dumps({
            "scenarios": [
                {
                    "name": r.name,
                    "runs": r.runs,
                    "mttr_failover": r.mttr_failover,
                    "mttr_post_heal": r.mttr_post_heal,
                    "plans": [
                        {
                            "plan": o.plan_name,
                            "faults": o.plan.describe(),
                            "expected": o.expected,
                            "runs": o.runs,
                            "split_brain": o.split_brain,
                            "wedged": o.wedged,
                            "tolerant": o.tolerant,
                            "violations": o.violations,
                            "mttr_failover": o.mttr_failover,
                            "mttr_post_heal": o.mttr_post_heal,
                            "message_stats": o.message_stats,
                            "classification": o.classification,
                        }
                        for o in r.outcomes
                    ],
                }
                for r in results
            ],
            "surprises": surprises,
            "violations": violations,
        }, indent=2))
        return 1 if (surprises or violations) else 0
    print(table)
    if violations:
        print("\nSAFETY VIOLATIONS:", *violations, sep="\n  ")
    if surprises:
        print("\nUNEXPECTED:", *surprises, sep="\n  ")
    if surprises or violations:
        return 1
    print("\nno split brain on any explored schedule; classifications "
          "match the partition model (DESIGN.md §12)")
    return 0


def _cmd_resilience(args: argparse.Namespace) -> int:
    from .resilience import (resilience_report, search_restart_witness)

    results, table = resilience_report(fast=args.fast)
    surprises = [s for r in results for s in r.surprises]
    violations = [v for r in results for v in r.violations]
    # The unfenced cell *documents* a split-brain; its violations are the
    # expected evidence, not a gate failure — gating is on surprises.
    witness = fenced_label = None
    if args.search:
        witness, fenced_label = search_restart_witness()
    if args.json:
        payload = {
            "scenarios": [
                {
                    "name": r.name,
                    "cluster": r.cluster,
                    "runs": r.runs,
                    "mttr_failover": r.mttr_failover,
                    "mttr_post_heal": r.mttr_post_heal,
                    "availability": r.availability,
                    "cells": [
                        {
                            "cell": o.cell_name,
                            "faults": o.faults,
                            "expected": o.expected,
                            "runs": o.runs,
                            "restarts": o.restarts,
                            "split_brain": o.split_brain,
                            "wedged": o.wedged,
                            "tolerant": o.tolerant,
                            "violations": o.violations,
                            "mttr_failover": o.mttr_failover,
                            "mttr_post_heal": o.mttr_post_heal,
                            "availability": o.availability,
                            "message_stats": o.message_stats,
                            "classification": o.classification,
                        }
                        for o in r.outcomes
                    ],
                }
                for r in results
            ],
            "surprises": surprises,
        }
        if witness is not None:
            payload["search"] = witness.to_dict()
            payload["search"]["fenced_replay"] = fenced_label
        print(json.dumps(payload, indent=2))
        return 1 if surprises else 0
    print(table)
    if witness is not None:
        print("\nJoint fault-plan search ({} plan(s) tried, {} ddmin "
              "test(s)):".format(witness.tried, witness.minimize_tests))
        print("  " + witness.describe())
        if fenced_label:
            print("  same faults with fencing on: " + fenced_label)
    if surprises:
        print("\nUNEXPECTED:", *surprises, sep="\n  ")
        return 1
    print("\nall combined-fault classifications match the resilience "
          "model (DESIGN.md §16)")
    return 0


def _cmd_load(args: argparse.Namespace) -> int:
    from .load import LOAD_MECHANISMS, render_curves, saturation_curve

    if args.mechanism in ("all", ""):
        mechanisms = list(LOAD_MECHANISMS)
    else:
        mechanisms = [m.strip() for m in args.mechanism.split(",") if m.strip()]
    if args.fast:
        counts = [8, 32]
        ops = 1
    else:
        counts = [int(c) for c in args.clients.split(",") if c.strip()]
        ops = args.ops
    curves = {}
    for mechanism in mechanisms:
        curves[mechanism] = saturation_curve(
            mechanism, counts, shards=args.shards, arrival=args.arrival,
            horizon=args.horizon, ops=ops, capacity=args.capacity,
            seed=args.seed,
        )
    payload = {
        "config": {
            "arrival": args.arrival,
            "shards": args.shards,
            "ops": ops,
            "capacity": args.capacity,
            "horizon": args.horizon,
            "seed": args.seed,
            "clients": counts,
        },
        "mechanisms": {m: [p.to_dict() for p in pts]
                       for m, pts in curves.items()},
    }
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print("wrote {}".format(args.out))
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_curves(curves))
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from .verify.recovery import (
        expected_recovery,
        minimal_defeat_witness,
        mttr_fingerprints,
        recovery_report,
    )

    results, table = recovery_report(fast=args.fast)
    expected = expected_recovery()
    surprises = [
        "{}: got {}, acceptable: {}".format(
            r.name, r.classification, "/".join(expected[r.name])
        )
        for r in results
        if r.classification not in expected[r.name]
    ]
    fingerprints = mttr_fingerprints()
    witness = minimal_defeat_witness() if args.search else None
    if args.json:
        payload = {
            "scenarios": [
                {
                    "name": r.name,
                    "victim": r.victim,
                    "runs": r.runs,
                    "recovered": r.recovered,
                    "degraded": r.degraded,
                    "wedged": r.wedged,
                    "violated": r.violated,
                    "violations": r.violations,
                    "classification": r.classification,
                    "expected": list(expected[r.name]),
                }
                for r in results
            ],
            "mttr": fingerprints,
            "surprises": surprises,
        }
        if witness is not None:
            payload["witness"] = {
                "tried": witness.tried,
                "kills": [k.describe() for k in witness.witness or ()],
                "label": witness.witness_label,
            }
        print(json.dumps(payload, indent=2))
        return 1 if surprises else 0
    print(table)
    print("\nDeterministic MTTR fingerprints (kill at deepest fault point):")
    for name, fp in fingerprints.items():
        print("  {:<18} mttr={:<6} rate={:<5} [{}] ({})".format(
            name,
            "-" if fp["mttr"] is None else fp["mttr"],
            fp["recovery_rate"],
            fp["classification"],
            fp["kill"],
        ))
    if witness is not None:
        print("\nFault-plan search ({} plans tried):".format(witness.tried))
        print("  " + witness.describe())
    if surprises:
        print("\nUNEXPECTED:", *surprises, sep="\n  ")
        return 1
    print("\nall classifications within the recovery contract (DESIGN.md)")
    return 0


def _seed_policy(args: argparse.Namespace):
    """``--seed N`` -> a seeded random policy; None keeps FIFO determinism."""
    if getattr(args, "seed", None) is None:
        return None
    from .runtime.policies import RandomPolicy

    return RandomPolicy(args.seed)


def _cmd_profile(args: argparse.Namespace) -> int:
    from .obs import (
        ascii_contention,
        ascii_timeline,
        profileable,
        run_profile,
        write_chrome_trace,
        write_jsonl,
    )

    if args.profile_self:
        return _cmd_profile_self(args)
    if args.problem is None or args.mechanism is None:
        print("error: problem and mechanism are required (or use --self "
              "to profile the harness itself)", file=sys.stderr)
        return 2
    try:
        report = run_profile(args.problem, args.mechanism, seed=args.seed)
    except KeyError:
        print("no profiling workload for {}/{}; choose one of:".format(
            args.problem, args.mechanism))
        for label in profileable():
            print("  " + label)
        return 1

    if args.export:
        out = args.out or "trace.json"
        label = "{}/{}".format(args.problem, args.mechanism)
        if args.export == "chrome":
            write_chrome_trace(out, report.spans, report.result.trace, label)
        else:
            write_jsonl(out, report.spans, report.result.trace)
        if not args.json:
            print("wrote {} trace to {}".format(args.export, out))

    if args.json:
        print(json.dumps(report.to_dict(), indent=2, default=str))
        return 0

    print("profile {}/{}{}".format(
        args.problem, args.mechanism,
        " (seed {})".format(args.seed) if args.seed is not None else ""))
    print()
    print(report.metrics.render())
    print()
    print(ascii_timeline(report.spans, width=args.width))
    print()
    print(ascii_contention(report.blocked_by_object))
    return 0


def _cmd_profile_self(args: argparse.Namespace) -> int:
    """``repro profile --self``: cProfile the harness's own exploration
    hot loop and print the hotspot list (the scheduler-core refactor's
    work queue).  Telemetry rides along so phase shares frame the
    hotspots."""
    from .explore import explore_parallel, get_target
    from .obs import HarnessTelemetry, self_profile

    problem = args.problem or "fcfs_resource"
    mechanism = args.mechanism or "monitor"
    try:
        target = get_target(problem, mechanism)
    except KeyError as bad:
        print("error: {}".format(bad.args[0]), file=sys.stderr)
        return 2
    telemetry = HarnessTelemetry()
    report = self_profile(
        lambda: explore_parallel(target, max_runs=args.self_runs,
                                 max_depth=args.self_depth, prune=True,
                                 telemetry=telemetry))
    result = report.value
    if args.json:
        print(json.dumps({
            "problem": problem,
            "mechanism": mechanism,
            "runs": result.runs,
            "pruned": result.pruned,
            "telemetry": telemetry.to_dict(),
            "self_profile": report.to_dict(),
        }, indent=2, sort_keys=True))
        return 0
    print("self-profile of explore {}/{} ({} run(s), {} pruned)".format(
        problem, mechanism, result.runs, result.pruned))
    print()
    print(telemetry.render())
    print()
    print(report.render())
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    from .explore import (
        available_targets,
        explore_parallel,
        get_target,
        minimize_witness,
    )

    if args.problem == "list":
        for problem, mechanism in available_targets():
            print("{} {}".format(problem, mechanism))
        return 0
    if args.mechanism is None:
        print("error: a mechanism is required "
              "(see 'repro explore list')", file=sys.stderr)
        return 2
    try:
        target = get_target(args.problem, args.mechanism)
    except KeyError as bad:
        print("error: {}".format(bad.args[0]), file=sys.stderr)
        return 2
    if args.fast:
        args.max_runs = min(args.max_runs, 200)
    warm = None
    fp_cache = None
    preloaded = 0
    if args.fp_cache:
        from .obs.runstore import FingerprintCache

        fp_cache = FingerprintCache()
        warm = fp_cache.load(args.problem, args.mechanism,
                             max_depth=args.max_depth)
        preloaded = len(warm)
    telemetry = None
    if args.watch or args.export or args.record or args.self_profile:
        from .obs import HarnessTelemetry

        telemetry = HarnessTelemetry(
            watch=sys.stderr if args.watch else None)

    def run_search():
        return explore_parallel(
            target,
            workers=args.workers,
            max_runs=args.max_runs,
            max_depth=args.max_depth,
            prune=args.prune,
            seed=args.seed,
            stop_at_first=args.stop_at_first,
            warm_seen=warm,
            telemetry=telemetry,
        )

    hotspots = None
    if args.self_profile:
        from .obs import self_profile

        hotspots = self_profile(run_search)
        result = hotspots.value
    else:
        result = run_search()
    if args.record and telemetry is not None:
        from .obs import RunStore, explore_record

        record = explore_record(args.problem, args.mechanism, result,
                                telemetry, seed=args.seed)
        saved_record = RunStore(args.store).save(record)
        if not args.json:
            print("explore record saved to " + saved_record)
    if args.export and telemetry is not None:
        from .obs import write_chrome_trace, write_jsonl

        out = args.out or ("harness_trace.json" if args.export == "chrome"
                           else "harness_trace.jsonl")
        label = "explore {}/{}".format(args.problem, args.mechanism)
        if args.export == "chrome":
            write_chrome_trace(out, [], None, label, harness=telemetry)
        else:
            write_jsonl(out, [], None, harness=telemetry)
        if not args.json:
            print("wrote {} harness trace to {}".format(args.export, out))
    if fp_cache is not None and warm is not None:
        fp_cache.save(args.problem, args.mechanism, warm,
                      max_depth=args.max_depth,
                      exhausted=result.exhausted)
    minimized = None
    if args.minimize and result.witness is not None:
        minimized = minimize_witness(
            target.runner(), target.checker, result.witness
        )
    if args.json:
        payload = {
            "problem": args.problem,
            "mechanism": args.mechanism,
            "workers": args.workers,
            "prune": args.prune,
            "runs": result.runs,
            "pruned": result.pruned,
            "states": result.states,
            "exhausted": result.exhausted,
            "ok": result.ok,
            "violations": len(result.violations),
            "witness": list(result.witness) if result.witness else None,
        }
        if fp_cache is not None:
            payload["fp_cache"] = {
                "preloaded": preloaded,
                "new_states": result.states,
                "persisted": result.exhausted,
            }
        if telemetry is not None:
            payload["telemetry"] = telemetry.to_dict()
        if hotspots is not None:
            payload["self_profile"] = hotspots.to_dict()
        if minimized is not None:
            payload["minimized"] = {
                "decisions": list(minimized.minimized),
                "reduction": minimized.reduction,
                "tests": minimized.tests,
                "locally_minimal": minimized.locally_minimal,
                "messages": list(minimized.messages),
                "causal": list(minimized.causal),
            }
        print(json.dumps(payload, indent=2))
        return 0 if result.ok else 1
    print("explore {}/{}: {} run(s), {} pruned, {} state(s), {}".format(
        args.problem, args.mechanism, result.runs, result.pruned,
        result.states,
        "exhausted" if result.exhausted else "budget hit",
    ))
    if telemetry is not None:
        print()
        print(telemetry.render())
    if hotspots is not None:
        print()
        print(hotspots.render())
    if fp_cache is not None:
        print("fingerprint cache: {} key(s) preloaded, {} new, {}".format(
            preloaded, result.states,
            "persisted" if result.exhausted
            else "not persisted (budget hit)"))
    if result.ok:
        print("no violations found")
        return 0
    print("{} violating schedule(s); first witness: {}".format(
        len(result.violations), list(result.witness)))
    for message in result.violations[0][1]:
        print("  " + message)
    if minimized is not None:
        print()
        print("minimized to {} decision(s) ({} removed, {} test runs{}): "
              "{}".format(
                  len(minimized.minimized), minimized.reduction,
                  minimized.tests,
                  "" if minimized.locally_minimal else ", budget hit",
                  list(minimized.minimized)))
        for message in minimized.messages:
            print("  " + message)
        print()
        print(minimized.timeline)
        if minimized.causal:
            print()
            print("causal chain (critical-path tail of the violating run):")
            for line in minimized.causal:
                print("  " + line)
    return 1


def _cmd_metrics(args: argparse.Namespace) -> int:
    from .obs import comparison_table, metrics_suite

    reports = metrics_suite(args.problem, args.mechanism, seed=args.seed)
    if not reports:
        print("nothing matches problem={} mechanism={}".format(
            args.problem, args.mechanism))
        return 1
    payload = [
        {
            "problem": r.problem,
            "mechanism": r.mechanism,
            "seed": r.seed,
            "metrics": r.metrics.to_dict(),
        }
        for r in reports
    ]
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True, default=str)
            fh.write("\n")
        if not args.json:
            print("wrote metrics for {} run(s) to {}".format(
                len(payload), args.out))
    if args.json:
        print(json.dumps(payload, indent=2, default=str))
        return 0
    print(comparison_table(reports))
    return 0


def _fault_plan(ticks: Optional[int]):
    """``--inject-delay N`` -> a FaultPlan delaying every wakeup of every
    process by N ticks (a synthetic slowdown the regression gate must
    catch — the self-test knob CI and the tests use)."""
    if not ticks:
        return None
    from .runtime.faults import FaultPlan

    return FaultPlan().delay_wakeups("*", ticks)


def _cmd_causal(args: argparse.Namespace) -> int:
    from .obs import RunStore, profileable, run_causal, write_chrome_trace

    try:
        report = run_causal(args.problem, args.mechanism, seed=args.seed)
    except KeyError:
        print("no profiling workload for {}/{}; choose one of:".format(
            args.problem, args.mechanism))
        for label in profileable():
            print("  " + label)
        return 1

    saved = None
    if not args.no_save:
        saved = RunStore(args.store).save(report.record)

    if args.export:
        out = args.out or "causal_trace.json"
        label = "{}/{}".format(args.problem, args.mechanism)
        write_chrome_trace(out, report.profile.spans,
                           report.profile.result.trace, label,
                           critical=report.path.segments)
        if not args.json:
            print("wrote chrome trace (critical path highlighted) to "
                  + out)

    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True,
                         default=str))
        return 0
    label = "{}/{}{}".format(
        args.problem, args.mechanism,
        " (seed {})".format(args.seed) if args.seed is not None else "")
    print(report.path.render(label))
    if saved:
        print()
        print("record saved to " + saved)
    return 0


def _cmd_regress(args: argparse.Namespace) -> int:
    from .obs import (
        compare_records,
        dump_baseline,
        load_baseline,
        render_comparison,
        run_causal,
    )
    from .obs.profiles import WORKLOADS
    from .obs.runstore import load_tail_record
    from .problems.registry import solutions_for

    from .obs.harness import EXPLORE_RECORD_PREFIX

    load_counts = [int(c) for c in args.load_clients.split(",") if c.strip()]

    def tail_record(mechanism, seed):
        from .load import saturation_curve

        points = saturation_curve(mechanism, load_counts,
                                  seed=seed if seed is not None else 0)
        return load_tail_record(mechanism, points, seed=seed)

    def explore_rec(problem, mechanism, seed):
        from .explore import explore_parallel, get_target
        from .obs import HarnessTelemetry, explore_record

        telemetry = HarnessTelemetry()
        result = explore_parallel(
            get_target(problem, mechanism),
            max_runs=args.explore_runs, max_depth=args.explore_depth,
            prune=True, seed=seed, telemetry=telemetry)
        return explore_record(problem, mechanism, result, telemetry,
                              seed=seed)

    def explore_targets():
        for spec in args.explore_target.split(","):
            spec = spec.strip()
            if spec:
                problem, __, mechanism = spec.partition("/")
                yield problem, mechanism

    if args.write_baseline:
        records = []
        if args.load:
            from .load import LOAD_MECHANISMS

            mechanisms = ([args.mechanism] if args.mechanism
                          else list(LOAD_MECHANISMS))
            for mechanism in mechanisms:
                records.append(tail_record(mechanism, args.seed))
        elif args.explore:
            for problem, mechanism in explore_targets():
                records.append(explore_rec(problem, mechanism, args.seed))
        else:
            for entry in solutions_for(args.problem, args.mechanism):
                if entry.problem not in WORKLOADS:
                    continue
                records.append(run_causal(entry.problem, entry.mechanism,
                                          seed=args.seed).record)
        with open(args.write_baseline, "w") as fh:
            fh.write(dump_baseline(records))
        print("wrote baseline of {} record(s) to {}".format(
            len(records), args.write_baseline))
        return 0

    if not args.baseline:
        print("error: --baseline (or --write-baseline) is required",
              file=sys.stderr)
        return 2
    baseline = load_baseline(args.baseline)
    if args.load:
        baseline = [r for r in baseline if r.problem == "load_tail"]
    if args.explore:
        baseline = [r for r in baseline
                    if r.problem.startswith(EXPLORE_RECORD_PREFIX)]
    if args.problem or args.mechanism:
        baseline = [
            r for r in baseline
            if (args.problem is None or r.problem == args.problem)
            and (args.mechanism is None or r.mechanism == args.mechanism)
        ]
    if not baseline:
        print("baseline {} holds no matching records".format(args.baseline),
              file=sys.stderr)
        return 2

    pairs = []
    regressions = []
    missing = []
    for base in baseline:
        try:
            if base.problem == "load_tail":
                current = tail_record(base.mechanism, base.seed)
            elif base.problem.startswith(EXPLORE_RECORD_PREFIX):
                current = explore_rec(
                    base.problem[len(EXPLORE_RECORD_PREFIX):],
                    base.mechanism, base.seed)
            else:
                current = run_causal(
                    base.problem, base.mechanism, seed=base.seed,
                    fault_plan=_fault_plan(args.inject_delay),
                ).record
        except KeyError:
            missing.append(base.key)
            continue
        pairs.append((base, current))
        regressions.extend(
            compare_records(base, current, threshold_pct=args.threshold))

    if args.json:
        print(json.dumps({
            "baseline": args.baseline,
            "threshold_pct": args.threshold,
            "compared": [cur.key for __, cur in pairs],
            "missing": missing,
            "regressions": [
                {
                    "key": r.key,
                    "metric": r.metric,
                    "baseline": r.baseline,
                    "current": r.current,
                    "delta_pct": round(r.delta_pct, 2),
                }
                for r in regressions
            ],
        }, indent=2, sort_keys=True))
    else:
        print(render_comparison(pairs, regressions))
        if missing:
            print("\nskipped (no workload here): " + ", ".join(missing))
    return 1 if regressions else 0


def _cmd_synth(args: argparse.Namespace) -> int:
    from .synth import SynthConfig, repair_footnote3

    config = SynthConfig.fast() if args.fast else SynthConfig()
    if args.max_size is not None:
        config.max_size = args.max_size
    if args.max_runs is not None:
        config.max_runs = args.max_runs
    if args.max_depth is not None:
        config.max_depth = args.max_depth
    if args.max_candidates is not None:
        config.max_candidates = args.max_candidates
    if args.no_cache:
        config.use_cache = False
    if args.cache_root:
        config.cache_root = args.cache_root
    if args.no_fp_cache:
        config.use_fp_cache = False

    if args.repair != "footnote3":
        print("error: unknown repair target {!r} (only: footnote3)".format(
            args.repair), file=sys.stderr)
        return 2
    say = (lambda message: None) if args.json else print
    report = repair_footnote3(config, log=say)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print()
        print(report.render())
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Evaluating Synchronization Mechanisms' "
        "(Bloom, SOSP 1979)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_eval = sub.add_parser("evaluate", help="run the full methodology")
    p_eval.add_argument("--fast", action="store_true",
                        help="skip the verifier batteries")
    p_eval.set_defaults(func=_cmd_evaluate)

    p_cov = sub.add_parser("coverage", help="footnote-2 coverage matrix")
    p_cov.set_defaults(func=_cmd_coverage)

    p_ind = sub.add_parser("independence", help="the section-4.2 table")
    p_ind.set_defaults(func=_cmd_independence)

    p_anom = sub.add_parser("anomaly", help="the footnote-3 demonstration")
    p_anom.add_argument("--fast", action="store_true",
                        help="skip the explorer search")
    p_anom.set_defaults(func=_cmd_anomaly)

    p_pairs = sub.add_parser("pairs", help="pairwise info-type check")
    p_pairs.set_defaults(func=_cmd_pairs)

    p_list = sub.add_parser("list", help="list registered solutions")
    p_list.set_defaults(func=_cmd_list)

    p_tl = sub.add_parser("timeline", help="render one solution's schedule")
    p_tl.add_argument("--problem", default="readers_priority")
    p_tl.add_argument("--mechanism", default="monitor")
    p_tl.add_argument("--width", type=int, default=72)
    p_tl.add_argument("--seed", type=int, default=None,
                      help="seeded random scheduling policy (default: FIFO)")
    p_tl.set_defaults(func=_cmd_timeline)

    p_rob = sub.add_parser(
        "robustness", help="fault-containment table for every mechanism"
    )
    p_rob.add_argument("--fast", action="store_true",
                       help="trim the per-fault-point schedule budget")
    p_rob.add_argument("--json", action="store_true",
                       help="machine-readable output")
    p_rob.set_defaults(func=_cmd_robustness)

    p_part = sub.add_parser(
        "partition",
        help="partition-tolerance table: scenarios × network fault plans",
    )
    p_part.add_argument("--fast", action="store_true",
                        help="trim the per-plan schedule budget")
    p_part.add_argument("--json", action="store_true",
                        help="machine-readable output")
    p_part.set_defaults(func=_cmd_partition)

    p_res = sub.add_parser(
        "resilience",
        help="combined-fault table: crash-restart × partition at 5-node "
             "clusters, with fencing, MTTR, and availability (E22)",
    )
    p_res.add_argument("--fast", action="store_true",
                       help="one schedule per cell (CI smoke)")
    p_res.add_argument("--search", action="store_true",
                       help="joint crash×partition fault-plan search "
                            "against the unfenced restart lock "
                            "(ddmin-minimized witness + fenced replay)")
    p_res.add_argument("--json", action="store_true",
                       help="machine-readable output")
    p_res.set_defaults(func=_cmd_resilience)

    p_load = sub.add_parser(
        "load",
        help="heavy-traffic saturation curves per mechanism (E19)")
    p_load.add_argument("--mechanism", default="all",
                        help="comma list of mechanisms, or 'all'")
    p_load.add_argument("--clients", default="16,64,256",
                        help="comma list of swarm sizes to sweep")
    p_load.add_argument("--shards", type=int, default=2)
    p_load.add_argument("--arrival", default="poisson",
                        choices=("poisson", "bursty", "diurnal"))
    p_load.add_argument("--ops", type=int, default=2,
                        help="put/get cycles per client")
    p_load.add_argument("--capacity", type=int, default=8)
    p_load.add_argument("--horizon", type=int, default=256,
                        help="arrival horizon in virtual ticks")
    p_load.add_argument("--seed", type=int, default=0)
    p_load.add_argument("--fast", action="store_true",
                        help="small sweep for CI smoke")
    p_load.add_argument("--json", action="store_true")
    p_load.add_argument("--out", default="",
                        help="also write the JSON payload to this path")
    p_load.set_defaults(func=_cmd_load)

    p_rec = sub.add_parser(
        "recover",
        help="supervised recovery table, MTTR fingerprints, fault search",
    )
    p_rec.add_argument("--fast", action="store_true",
                       help="trim the per-fault-point schedule budget")
    p_rec.add_argument("--json", action="store_true",
                       help="machine-readable output")
    p_rec.add_argument("--search", action="store_true",
                       help="search for a minimal crash set that defeats "
                            "recovery (ddmin-minimized)")
    p_rec.set_defaults(func=_cmd_recover)

    p_prof = sub.add_parser(
        "profile", help="instrumented run of one (problem, mechanism) pair"
    )
    p_prof.add_argument("problem", nargs="?", default=None)
    p_prof.add_argument("mechanism", nargs="?", default=None)
    p_prof.add_argument("--self", dest="profile_self", action="store_true",
                        help="cProfile the harness's own exploration loop "
                        "(default target fcfs_resource/monitor) and print "
                        "the hotspot list")
    p_prof.add_argument("--self-runs", type=int, default=400,
                        help="schedule budget for --self (default 400)")
    p_prof.add_argument("--self-depth", type=int, default=48,
                        help="branching horizon for --self (default 48)")
    p_prof.add_argument("--export", choices=("chrome", "jsonl"), default=None,
                        help="also write the trace in this format")
    p_prof.add_argument("--out", default=None,
                        help="export path (default: trace.json)")
    p_prof.add_argument("--width", type=int, default=72,
                        help="ASCII timeline width")
    p_prof.add_argument("--seed", type=int, default=None,
                        help="seeded random scheduling policy (default: FIFO)")
    p_prof.add_argument("--json", action="store_true",
                        help="machine-readable output")
    p_prof.set_defaults(func=_cmd_profile)

    p_met = sub.add_parser(
        "metrics", help="metrics comparison across registered solutions"
    )
    p_met.add_argument("--problem", default=None,
                       help="restrict to one problem")
    p_met.add_argument("--mechanism", default=None,
                       help="restrict to one mechanism")
    p_met.add_argument("--seed", type=int, default=None,
                       help="seeded random scheduling policy (default: FIFO)")
    p_met.add_argument("--json", action="store_true",
                       help="machine-readable output")
    p_met.add_argument("--out", default=None,
                       help="also persist the comparison JSON to this path")
    p_met.set_defaults(func=_cmd_metrics)

    p_cau = sub.add_parser(
        "causal",
        help="happens-before critical path of one (problem, mechanism) run",
    )
    p_cau.add_argument("problem")
    p_cau.add_argument("mechanism")
    p_cau.add_argument("--seed", type=int, default=None,
                       help="seeded random scheduling policy (default: FIFO)")
    p_cau.add_argument("--export", choices=("chrome",), default=None,
                       help="also write a chrome trace with the critical "
                       "path highlighted")
    p_cau.add_argument("--out", default=None,
                       help="export path (default: causal_trace.json)")
    p_cau.add_argument("--store", default=RUNS_DIR,
                       help="run-store directory (default: {})".format(
                           RUNS_DIR))
    p_cau.add_argument("--no-save", action="store_true",
                       help="analyse only; do not persist a run record")
    p_cau.add_argument("--json", action="store_true",
                       help="machine-readable output")
    p_cau.set_defaults(func=_cmd_causal)

    p_reg = sub.add_parser(
        "regress",
        help="gate current runs against a stored causal baseline",
    )
    p_reg.add_argument("--baseline", default=None,
                       help="baseline file or run-store directory")
    p_reg.add_argument("--write-baseline", default=None, metavar="PATH",
                       help="record a fresh baseline to PATH and exit")
    p_reg.add_argument("--threshold", type=float, default=10.0,
                       help="regression threshold in percent (default 10)")
    p_reg.add_argument("--problem", default=None,
                       help="restrict to one problem")
    p_reg.add_argument("--mechanism", default=None,
                       help="restrict to one mechanism")
    p_reg.add_argument("--seed", type=int, default=None,
                       help="seed used when writing a baseline")
    p_reg.add_argument("--inject-delay", type=int, default=None,
                       metavar="TICKS",
                       help="delay every wakeup by TICKS (synthetic "
                       "slowdown; self-test of the gate)")
    p_reg.add_argument("--load", action="store_true",
                       help="gate load-sweep latency tails instead of "
                       "causal profiles (compares saturation-curve p95/p99 "
                       "per mechanism against the baseline)")
    p_reg.add_argument("--load-clients", default="8,32", metavar="N,N",
                       help="sweep populations for --load (default 8,32; "
                       "the largest is the gated tail point)")
    p_reg.add_argument("--explore", action="store_true",
                       help="gate exploration throughput instead: rebuild "
                       "each explore: baseline record (schedule count is "
                       "deterministic; schedules/sec is wall-clock, so pair "
                       "with a generous --threshold in CI)")
    p_reg.add_argument("--explore-target", default="fcfs_resource/monitor",
                       metavar="P/M[,P/M...]",
                       help="explore targets for --write-baseline "
                       "(default fcfs_resource/monitor)")
    p_reg.add_argument("--explore-runs", type=int, default=2000,
                       help="schedule budget per explore target "
                       "(default 2000)")
    p_reg.add_argument("--explore-depth", type=int, default=60,
                       help="branching horizon per explore target "
                       "(default 60)")
    p_reg.add_argument("--json", action="store_true",
                       help="machine-readable output")
    p_reg.set_defaults(func=_cmd_regress)

    p_exp = sub.add_parser(
        "explore",
        help="exhaustively explore one solution's schedule space",
    )
    p_exp.add_argument("problem",
                       help="target problem, or 'list' to enumerate targets")
    p_exp.add_argument("mechanism", nargs="?", default=None,
                       help="mechanism to explore")
    p_exp.add_argument("--workers", type=int, default=1,
                       help="worker processes (default 1: in-process)")
    p_exp.add_argument("--max-runs", type=int, default=2000,
                       help="schedule budget (default 2000)")
    p_exp.add_argument("--max-depth", type=int, default=60,
                       help="branching horizon (default 60)")
    prune = p_exp.add_mutually_exclusive_group()
    prune.add_argument("--prune", dest="prune", action="store_true",
                       default=True,
                       help="equivalence pruning (default)")
    prune.add_argument("--no-prune", dest="prune", action="store_false",
                       help="naive first-deviation DFS")
    p_exp.add_argument("--seed", type=int, default=None,
                       help="deterministic frontier shuffle for budgeted "
                       "searches")
    p_exp.add_argument("--stop-at-first", action="store_true",
                       help="stop at the first violating schedule")
    p_exp.add_argument("--minimize", action="store_true",
                       help="shrink the witness to a locally minimal "
                       "decision string and replay its timeline")
    p_exp.add_argument("--fp-cache", action="store_true",
                       help="warm-start from (and persist to) the "
                       "cross-run fingerprint cache in the run store")
    p_exp.add_argument("--watch", action="store_true",
                       help="periodic progress lines on stderr "
                       "(schedules/sec, frontier, pruning ratio, ETA; "
                       "non-tty-safe) plus a final telemetry report")
    p_exp.add_argument("--fast", action="store_true",
                       help="CI smoke mode: cap the budget at 200 runs")
    p_exp.add_argument("--self-profile", dest="self_profile",
                       action="store_true",
                       help="run the search under cProfile and print the "
                       "hotspot list (~2x slower; see also "
                       "'repro profile --self')")
    p_exp.add_argument("--record", action="store_true",
                       help="persist an explore record (schedules/sec + "
                       "phase seconds) to the run store for "
                       "'repro regress --explore'")
    p_exp.add_argument("--store", default=RUNS_DIR,
                       help="run-store directory for --record "
                       "(default: {})".format(RUNS_DIR))
    p_exp.add_argument("--export", choices=("chrome", "jsonl"), default=None,
                       help="write the harness telemetry track "
                       "(worker lanes + counters) in this format")
    p_exp.add_argument("--out", default=None,
                       help="export path (default: harness_trace.json[l])")
    p_exp.add_argument("--json", action="store_true",
                       help="machine-readable output")
    p_exp.set_defaults(func=_cmd_explore)

    p_syn = sub.add_parser(
        "synth",
        help="CEGIS synthesis & repair over the explore engine",
    )
    p_syn.add_argument("--repair", default="footnote3", metavar="TARGET",
                       help="repair target (default and only: footnote3 — "
                       "the paper's Figure-1 anomaly)")
    p_syn.add_argument("--fast", action="store_true",
                       help="CI smoke mode: smaller grammar (no serializer "
                       "atoms) and tighter budgets")
    p_syn.add_argument("--max-size", type=int, default=None,
                       help="candidate size bound (path nodes + guard "
                       "atoms)")
    p_syn.add_argument("--max-runs", type=int, default=None,
                       help="exploration budget per candidate")
    p_syn.add_argument("--max-depth", type=int, default=None,
                       help="exploration branching horizon")
    p_syn.add_argument("--max-candidates", type=int, default=None,
                       help="total candidates to judge before giving up")
    p_syn.add_argument("--no-cache", action="store_true",
                       help="disable the replayable oracle cache")
    p_syn.add_argument("--cache-root", default=None, metavar="DIR",
                       help="oracle-cache directory (default "
                       ".repro/runs/synthesis)")
    p_syn.add_argument("--no-fp-cache", action="store_true",
                       help="disable per-candidate fingerprint warm-starts")
    p_syn.add_argument("--json", action="store_true",
                       help="machine-readable output")
    p_syn.set_defaults(func=_cmd_synth)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
