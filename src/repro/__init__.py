"""repro — a reproduction of "Evaluating Synchronization Mechanisms"
(Toby Bloom, SOSP 1979).

The library has five layers (bottom-up):

* :mod:`repro.runtime` — deterministic cooperative concurrency substrate:
  generator-based processes, schedulers and policies, FIFO semaphores,
  traces.
* :mod:`repro.mechanisms` — the constructs under evaluation, built from
  scratch: Hoare monitors, Atkinson-Hewitt serializers, Campbell-Habermann
  path expressions (plus the extended/open variants).
* :mod:`repro.resources` — unsynchronized shared resources with built-in
  race detection, and the paper's section-2 protected-resource structure.
* :mod:`repro.problems` — the paper's test-problem suite (footnote 2 plus
  the 4.2/5.2 probes), each problem solved under every mechanism,
  registered in :mod:`repro.problems.registry`.
* :mod:`repro.core` + :mod:`repro.analysis` + :mod:`repro.verify` — the
  paper's actual contribution: the evaluation methodology (information
  types, constraint taxonomy, criteria), made machine-checkable.

Quickstart::

    from repro.problems.registry import build_evaluator
    report = build_evaluator().evaluate()
    print(report.render())
"""

from . import analysis, core, mechanisms, problems, resources, runtime, verify

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "core",
    "mechanisms",
    "problems",
    "resources",
    "runtime",
    "verify",
    "__version__",
]
