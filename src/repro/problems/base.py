"""Shared plumbing for problem solutions.

Every solution in :mod:`repro.problems` follows the same conventions:

* it is constructed with a :class:`Scheduler` and exposes its operations as
  generator methods;
* it emits the uniform trace vocabulary — ``request`` when an operation is
  asked for (before any blocking), ``op_start`` when access is granted,
  ``op_end`` on completion — under ``<resource>.<op>`` object names, which is
  what the oracles key on;
* its module exports a ``SolutionDescription`` named per variant, consumed
  by the evaluation engine;
* it registers itself in :data:`repro.problems.registry.REGISTRY`.
"""

from __future__ import annotations

from typing import Any

from ..runtime.scheduler import Scheduler


class SolutionBase:
    """Base class providing the uniform trace-logging helpers."""

    #: Problem name from the catalog (set by subclasses).
    problem: str = ""
    #: Mechanism name: ``semaphore``, ``monitor``, ``serializer``,
    #: ``pathexpr``, or ``pathexpr_open``.
    mechanism: str = ""

    def __init__(self, sched: Scheduler, name: str = "res") -> None:
        self._sched = sched
        self.name = name

    # ------------------------------------------------------------------
    def _request(self, op: str, detail: Any = None) -> None:
        """Log that an operation was asked for (pre-blocking)."""
        self._sched.log("request", "{}.{}".format(self.name, op), detail)

    def _start(self, op: str) -> None:
        """Log that access was granted and the operation is executing."""
        self._sched.log("op_start", "{}.{}".format(self.name, op))

    def _finish(self, op: str) -> None:
        """Log that the operation completed."""
        self._sched.log("op_end", "{}.{}".format(self.name, op))

    def _work(self, amount: int):
        """Spend ``amount`` scheduling steps inside the critical region —
        widens the window in which interference would be observable."""
        for __ in range(amount):
            yield
