"""Readers/writers with bare semaphores — the Courtois–Heymans–Parnas
solutions ([8] in the paper), used as the low-level baseline the high-level
mechanisms are supposed to improve on.

Problem 1 (readers priority) and Problem 2 (writers priority) are transcribed
from CACM 14(10), 1971, with the paper's trace conventions added.
"""

from __future__ import annotations

from typing import Any, Generator

from ...core import (
    Component,
    ConstraintRealization,
    Directness,
    InformationType,
    ModularityProfile,
    SolutionDescription,
)
from ...resources import Database
from ...runtime.primitives import Semaphore
from ...runtime.scheduler import Scheduler
from ..base import SolutionBase

T1 = InformationType.REQUEST_TYPE
T4 = InformationType.SYNC_STATE


class SemaphoreReadersPriority(SolutionBase):
    """CHP Problem 1: readers have priority; writers may starve."""

    problem = "readers_priority"
    mechanism = "semaphore"

    def __init__(self, sched: Scheduler, name: str = "db") -> None:
        super().__init__(sched, name)
        self.db = Database()
        self._mutex = Semaphore(sched, 1, name + ".mutex")
        self._wrt = Semaphore(sched, 1, name + ".wrt")
        self._readcount = 0

    def read(self, work: int = 1) -> Generator:
        """Perform one read; returns the database value."""
        self._request("read")
        yield from self._mutex.p()
        self._readcount += 1
        if self._readcount == 1:
            yield from self._wrt.p()
        self._mutex.v()
        self._start("read")
        value = yield from self.db.read()
        yield from self._work(work)
        self._finish("read")
        yield from self._mutex.p()
        self._readcount -= 1
        if self._readcount == 0:
            self._wrt.v()
        self._mutex.v()
        return value

    def write(self, value: Any, work: int = 1) -> Generator:
        """Perform one write."""
        self._request("write")
        yield from self._wrt.p()
        self._start("write")
        yield from self.db.write(value)
        yield from self._work(work)
        self._finish("write")
        self._wrt.v()


class SemaphoreWritersPriority(SolutionBase):
    """CHP Problem 2: writers have priority; readers may starve.

    Uses the full five-semaphore construction from the 1971 paper —
    the complexity gap versus Problem 1 is itself evidence for the paper's
    thesis that semaphore solutions do not decompose by constraint.
    """

    problem = "writers_priority"
    mechanism = "semaphore"

    def __init__(self, sched: Scheduler, name: str = "db") -> None:
        super().__init__(sched, name)
        self.db = Database()
        self._mutex1 = Semaphore(sched, 1, name + ".m1")
        self._mutex2 = Semaphore(sched, 1, name + ".m2")
        self._mutex3 = Semaphore(sched, 1, name + ".m3")
        self._r = Semaphore(sched, 1, name + ".r")
        self._w = Semaphore(sched, 1, name + ".w")
        self._readcount = 0
        self._writecount = 0

    def read(self, work: int = 1) -> Generator:
        """Perform one read; returns the database value."""
        self._request("read")
        yield from self._mutex3.p()
        yield from self._r.p()
        yield from self._mutex1.p()
        self._readcount += 1
        if self._readcount == 1:
            yield from self._w.p()
        self._mutex1.v()
        self._r.v()
        self._mutex3.v()
        self._start("read")
        value = yield from self.db.read()
        yield from self._work(work)
        self._finish("read")
        yield from self._mutex1.p()
        self._readcount -= 1
        if self._readcount == 0:
            self._w.v()
        self._mutex1.v()
        return value

    def write(self, value: Any, work: int = 1) -> Generator:
        """Perform one write."""
        self._request("write")
        yield from self._mutex2.p()
        self._writecount += 1
        if self._writecount == 1:
            yield from self._r.p()
        self._mutex2.v()
        yield from self._w.p()
        self._start("write")
        yield from self.db.write(value)
        yield from self._work(work)
        self._finish("write")
        self._w.v()
        yield from self._mutex2.p()
        self._writecount -= 1
        if self._writecount == 0:
            self._r.v()
        self._mutex2.v()


READERS_PRIORITY_DESCRIPTION = SolutionDescription(
    problem="readers_priority",
    mechanism="semaphore",
    components=(
        Component("sem:mutex", "semaphore", "protects readcount"),
        Component("sem:wrt", "semaphore", "held by writer or reader group"),
        Component("var:readcount", "variable", "readcount := 0"),
        Component(
            "proto:reader", "procedure",
            "P(mutex); rc+1; if rc=1 P(wrt); V(mutex); READ; "
            "P(mutex); rc-1; if rc=0 V(wrt); V(mutex)",
        ),
        Component("proto:writer", "procedure", "P(wrt); WRITE; V(wrt)"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="rw_exclusion",
            components=("sem:wrt", "var:readcount", "proto:reader", "proto:writer"),
            constructs=("semaphore", "hand_count"),
            directness=Directness.INDIRECT,
            info_handling={
                T1: Directness.INDIRECT,
                T4: Directness.INDIRECT,
            },
            notes="sync state (readcount) hand-maintained under a second "
            "semaphore; exclusion and priority entangled in the same code",
        ),
        ConstraintRealization(
            constraint_id="readers_priority",
            components=("sem:wrt", "var:readcount", "proto:reader"),
            constructs=("semaphore",),
            directness=Directness.INDIRECT,
            info_handling={T1: Directness.INDIRECT},
            notes="priority emerges from readers not releasing wrt, not "
            "from any priority construct",
        ),
    ),
    modularity=ModularityProfile(
        synchronization_with_resource=False,
        resource_separable=False,
        enforced_by_mechanism=False,
        notes="P/V code sits at every point of access; nothing associates "
        "it with the resource (the pre-high-level baseline of section 1)",
    ),
)

WRITERS_PRIORITY_DESCRIPTION = SolutionDescription(
    problem="writers_priority",
    mechanism="semaphore",
    components=(
        Component("sem:mutex1", "semaphore", "protects readcount"),
        Component("sem:mutex2", "semaphore", "protects writecount"),
        Component("sem:mutex3", "semaphore", "serializes reader entry"),
        Component("sem:r", "semaphore", "writers bar new readers"),
        Component("sem:w", "semaphore", "actual write exclusion"),
        Component("var:readcount", "variable", "readcount := 0"),
        Component("var:writecount", "variable", "writecount := 0"),
        Component(
            "proto:reader", "procedure",
            "P(m3); P(r); P(m1); rc+1; if rc=1 P(w); V(m1); V(r); V(m3); "
            "READ; P(m1); rc-1; if rc=0 V(w); V(m1)",
        ),
        Component(
            "proto:writer", "procedure",
            "P(m2); wc+1; if wc=1 P(r); V(m2); P(w); WRITE; V(w); "
            "P(m2); wc-1; if wc=0 V(r); V(m2)",
        ),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="rw_exclusion",
            components=(
                "sem:w", "sem:mutex1", "var:readcount",
                "proto:reader", "proto:writer",
            ),
            constructs=("semaphore", "hand_count"),
            directness=Directness.INDIRECT,
            info_handling={T1: Directness.INDIRECT, T4: Directness.INDIRECT},
            notes="the exclusion core (w + readcount) is *re-implemented* "
            "relative to problem 1 — five semaphores instead of two",
        ),
        ConstraintRealization(
            constraint_id="writers_priority",
            components=(
                "sem:r", "sem:mutex2", "sem:mutex3", "var:writecount",
                "proto:reader", "proto:writer",
            ),
            constructs=("semaphore", "hand_count"),
            directness=Directness.INDIRECT,
            info_handling={T1: Directness.INDIRECT},
            notes="three extra semaphores and a second count purely for the "
            "priority flip",
        ),
    ),
    modularity=ModularityProfile(
        synchronization_with_resource=False,
        resource_separable=False,
        enforced_by_mechanism=False,
        notes="as problem 1; complexity scales with constraint coupling",
    ),
)
