"""Experiment E5: the paper's footnote-3 anomaly, reproduced executably.

Footnote 3 (§5.1.1): "If a write is in progress, and another WRITE starts,
the second writer can start writeattempt and requestwrite, and become
blocked at the third path.  If a reader enters before the end of the first
write, it will be blocked at entry to the second path by the requestwrite in
progress.  The second writer will therefore gain access to the resource
before the reader, though readers should have priority."

:func:`footnote3_workload` spawns exactly that arrival pattern (W1 then W2
then R1, all overlapping W1's write).  Under the Figure-1 path solution the
strict Courtois–Heymans–Parnas oracle flags W2's write starting over R1's
pending read; under the Courtois monitor solution the same pattern is clean.
:func:`find_anomaly_schedule` additionally lets the schedule explorer
*discover* the anomaly on its own, confirming it is not an artifact of one
hand-picked interleaving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ...runtime.scheduler import Scheduler
from ...runtime.trace import RunResult
from ...verify import (
    ScheduleExplorer,
    check_mutual_exclusion,
    check_readers_priority_strict,
)
from .monitor_impl import MonitorReadersPriority
from .pathexpr_impl import PathReadersPriority

Factory = Callable[[Scheduler], object]


def footnote3_workload(factory: Factory, policy=None) -> RunResult:
    """The footnote-3 arrival pattern: W1 writing; W2 then R1 arrive.

    Spawn order plus FIFO stepping realizes the described overlap: W1's
    write is in progress when W2 passes writeattempt/requestwrite and
    blocks at the third path; R1 then blocks at the second path.
    """
    sched = Scheduler(policy=policy)
    impl = factory(sched)

    def first_writer():
        yield from impl.write(1, work=6)  # long write: W2 and R1 overlap it

    def second_writer():
        yield  # arrive strictly after W1 started writing
        yield from impl.write(2, work=1)

    def reader():
        yield
        yield  # arrive after W2 is committed to its attempt
        yield from impl.read(work=1)

    sched.spawn(first_writer, name="W1")
    sched.spawn(second_writer, name="W2")
    sched.spawn(reader, name="R1")
    return sched.run(on_deadlock="return")


@dataclass
class AnomalyReport:
    """Outcome of the E5 comparison."""

    path_violations: List[str]
    monitor_violations: List[str]
    path_order: List[str]
    monitor_order: List[str]
    explorer_witness: Optional[Tuple[int, ...]] = None
    explorer_runs: int = 0

    @property
    def reproduced(self) -> bool:
        """True when the paper's claim holds: the Figure-1 solution violates
        strict readers priority while the monitor solution does not."""
        return bool(self.path_violations) and not self.monitor_violations


def _access_order(result: RunResult) -> List[str]:
    return [
        "{}:{}".format(ev.pname, ev.obj.rsplit(".", 1)[1])
        for ev in result.trace.projection("op_start")
        if ev.obj in ("db.read", "db.write")
    ]


def run_footnote3_comparison(explore: bool = True,
                             max_runs: int = 400) -> AnomalyReport:
    """Run E5: the scripted scenario on both solutions, plus (optionally)
    an automatic explorer search for the anomaly."""
    path_result = footnote3_workload(lambda sched: PathReadersPriority(sched))
    monitor_result = footnote3_workload(
        lambda sched: MonitorReadersPriority(sched)
    )
    report = AnomalyReport(
        path_violations=check_readers_priority_strict(
            path_result.trace, "db"
        ),
        monitor_violations=check_readers_priority_strict(
            monitor_result.trace, "db"
        ),
        path_order=_access_order(path_result),
        monitor_order=_access_order(monitor_result),
    )
    # Exclusion safety must hold in BOTH solutions even in the anomaly run:
    # the flaw is a priority flaw, not a safety flaw.
    assert check_mutual_exclusion(
        path_result.trace, "db", ["write"], ["read"]
    ) == []
    if explore:
        explorer = ScheduleExplorer(
            lambda policy: footnote3_workload(
                lambda sched: PathReadersPriority(sched), policy=policy
            ),
            max_runs=max_runs,
        )
        found = explorer.explore(
            lambda run: check_readers_priority_strict(run.trace, "db"),
            stop_at_first=True,
        )
        report.explorer_witness = found.witness
        report.explorer_runs = found.runs
    return report


def render_report(report: AnomalyReport) -> str:
    """Human-readable E5 summary."""
    lines = [
        "Footnote-3 anomaly (experiment E5)",
        "==================================",
        "Figure-1 path solution, access order: {}".format(
            " -> ".join(report.path_order)
        ),
        "  strict readers-priority violations: {}".format(
            len(report.path_violations)
        ),
    ]
    for violation in report.path_violations:
        lines.append("    " + violation)
    lines += [
        "Courtois monitor solution, access order: {}".format(
            " -> ".join(report.monitor_order)
        ),
        "  strict readers-priority violations: {}".format(
            len(report.monitor_violations)
        ),
    ]
    if report.explorer_witness is not None:
        lines.append(
            "Explorer re-discovered the anomaly independently after {} "
            "schedules (witness decisions: {}).".format(
                report.explorer_runs, list(report.explorer_witness)
            )
        )
    lines.append(
        "Paper claim {}: the published readers-priority path solution does "
        "not implement Courtois et al. readers priority.".format(
            "REPRODUCED" if report.reproduced else "NOT reproduced"
        )
    )
    return "\n".join(lines)
