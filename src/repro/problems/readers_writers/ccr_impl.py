"""Readers/writers under conditional critical regions (experiment E11).

CCR guards read shared variables, so every piece of scheduling information
must first be *put into* a shared variable by hand: reader/writer interest
counts for the priority variants, an explicit ticket dispenser for FCFS.
The methodology's verdict falls out immediately: the constructs compose
(constraints stay decomposable) but nothing is automatic — every
information type except local state is handled indirectly.
"""

from __future__ import annotations

from typing import Any, Generator

from ...core import (
    Component,
    ConstraintRealization,
    Directness,
    InformationType,
    ModularityProfile,
    SolutionDescription,
)
from ...mechanisms.ccr import SharedRegion
from ...resources import Database
from ...runtime.scheduler import Scheduler
from ..base import SolutionBase

T1 = InformationType.REQUEST_TYPE
T2 = InformationType.REQUEST_TIME
T4 = InformationType.SYNC_STATE


class CcrReadersPriority(SolutionBase):
    """Readers priority: writers also wait for *interested* readers, whose
    interest is registered in a shared count before the admission region."""

    problem = "readers_priority"
    mechanism = "ccr"

    def __init__(self, sched: Scheduler, name: str = "db") -> None:
        super().__init__(sched, name)
        self.db = Database()
        self.cell = SharedRegion(
            sched,
            {"readers": 0, "writing": False, "r_interest": 0},
            name=name + ".v",
        )

    def read(self, work: int = 1) -> Generator:
        """Perform one read; returns the database value."""
        self._request("read")
        cell = self.cell
        yield from cell.enter()
        cell.vars["r_interest"] += 1
        cell.leave()
        yield from cell.enter(lambda v: not v["writing"])
        cell.vars["r_interest"] -= 1
        cell.vars["readers"] += 1
        cell.leave()
        self._start("read")
        value = yield from self.db.read()
        yield from self._work(work)
        self._finish("read")
        yield from cell.enter()
        cell.vars["readers"] -= 1
        cell.leave()
        return value

    def write(self, value: Any, work: int = 1) -> Generator:
        """Perform one write."""
        self._request("write")
        cell = self.cell
        yield from cell.enter(
            lambda v: not v["writing"]
            and v["readers"] == 0
            and v["r_interest"] == 0
        )
        cell.vars["writing"] = True
        cell.leave()
        self._start("write")
        yield from self.db.write(value)
        yield from self._work(work)
        self._finish("write")
        yield from cell.enter()
        cell.vars["writing"] = False
        cell.leave()


class CcrWritersPriority(SolutionBase):
    """Writers priority: the mirror image, with a writer-interest count."""

    problem = "writers_priority"
    mechanism = "ccr"

    def __init__(self, sched: Scheduler, name: str = "db") -> None:
        super().__init__(sched, name)
        self.db = Database()
        self.cell = SharedRegion(
            sched,
            {"readers": 0, "writing": False, "w_interest": 0},
            name=name + ".v",
        )

    def read(self, work: int = 1) -> Generator:
        """Perform one read; returns the database value."""
        self._request("read")
        cell = self.cell
        yield from cell.enter(
            lambda v: not v["writing"] and v["w_interest"] == 0
        )
        cell.vars["readers"] += 1
        cell.leave()
        self._start("read")
        value = yield from self.db.read()
        yield from self._work(work)
        self._finish("read")
        yield from cell.enter()
        cell.vars["readers"] -= 1
        cell.leave()
        return value

    def write(self, value: Any, work: int = 1) -> Generator:
        """Perform one write."""
        self._request("write")
        cell = self.cell
        yield from cell.enter()
        cell.vars["w_interest"] += 1
        cell.leave()
        yield from cell.enter(
            lambda v: not v["writing"] and v["readers"] == 0
        )
        cell.vars["w_interest"] -= 1
        cell.vars["writing"] = True
        cell.leave()
        self._start("write")
        yield from self.db.write(value)
        yield from self._work(work)
        self._finish("write")
        yield from cell.enter()
        cell.vars["writing"] = False
        cell.leave()


class CcrRWFcfs(SolutionBase):
    """Arrival order via a hand-rolled ticket dispenser: guards cannot see
    request time, so the time is turned into shared-variable state."""

    problem = "rw_fcfs"
    mechanism = "ccr"

    def __init__(self, sched: Scheduler, name: str = "db") -> None:
        super().__init__(sched, name)
        self.db = Database()
        self.cell = SharedRegion(
            sched,
            {"readers": 0, "writing": False, "next_ticket": 0, "turn": 0},
            name=name + ".v",
        )

    def _take_ticket(self) -> Generator:
        yield from self.cell.enter()
        ticket = self.cell.vars["next_ticket"]
        self.cell.vars["next_ticket"] += 1
        self.cell.leave()
        return ticket

    def read(self, work: int = 1) -> Generator:
        """Perform one read; returns the database value."""
        self._request("read")
        cell = self.cell
        ticket = yield from self._take_ticket()
        yield from cell.enter(
            lambda v: v["turn"] == ticket and not v["writing"]
        )
        cell.vars["turn"] += 1
        cell.vars["readers"] += 1
        cell.leave()
        self._start("read")
        value = yield from self.db.read()
        yield from self._work(work)
        self._finish("read")
        yield from cell.enter()
        cell.vars["readers"] -= 1
        cell.leave()
        return value

    def write(self, value: Any, work: int = 1) -> Generator:
        """Perform one write."""
        self._request("write")
        cell = self.cell
        ticket = yield from self._take_ticket()
        yield from cell.enter(
            lambda v: v["turn"] == ticket
            and not v["writing"]
            and v["readers"] == 0
        )
        cell.vars["turn"] += 1
        cell.vars["writing"] = True
        cell.leave()
        self._start("write")
        yield from self.db.write(value)
        yield from self._work(work)
        self._finish("write")
        yield from cell.enter()
        cell.vars["writing"] = False
        cell.leave()


# ----------------------------------------------------------------------
# Descriptions
# ----------------------------------------------------------------------
_CCR_EXCLUSION_COMPONENTS = (
    Component("var:readers", "variable", "readers := 0"),
    Component("var:writing", "variable", "writing := false"),
    Component("excl:read_guard", "guard", "when not writing"),
    Component("excl:write_guard", "guard",
              "when not writing and readers = 0"),
)

_CCR_EXCLUSION_REALIZATION = ConstraintRealization(
    constraint_id="rw_exclusion",
    components=tuple(c.name for c in _CCR_EXCLUSION_COMPONENTS),
    constructs=("region_guard", "shared_variables"),
    directness=Directness.DIRECT,
    info_handling={T1: Directness.INDIRECT, T4: Directness.INDIRECT},
    notes="guards are direct, but all sync state is hand-kept shared "
    "variables; identical across the three variants",
)

CCR_READERS_PRIORITY_DESCRIPTION = SolutionDescription(
    problem="readers_priority",
    mechanism="ccr",
    components=_CCR_EXCLUSION_COMPONENTS + (
        Component("prio:r_interest", "variable",
                  "reader interest count, registered pre-admission"),
        Component("prio:write_defer", "guard",
                  "writer also waits for r_interest = 0"),
    ),
    realizations=(
        _CCR_EXCLUSION_REALIZATION,
        ConstraintRealization(
            constraint_id="readers_priority",
            components=("prio:r_interest", "prio:write_defer"),
            constructs=("region_guard", "interest_count"),
            directness=Directness.INDIRECT,
            info_handling={T1: Directness.INDIRECT},
            notes="no priority construct: waiting readers must make "
            "themselves visible through an extra shared count",
        ),
    ),
    modularity=ModularityProfile(
        synchronization_with_resource=False,
        resource_separable=True,
        enforced_by_mechanism=False,
        notes="region statements sit at points of use, like semaphores "
        "(requirement 1 fails)",
    ),
)

CCR_WRITERS_PRIORITY_DESCRIPTION = SolutionDescription(
    problem="writers_priority",
    mechanism="ccr",
    components=_CCR_EXCLUSION_COMPONENTS + (
        Component("prio:w_interest", "variable",
                  "writer interest count, registered pre-admission"),
        Component("prio:read_defer", "guard",
                  "reader also waits for w_interest = 0"),
    ),
    realizations=(
        _CCR_EXCLUSION_REALIZATION,
        ConstraintRealization(
            constraint_id="writers_priority",
            components=("prio:w_interest", "prio:read_defer"),
            constructs=("region_guard", "interest_count"),
            directness=Directness.INDIRECT,
            info_handling={T1: Directness.INDIRECT},
        ),
    ),
    modularity=ModularityProfile(False, True, False),
)

CCR_RW_FCFS_DESCRIPTION = SolutionDescription(
    problem="rw_fcfs",
    mechanism="ccr",
    components=_CCR_EXCLUSION_COMPONENTS + (
        Component("prio:tickets", "variable",
                  "next_ticket / turn dispenser"),
        Component("prio:turn_guard", "guard", "when turn = my ticket"),
    ),
    realizations=(
        _CCR_EXCLUSION_REALIZATION,
        ConstraintRealization(
            constraint_id="arrival_order",
            components=("prio:tickets", "prio:turn_guard"),
            constructs=("region_guard", "ticket_protocol"),
            directness=Directness.INDIRECT,
            info_handling={T2: Directness.INDIRECT, T1: Directness.INDIRECT},
            notes="guards cannot see request time at all; the ticket "
            "protocol reifies it into shared state by hand",
        ),
    ),
    modularity=ModularityProfile(False, True, False),
)
