"""The readers/writers problem family — the paper's central example.

Three specifications (readers priority, writers priority, FCFS) × four
mechanisms.  The path-expression solutions are the paper's Figures 1 and 2,
preserved warts and all (footnote-3 anomaly included).
"""

from .monitor_impl import (
    MONITOR_READERS_PRIORITY_DESCRIPTION,
    MONITOR_RW_FCFS_DESCRIPTION,
    MONITOR_WRITERS_PRIORITY_DESCRIPTION,
    MonitorReadersPriority,
    MonitorRWFcfs,
    MonitorWritersPriority,
)
from .pathexpr_impl import (
    FCFS_PATHS,
    FIGURE1_PATHS,
    FIGURE2_PATHS,
    PATH_READERS_PRIORITY_DESCRIPTION,
    PATH_RW_FCFS_DESCRIPTION,
    PATH_WRITERS_PRIORITY_DESCRIPTION,
    PathReadersPriority,
    PathRWFcfs,
    PathWritersPriority,
)
from .semaphore_impl import (
    READERS_PRIORITY_DESCRIPTION as SEMAPHORE_READERS_PRIORITY_DESCRIPTION,
    SemaphoreReadersPriority,
    SemaphoreWritersPriority,
    WRITERS_PRIORITY_DESCRIPTION as SEMAPHORE_WRITERS_PRIORITY_DESCRIPTION,
)
from .serializer_impl import (
    SERIALIZER_READERS_PRIORITY_DESCRIPTION,
    SERIALIZER_RW_FCFS_DESCRIPTION,
    SERIALIZER_WRITERS_PRIORITY_DESCRIPTION,
    SerializerReadersPriority,
    SerializerRWFcfs,
    SerializerWritersPriority,
)
from .workloads import (
    BURST_PLAN,
    PHASED_PLAN,
    make_verifier,
    run_workload,
    staggered_plan,
)

__all__ = [
    "BURST_PLAN",
    "FCFS_PATHS",
    "FIGURE1_PATHS",
    "FIGURE2_PATHS",
    "MONITOR_READERS_PRIORITY_DESCRIPTION",
    "MONITOR_RW_FCFS_DESCRIPTION",
    "MONITOR_WRITERS_PRIORITY_DESCRIPTION",
    "MonitorRWFcfs",
    "MonitorReadersPriority",
    "MonitorWritersPriority",
    "PATH_READERS_PRIORITY_DESCRIPTION",
    "PATH_RW_FCFS_DESCRIPTION",
    "PATH_WRITERS_PRIORITY_DESCRIPTION",
    "PHASED_PLAN",
    "PathRWFcfs",
    "PathReadersPriority",
    "PathWritersPriority",
    "SEMAPHORE_READERS_PRIORITY_DESCRIPTION",
    "SEMAPHORE_WRITERS_PRIORITY_DESCRIPTION",
    "SERIALIZER_READERS_PRIORITY_DESCRIPTION",
    "SERIALIZER_RW_FCFS_DESCRIPTION",
    "SERIALIZER_WRITERS_PRIORITY_DESCRIPTION",
    "SemaphoreReadersPriority",
    "SemaphoreWritersPriority",
    "SerializerRWFcfs",
    "SerializerReadersPriority",
    "SerializerWritersPriority",
    "make_verifier",
    "run_workload",
    "staggered_plan",
]

from .ccr_impl import (
    CCR_RW_FCFS_DESCRIPTION,
    CCR_READERS_PRIORITY_DESCRIPTION,
    CCR_WRITERS_PRIORITY_DESCRIPTION,
    CcrRWFcfs,
    CcrReadersPriority,
    CcrWritersPriority,
)
from .csp_impl import (
    CSP_RW_FCFS_DESCRIPTION,
    CSP_READERS_PRIORITY_DESCRIPTION,
    CSP_WRITERS_PRIORITY_DESCRIPTION,
    CspRWFcfs,
    CspReadersPriority,
    CspWritersPriority,
)

__all__ += [
    "CCR_READERS_PRIORITY_DESCRIPTION",
    "CCR_RW_FCFS_DESCRIPTION",
    "CCR_WRITERS_PRIORITY_DESCRIPTION",
    "CSP_READERS_PRIORITY_DESCRIPTION",
    "CSP_RW_FCFS_DESCRIPTION",
    "CSP_WRITERS_PRIORITY_DESCRIPTION",
    "CcrRWFcfs",
    "CcrReadersPriority",
    "CcrWritersPriority",
    "CspRWFcfs",
    "CspReadersPriority",
    "CspWritersPriority",
]
