"""Readers/writers under message passing (CSP server processes).

§6 of the paper flags message-passing mechanisms (CSP, guarded commands) as
the next evaluation target; these solutions apply the methodology to them
(experiment E11).  The synchronization scheme is a *server process* whose
guarded-select loop encodes the constraints:

* exclusion lives in the select guards over the server's own counters;
* **priority is the textual order of the select arms** — when the resource
  frees and both classes wait, the earlier arm's immediate match wins;
* writers-priority additionally needs to know "is a writer *waiting*?",
  which pure CSP guards cannot see — the implementation probes the request
  channel's sender queue (the Ada-COUNT-style escape hatch), and the
  solution description records this as the mechanism's indirectness, a new
  finding produced by the paper's own method;
* arrival order (rw_fcfs) is free: one request channel IS the FCFS queue,
  with the request *type* riding in the message — the T1×T2 conflict
  dissolves exactly as it does for serializers, but via message payloads.
"""

from __future__ import annotations

from typing import Any, Generator

from ...core import (
    Component,
    ConstraintRealization,
    Directness,
    InformationType,
    ModularityProfile,
    SolutionDescription,
)
from ...mechanisms.channels import Channel, ReceiveOp, select
from ...resources import Database
from ...runtime.scheduler import Scheduler
from ..base import SolutionBase

T1 = InformationType.REQUEST_TYPE
T2 = InformationType.REQUEST_TIME
T4 = InformationType.SYNC_STATE


class _CspRWBase(SolutionBase):
    """Client-side protocol shared by the CSP readers/writers servers."""

    def __init__(self, sched: Scheduler, name: str = "db") -> None:
        super().__init__(sched, name)
        self.db = Database()
        self.ch_start_read = Channel(sched, name + ".start_read")
        self.ch_end_read = Channel(sched, name + ".end_read")
        self.ch_start_write = Channel(sched, name + ".start_write")
        self.ch_end_write = Channel(sched, name + ".end_write")
        sched.spawn(self._server, name=name + ".server", daemon=True)

    def _server(self) -> Generator:
        raise NotImplementedError

    def read(self, work: int = 1) -> Generator:
        """Perform one read; returns the database value."""
        self._request("read")
        yield from self.ch_start_read.send(None)
        self._start("read")
        value = yield from self.db.read()
        yield from self._work(work)
        self._finish("read")
        yield from self.ch_end_read.send(None)
        return value

    def write(self, value: Any, work: int = 1) -> Generator:
        """Perform one write."""
        self._request("write")
        yield from self.ch_start_write.send(None)
        self._start("write")
        yield from self.db.write(value)
        yield from self._work(work)
        self._finish("write")
        yield from self.ch_end_write.send(None)


class CspReadersPriority(_CspRWBase):
    """Readers priority by arm order: start_read is the first select arm."""

    problem = "readers_priority"
    mechanism = "csp"

    def _server(self) -> Generator:
        readers = 0
        writing = False
        while True:
            index, __ = yield from select(self._sched, [
                ReceiveOp(self.ch_start_read, guard=not writing),
                ReceiveOp(self.ch_end_read, guard=readers > 0),
                ReceiveOp(
                    self.ch_start_write,
                    guard=not writing and readers == 0,
                ),
                ReceiveOp(self.ch_end_write, guard=writing),
            ])
            if index == 0:
                readers += 1
            elif index == 1:
                readers -= 1
            elif index == 2:
                writing = True
            else:
                writing = False


class CspWritersPriority(_CspRWBase):
    """Writers priority: start_write is the first arm, and the start_read
    guard probes the writer queue (the beyond-pure-CSP step)."""

    problem = "writers_priority"
    mechanism = "csp"

    def _server(self) -> Generator:
        readers = 0
        writing = False
        while True:
            index, __ = yield from select(self._sched, [
                ReceiveOp(
                    self.ch_start_write,
                    guard=not writing and readers == 0,
                ),
                ReceiveOp(
                    self.ch_start_read,
                    # Queue introspection: pure CSP guards cannot reference
                    # "a writer is waiting"; the COUNT-style probe can.
                    guard=(
                        not writing
                        and self.ch_start_write.senders_waiting == 0
                    ),
                ),
                ReceiveOp(self.ch_end_read, guard=readers > 0),
                ReceiveOp(self.ch_end_write, guard=writing),
            ])
            if index == 0:
                writing = True
            elif index == 1:
                readers += 1
            elif index == 2:
                readers -= 1
            else:
                writing = False


class CspRWFcfs(SolutionBase):
    """Arrival order: ONE request channel carrying (type, reply-channel).

    The channel's FIFO sender queue is the arrival order; the server defers
    the queue head until it is grantable, so service is strictly FCFS while
    consecutive readers still overlap.
    """

    problem = "rw_fcfs"
    mechanism = "csp"

    def __init__(self, sched: Scheduler, name: str = "db") -> None:
        super().__init__(sched, name)
        self.db = Database()
        self.ch_request = Channel(sched, name + ".request")
        self.ch_end_read = Channel(sched, name + ".end_read")
        self.ch_end_write = Channel(sched, name + ".end_write")
        sched.spawn(self._server, name=name + ".server", daemon=True)

    def _server(self) -> Generator:
        readers = 0
        writing = False
        pending = None  # deferred queue head: (kind, reply channel)
        while True:
            if pending is not None:
                kind, reply = pending
                grantable = (
                    (kind == "r" and not writing)
                    or (kind == "w" and not writing and readers == 0)
                )
                if grantable:
                    if kind == "r":
                        readers += 1
                    else:
                        writing = True
                    pending = None
                    yield from reply.send(None)
                    continue
            index, msg = yield from select(self._sched, [
                ReceiveOp(self.ch_end_read, guard=readers > 0),
                ReceiveOp(self.ch_end_write, guard=writing),
                ReceiveOp(self.ch_request, guard=pending is None),
            ])
            if index == 0:
                readers -= 1
            elif index == 1:
                writing = False
            else:
                pending = msg

    def read(self, work: int = 1) -> Generator:
        """Perform one read; returns the database value."""
        self._request("read")
        reply = Channel(self._sched, self.name + ".reply_r")
        yield from self.ch_request.send(("r", reply))
        yield from reply.receive()
        self._start("read")
        value = yield from self.db.read()
        yield from self._work(work)
        self._finish("read")
        yield from self.ch_end_read.send(None)
        return value

    def write(self, value: Any, work: int = 1) -> Generator:
        """Perform one write."""
        self._request("write")
        reply = Channel(self._sched, self.name + ".reply_w")
        yield from self.ch_request.send(("w", reply))
        yield from reply.receive()
        self._start("write")
        yield from self.db.write(value)
        yield from self._work(work)
        self._finish("write")
        yield from self.ch_end_write.send(None)


# ----------------------------------------------------------------------
# Descriptions (same constraint-granular layout as the other mechanisms)
# ----------------------------------------------------------------------
_CSP_EXCLUSION_COMPONENTS = (
    Component("var:readers", "variable", "server-local reader count"),
    Component("var:writing", "variable", "server-local writer flag"),
    Component("excl:read_guard", "guard", "not writing"),
    Component("excl:write_guard", "guard", "not writing and readers = 0"),
    Component("chan:end_read", "queue", "completion channel"),
    Component("chan:end_write", "queue", "completion channel"),
)

_CSP_EXCLUSION_REALIZATION = ConstraintRealization(
    constraint_id="rw_exclusion",
    components=tuple(c.name for c in _CSP_EXCLUSION_COMPONENTS),
    constructs=("server_process", "guarded_select", "message_payload"),
    directness=Directness.DIRECT,
    info_handling={T1: Directness.DIRECT, T4: Directness.INDIRECT},
    notes="sync state is server-local data, like a monitor's (hand-kept); "
    "type = which channel the request arrives on",
)

CSP_READERS_PRIORITY_DESCRIPTION = SolutionDescription(
    problem="readers_priority",
    mechanism="csp",
    components=_CSP_EXCLUSION_COMPONENTS + (
        Component("prio:arm_order", "guard",
                  "start_read is the first select arm"),
    ),
    realizations=(
        _CSP_EXCLUSION_REALIZATION,
        ConstraintRealization(
            constraint_id="readers_priority",
            components=("prio:arm_order",),
            constructs=("arm_order",),
            directness=Directness.DIRECT,
            info_handling={T1: Directness.DIRECT},
            notes="priority = textual order of guarded alternatives",
        ),
    ),
    modularity=ModularityProfile(
        synchronization_with_resource=True,
        resource_separable=False,
        enforced_by_mechanism=True,
        notes="the server encapsulates access, but resource handling and "
        "synchronization share one loop (monitor-like blending)",
    ),
)

CSP_WRITERS_PRIORITY_DESCRIPTION = SolutionDescription(
    problem="writers_priority",
    mechanism="csp",
    components=_CSP_EXCLUSION_COMPONENTS + (
        Component("prio:arm_order", "guard",
                  "start_write is the first select arm"),
        Component("prio:queue_probe", "guard",
                  "start_read guard probes start_write.senders_waiting"),
    ),
    realizations=(
        _CSP_EXCLUSION_REALIZATION,
        ConstraintRealization(
            constraint_id="writers_priority",
            components=("prio:arm_order", "prio:queue_probe"),
            constructs=("arm_order", "queue_introspection"),
            directness=Directness.INDIRECT,
            info_handling={T1: Directness.INDIRECT},
            notes="NEW finding via the methodology: 'a writer is waiting' "
            "is sync state about *senders*, which pure CSP guards cannot "
            "express — needs Ada-COUNT-style channel introspection",
        ),
    ),
    modularity=ModularityProfile(True, False, True),
)

CSP_RW_FCFS_DESCRIPTION = SolutionDescription(
    problem="rw_fcfs",
    mechanism="csp",
    components=_CSP_EXCLUSION_COMPONENTS + (
        Component("chan:request", "queue",
                  "single request channel = arrival order"),
        Component("var:pending", "variable", "deferred queue head"),
    ),
    realizations=(
        _CSP_EXCLUSION_REALIZATION,
        ConstraintRealization(
            constraint_id="arrival_order",
            components=("chan:request", "var:pending"),
            constructs=("channel_fifo", "message_payload"),
            directness=Directness.DIRECT,
            info_handling={T2: Directness.DIRECT, T1: Directness.DIRECT},
            notes="one channel = arrival order; the type rides in the "
            "message — the T1xT2 conflict dissolves, as with serializers",
        ),
    ),
    modularity=ModularityProfile(True, False, True),
)
