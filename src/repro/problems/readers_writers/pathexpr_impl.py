"""Readers/writers with path expressions — the paper's Figures 1 and 2.

The path programs below are transcribed *verbatim* from the paper
(Campbell & Habermann's solutions as analysed in §5.1), including all the
"synchronization procedures" — ``writeattempt``, ``requestread``,
``requestwrite``, ``openwrite`` / ``openread`` — whose necessity is the
§5.1.1 finding.  Nested procedure bodies mirror the figures exactly
(``READ = begin requestread end``, ``requestread = begin read end``, …).

The readers-priority solution intentionally preserves the paper's
footnote-3 flaw: under the right interleaving a second writer overtakes an
earlier-blocked reader.  Experiment E5 demonstrates it; do not "fix" this
implementation — it is the artifact under study.
"""

from __future__ import annotations

from typing import Any, Generator

from ...core import (
    Component,
    ConstraintRealization,
    Directness,
    InformationType,
    ModularityProfile,
    SolutionDescription,
)
from ...mechanisms.pathexpr import PathResource
from ...resources import Database
from ...runtime.scheduler import Scheduler
from ..base import SolutionBase

T1 = InformationType.REQUEST_TYPE
T2 = InformationType.REQUEST_TIME
T4 = InformationType.SYNC_STATE

#: Figure 1 of the paper, character for character (modulo whitespace).
FIGURE1_PATHS = """
    path writeattempt end
    path { requestread } , requestwrite end
    path { read } , (openwrite ; write) end
"""

#: Figure 2 of the paper.
FIGURE2_PATHS = """
    path readattempt end
    path requestread , { requestwrite } end
    path { openread ; read } , write end
"""

#: The FCFS variant §4.2 asks about: base paths have no way to order across
#: types except a serial admission gate (losing reader concurrency).
FCFS_PATHS = """
    path admitread , admitwrite end
    path { read } , write end
"""


class PathReadersPriority(SolutionBase):
    """Figure 1: readers-priority via the three-path program.

    ``READ = begin requestread end``; ``requestread = begin read end``;
    ``WRITE = begin writeattempt ; write end``;
    ``writeattempt = begin requestwrite end``;
    ``requestwrite = begin openwrite end``; ``openwrite`` is a pure gate.
    """

    problem = "readers_priority"
    mechanism = "pathexpr"

    def __init__(
        self,
        sched: Scheduler,
        name: str = "db",
        wake_policy: str = "fifo",
        seed: int = 0,
    ) -> None:
        super().__init__(sched, name)
        self.db = Database()
        self.paths = PathResource(
            sched,
            FIGURE1_PATHS,
            name=name + ".paths",
            wake_policy=wake_policy,
            seed=seed,
        )
        solution = self

        def read_body(res, work: int) -> Generator:
            solution._start("read")
            value = yield from solution.db.read()
            yield from solution._work(work)
            solution._finish("read")
            return value

        def requestread_body(res, work: int) -> Generator:
            value = yield from res.invoke("read", work)
            return value

        def big_read_body(res, work: int) -> Generator:
            value = yield from res.invoke("requestread", work)
            return value

        def write_body(res, value: Any, work: int) -> Generator:
            solution._start("write")
            yield from solution.db.write(value)
            yield from solution._work(work)
            solution._finish("write")

        def requestwrite_body(res) -> Generator:
            yield from res.invoke("openwrite")

        def writeattempt_body(res) -> Generator:
            yield from res.invoke("requestwrite")

        def big_write_body(res, value: Any, work: int) -> Generator:
            yield from res.invoke("writeattempt")
            yield from res.invoke("write", value, work)

        self.paths.define("read", read_body)
        self.paths.define("requestread", requestread_body)
        self.paths.define("READ", big_read_body)
        self.paths.define("write", write_body)
        self.paths.define("requestwrite", requestwrite_body)
        self.paths.define("writeattempt", writeattempt_body)
        self.paths.define("WRITE", big_write_body)
        # openwrite has no body: a pure synchronization procedure (gate).

    def read(self, work: int = 1) -> Generator:
        """Perform one read; returns the database value."""
        self._request("read")
        value = yield from self.paths.invoke("READ", work)
        return value

    def write(self, value: Any, work: int = 1) -> Generator:
        """Perform one write."""
        self._request("write")
        yield from self.paths.invoke("WRITE", value, work)


class PathWritersPriority(SolutionBase):
    """Figure 2: writers-priority.

    ``READ = begin readattempt ; read end``;
    ``readattempt = begin requestread end``;
    ``requestread = begin openread end``; ``openread`` is a pure gate;
    ``WRITE = begin requestwrite end``; ``requestwrite = begin write end``.
    """

    problem = "writers_priority"
    mechanism = "pathexpr"

    def __init__(
        self,
        sched: Scheduler,
        name: str = "db",
        wake_policy: str = "fifo",
        seed: int = 0,
    ) -> None:
        super().__init__(sched, name)
        self.db = Database()
        self.paths = PathResource(
            sched,
            FIGURE2_PATHS,
            name=name + ".paths",
            wake_policy=wake_policy,
            seed=seed,
        )
        solution = self

        def read_body(res, work: int) -> Generator:
            solution._start("read")
            value = yield from solution.db.read()
            yield from solution._work(work)
            solution._finish("read")
            return value

        def requestread_body(res) -> Generator:
            yield from res.invoke("openread")

        def readattempt_body(res) -> Generator:
            yield from res.invoke("requestread")

        def big_read_body(res, work: int) -> Generator:
            yield from res.invoke("readattempt")
            value = yield from res.invoke("read", work)
            return value

        def write_body(res, value: Any, work: int) -> Generator:
            solution._start("write")
            yield from solution.db.write(value)
            yield from solution._work(work)
            solution._finish("write")

        def requestwrite_body(res, value: Any, work: int) -> Generator:
            yield from res.invoke("write", value, work)

        def big_write_body(res, value: Any, work: int) -> Generator:
            yield from res.invoke("requestwrite", value, work)

        self.paths.define("read", read_body)
        self.paths.define("requestread", requestread_body)
        self.paths.define("readattempt", readattempt_body)
        self.paths.define("READ", big_read_body)
        self.paths.define("write", write_body)
        self.paths.define("requestwrite", requestwrite_body)
        self.paths.define("WRITE", big_write_body)
        # openread has no body: a pure synchronization procedure (gate).

    def read(self, work: int = 1) -> Generator:
        """Perform one read; returns the database value."""
        self._request("read")
        value = yield from self.paths.invoke("READ", work)
        return value

    def write(self, value: Any, work: int = 1) -> Generator:
        """Perform one write."""
        self._request("write")
        yield from self.paths.invoke("WRITE", value, work)


class PathRWFcfs(SolutionBase):
    """FCFS readers/writers in *base* paths: a serial admission gate.

    ``admitread = begin read end``; ``admitwrite = begin write end``; the
    first path's FIFO selection yields strict arrival order — but because
    the admission procedure encloses the whole access, readers can no longer
    overlap.  This degradation is the §4.2 finding: the change from
    readers-priority to FCFS is "more difficult" in paths, and the honest
    base-path solution gives up concurrency.
    """

    problem = "rw_fcfs"
    mechanism = "pathexpr"

    def __init__(self, sched: Scheduler, name: str = "db",
                 wake_policy: str = "fifo", seed: int = 0) -> None:
        super().__init__(sched, name)
        self.db = Database()
        self.paths = PathResource(
            sched,
            FCFS_PATHS,
            name=name + ".paths",
            wake_policy=wake_policy,
            seed=seed,
        )
        solution = self

        def read_body(res, work: int) -> Generator:
            solution._start("read")
            value = yield from solution.db.read()
            yield from solution._work(work)
            solution._finish("read")
            return value

        def write_body(res, value: Any, work: int) -> Generator:
            solution._start("write")
            yield from solution.db.write(value)
            yield from solution._work(work)
            solution._finish("write")

        def admitread_body(res, work: int) -> Generator:
            value = yield from res.invoke("read", work)
            return value

        def admitwrite_body(res, value: Any, work: int) -> Generator:
            yield from res.invoke("write", value, work)

        self.paths.define("read", read_body)
        self.paths.define("write", write_body)
        self.paths.define("admitread", admitread_body)
        self.paths.define("admitwrite", admitwrite_body)

    def read(self, work: int = 1) -> Generator:
        """Perform one read; returns the database value."""
        self._request("read")
        value = yield from self.paths.invoke("admitread", work)
        return value

    def write(self, value: Any, work: int = 1) -> Generator:
        """Perform one write."""
        self._request("write")
        yield from self.paths.invoke("admitwrite", value, work)


# ----------------------------------------------------------------------
# Descriptions
# ----------------------------------------------------------------------
PATH_READERS_PRIORITY_DESCRIPTION = SolutionDescription(
    problem="readers_priority",
    mechanism="pathexpr",
    components=(
        Component("path:1", "path", "path writeattempt end"),
        Component("path:2", "path",
                  "path { requestread } , requestwrite end"),
        Component("path:3", "path",
                  "path { read } , (openwrite ; write) end"),
        Component("gate:writeattempt", "sync_procedure",
                  "writeattempt = begin requestwrite end"),
        Component("gate:requestwrite", "sync_procedure",
                  "requestwrite = begin openwrite end"),
        Component("gate:requestread", "sync_procedure",
                  "requestread = begin read end"),
        Component("gate:openwrite", "sync_procedure",
                  "openwrite = begin end  (pure gate)"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="rw_exclusion",
            components=("path:3",),
            constructs=("burst", "selection"),
            directness=Directness.DIRECT,
            info_handling={T1: Directness.DIRECT, T4: Directness.INDIRECT},
            notes="in isolation: path { read } , write end — but here it is "
            "entangled with openwrite for priority coordination (§5.1.2)",
        ),
        ConstraintRealization(
            constraint_id="readers_priority",
            components=(
                "path:1", "path:2", "gate:writeattempt",
                "gate:requestwrite", "gate:requestread", "gate:openwrite",
            ),
            constructs=("sync_procedure", "burst", "selection"),
            directness=Directness.INDIRECT,
            info_handling={T1: Directness.INDIRECT},
            notes="no direct means of specifying priority: realized by two "
            "extra paths and four gate procedures (§5.1.1); does NOT match "
            "Courtois et al. behaviour — footnote 3 anomaly, experiment E5",
        ),
    ),
    modularity=ModularityProfile(
        synchronization_with_resource=True,
        resource_separable=False,
        enforced_by_mechanism=True,
        notes="paths are part of the type definition (requirement 1 holds "
        "automatically), but sync procedures blur resource vs. "
        "synchronization (requirement 2 fails, §5.1.2)",
    ),
)

PATH_WRITERS_PRIORITY_DESCRIPTION = SolutionDescription(
    problem="writers_priority",
    mechanism="pathexpr",
    components=(
        Component("path:1", "path", "path readattempt end"),
        Component("path:2", "path",
                  "path requestread , { requestwrite } end"),
        Component("path:3", "path",
                  "path { openread ; read } , write end"),
        Component("gate:readattempt", "sync_procedure",
                  "readattempt = begin requestread end"),
        Component("gate:requestread", "sync_procedure",
                  "requestread = begin openread end"),
        Component("gate:requestwrite", "sync_procedure",
                  "requestwrite = begin write end"),
        Component("gate:openread", "sync_procedure",
                  "openread = begin end  (pure gate)"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="rw_exclusion",
            components=("path:3",),
            constructs=("burst", "selection"),
            directness=Directness.DIRECT,
            info_handling={T1: Directness.DIRECT, T4: Directness.INDIRECT},
            notes="the exclusion path DIFFERS from the readers_priority "
            "one ({ openread ; read } vs { read }) although the constraint "
            "is unchanged — the §5.1.2 independence violation",
        ),
        ConstraintRealization(
            constraint_id="writers_priority",
            components=(
                "path:1", "path:2", "gate:readattempt",
                "gate:requestread", "gate:requestwrite", "gate:openread",
            ),
            constructs=("sync_procedure", "burst", "selection"),
            directness=Directness.INDIRECT,
            info_handling={T1: Directness.INDIRECT},
            notes="every path and every sync procedure changed relative to "
            "Figure 1 (§5.1.2: 'a modification to one constraint involves "
            "changing the entire solution')",
        ),
    ),
    modularity=ModularityProfile(
        synchronization_with_resource=True,
        resource_separable=False,
        enforced_by_mechanism=True,
    ),
)

PATH_RW_FCFS_DESCRIPTION = SolutionDescription(
    problem="rw_fcfs",
    mechanism="pathexpr",
    components=(
        Component("path:1", "path", "path admitread , admitwrite end"),
        Component("path:2", "path", "path { read } , write end"),
        Component("gate:admitread", "sync_procedure",
                  "admitread = begin read end"),
        Component("gate:admitwrite", "sync_procedure",
                  "admitwrite = begin write end"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="rw_exclusion",
            components=("path:2",),
            constructs=("burst", "selection"),
            directness=Directness.DIRECT,
            info_handling={T1: Directness.DIRECT, T4: Directness.INDIRECT},
            notes="the isolated exclusion path survives here unchanged — "
            "but is made redundant by the serial admission gate",
        ),
        ConstraintRealization(
            constraint_id="arrival_order",
            components=("path:1", "gate:admitread", "gate:admitwrite"),
            constructs=("sync_procedure", "selection", "fifo_selection"),
            directness=Directness.INDIRECT,
            info_handling={T2: Directness.INDIRECT, T1: Directness.DIRECT},
            notes="request order only via the longest-waiting selection "
            "assumption plus 'additional request operations' (§5.1.2); the "
            "enclosing gate serializes readers, losing burst concurrency",
        ),
    ),
    modularity=ModularityProfile(
        synchronization_with_resource=True,
        resource_separable=False,
        enforced_by_mechanism=True,
    ),
)
