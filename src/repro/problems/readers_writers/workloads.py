"""Workloads and verifiers for the readers/writers problem family.

A *plan* is a list of ``(kind, delay, work)`` steps — ``kind`` is ``"R"`` or
``"W"``, ``delay`` the virtual-time arrival offset, ``work`` the critical-
section length.  :func:`run_workload` spawns one process per step against a
fresh solution instance and returns the run result.

:func:`make_verifier` packages the oracle battery the evaluation engine
runs per solution:

* deterministic (FIFO policy) runs: exclusion safety **and** the problem's
  priority/ordering oracle;
* randomized-policy runs (several seeds): exclusion safety only — priority
  oracles need controlled request timing, as discussed in the oracle module
  docstring — plus resource-integrity errors surfacing as violations.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence, Tuple

from ...runtime.errors import ProcessFailed
from ...runtime.policies import RandomPolicy, SchedulingPolicy
from ...runtime.scheduler import Scheduler
from ...runtime.trace import RunResult
from ...verify import check_fcfs, check_mutual_exclusion, check_no_overtake

Step = Tuple[str, int, int]
Factory = Callable[[Scheduler], object]

#: Everyone arrives at once: maximum contention.
BURST_PLAN: List[Step] = [
    ("R", 0, 2), ("W", 0, 2), ("R", 0, 1), ("R", 0, 3),
    ("W", 0, 1), ("R", 0, 2), ("W", 0, 2), ("R", 0, 1),
]

#: Writers lead, readers trail in: exercises the priority decision points.
PHASED_PLAN: List[Step] = [
    ("W", 0, 4), ("W", 1, 3), ("R", 2, 2), ("R", 2, 2),
    ("W", 3, 2), ("R", 4, 1), ("R", 5, 1), ("W", 6, 1),
]


def staggered_plan(seed: int, steps: int = 10) -> List[Step]:
    """A reproducible random plan with mixed arrivals and work lengths."""
    rng = random.Random(seed)
    plan: List[Step] = []
    for __ in range(steps):
        kind = "R" if rng.random() < 0.6 else "W"
        plan.append((kind, rng.randrange(0, 6), rng.randrange(1, 4)))
    return plan


def run_workload(
    factory: Factory,
    plan: Sequence[Step],
    policy: Optional[SchedulingPolicy] = None,
    sched: Optional[Scheduler] = None,
) -> RunResult:
    """Run one plan against a fresh solution; deadlocks are returned, not
    raised, so verifiers can report them as violations.  ``sched`` injects
    a pre-built (e.g. instrumented) scheduler; ``policy`` is ignored then."""
    if sched is None:
        sched = Scheduler(policy=policy)
    impl = factory(sched)
    for index, (kind, delay, work) in enumerate(plan):
        name = "{}{}".format(kind, index)
        sched.spawn(_delayed(sched, delay, impl, kind, index, work), name=name)
    return sched.run(on_deadlock="return")


def _delayed(sched: Scheduler, delay: int, impl, kind: str, index: int, work: int):
    def body():
        yield from sched.sleep(delay)
        if kind == "R":
            yield from impl.read(work=work)
        else:
            yield from impl.write(100 + index, work=work)
    return body


def _exclusion_violations(result: RunResult, name: str = "db") -> List[str]:
    violations = check_mutual_exclusion(
        result.trace, name, exclusive_ops=["write"], shared_ops=["read"]
    )
    if result.deadlocked:
        violations.append("deadlock: blocked={}".format(result.blocked))
    return violations


def make_verifier(
    factory: Factory,
    problem: str,
    name: str = "db",
    random_seeds: Sequence[int] = (0, 1, 2, 3),
) -> Callable[[], List[str]]:
    """Build the standard oracle battery for one readers/writers solution.

    ``problem`` selects the ordering oracle: ``readers_priority``,
    ``writers_priority``, or ``rw_fcfs``.
    """

    def priority_violations(result: RunResult) -> List[str]:
        if problem == "readers_priority":
            return check_no_overtake(result.trace, name, "read", "write")
        if problem == "writers_priority":
            return check_no_overtake(result.trace, name, "write", "read")
        if problem == "rw_fcfs":
            return check_fcfs(result.trace, name, ["read", "write"])
        return []

    def verify() -> List[str]:
        violations: List[str] = []
        plans = [
            ("burst", BURST_PLAN),
            ("phased", PHASED_PLAN),
            ("staggered7", staggered_plan(7)),
            ("staggered23", staggered_plan(23)),
        ]
        for label, plan in plans:
            try:
                result = run_workload(factory, plan)
            except ProcessFailed as failure:
                violations.append("{}: {}".format(label, failure))
                continue
            for message in _exclusion_violations(result, name):
                violations.append("{}: {}".format(label, message))
            for message in priority_violations(result):
                violations.append("{}: {}".format(label, message))
        for seed in random_seeds:
            try:
                result = run_workload(
                    factory, BURST_PLAN, policy=RandomPolicy(seed)
                )
            except ProcessFailed as failure:
                violations.append("random{}: {}".format(seed, failure))
                continue
            for message in _exclusion_violations(result, name):
                violations.append("random{}: {}".format(seed, message))
        return violations

    return verify
