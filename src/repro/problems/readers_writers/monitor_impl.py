"""Readers/writers with Hoare monitors (§5.2 of the paper).

Three variants:

* :class:`MonitorReadersPriority` — Hoare's CACM-74 version: readers wait
  only while a write is in progress; ``end_write`` signals readers first.
* :class:`MonitorWritersPriority` — the modification probe: readers also
  wait when writers are *queued*; ``end_write`` prefers queued writers.
  Note how little changes between the two: the exclusion machinery
  (``busy`` / ``readercount`` / the two conditions) is identical, which is
  exactly the constraint-independence the paper credits monitors with.
* :class:`MonitorRWFcfs` — arrival-order service.  This needs request *time*
  and request *type* together, the one conflicting pair in monitors (§5.2):
  a single condition queue keeps arrival order, while the type of each
  waiter is hand-kept in monitor-local data — the standard two-stage
  queuing resolution, exercised further in experiment E8.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator

from ...core import (
    Component,
    ConstraintRealization,
    Directness,
    InformationType,
    ModularityProfile,
    SolutionDescription,
)
from ...mechanisms.monitor import Monitor
from ...resources import Database
from ...runtime.scheduler import Scheduler
from ..base import SolutionBase

T1 = InformationType.REQUEST_TYPE
T2 = InformationType.REQUEST_TIME
T4 = InformationType.SYNC_STATE


class _MonitorRWBase(SolutionBase):
    """Common §2 structure: monitor *around* the access decisions, database
    outside it — the shared-resource/resource/monitor layering of §5.2."""

    def __init__(self, sched: Scheduler, name: str = "db") -> None:
        super().__init__(sched, name)
        self.db = Database()
        self.mon = Monitor(sched, name + ".mon")
        self.ok_to_read = self.mon.condition("ok_to_read")
        self.ok_to_write = self.mon.condition("ok_to_write")
        self._readercount = 0
        self._busy = False

    def read(self, work: int = 1) -> Generator:
        """Perform one read; returns the database value."""
        self._request("read")
        yield from self.start_read()
        self._start("read")
        value = yield from self.db.read()
        yield from self._work(work)
        self._finish("read")
        yield from self.end_read()
        return value

    def write(self, value: Any, work: int = 1) -> Generator:
        """Perform one write."""
        self._request("write")
        yield from self.start_write()
        self._start("write")
        yield from self.db.write(value)
        yield from self._work(work)
        self._finish("write")
        yield from self.end_write()

    # Monitor procedures provided by subclasses:
    def start_read(self) -> Generator:
        raise NotImplementedError

    def end_read(self) -> Generator:
        yield from self.mon.enter()
        self._readercount -= 1
        if self._readercount == 0:
            yield from self.ok_to_write.signal()
        self.mon.exit()

    def start_write(self) -> Generator:
        raise NotImplementedError

    def end_write(self) -> Generator:
        raise NotImplementedError


class MonitorReadersPriority(_MonitorRWBase):
    """Hoare's readers-priority monitor."""

    problem = "readers_priority"
    mechanism = "monitor"

    def start_read(self) -> Generator:
        yield from self.mon.enter()
        if self._busy:
            yield from self.ok_to_read.wait()
        self._readercount += 1
        # Cascade: one signal admits the whole waiting batch of readers.
        yield from self.ok_to_read.signal()
        self.mon.exit()

    def start_write(self) -> Generator:
        yield from self.mon.enter()
        if self._readercount != 0 or self._busy:
            yield from self.ok_to_write.wait()
        self._busy = True
        self.mon.exit()

    def end_write(self) -> Generator:
        yield from self.mon.enter()
        self._busy = False
        if self.ok_to_read.queue:  # readers first: their priority
            yield from self.ok_to_read.signal()
        else:
            yield from self.ok_to_write.signal()
        self.mon.exit()


class MonitorWritersPriority(_MonitorRWBase):
    """The probe variant: only the priority decision points change."""

    problem = "writers_priority"
    mechanism = "monitor"

    def start_read(self) -> Generator:
        yield from self.mon.enter()
        # CHANGED: readers also defer to *waiting* writers (T4 about the
        # writer queue, read off the condition variable).
        if self._busy or self.ok_to_write.queue:
            yield from self.ok_to_read.wait()
        self._readercount += 1
        yield from self.ok_to_read.signal()
        self.mon.exit()

    def start_write(self) -> Generator:
        yield from self.mon.enter()
        if self._readercount != 0 or self._busy:
            yield from self.ok_to_write.wait()
        self._busy = True
        self.mon.exit()

    def end_write(self) -> Generator:
        yield from self.mon.enter()
        self._busy = False
        # CHANGED: writers first.
        if self.ok_to_write.queue:
            yield from self.ok_to_write.signal()
        else:
            yield from self.ok_to_read.signal()
        self.mon.exit()


class MonitorRWFcfs(SolutionBase):
    """Arrival-order readers/writers: the T1 × T2 conflict case.

    A single FIFO condition holds everyone (request time); a monitor-local
    deque of request types mirrors it (request type) — the two-stage-queue
    idiom §5.2 describes as the standard fix.
    """

    problem = "rw_fcfs"
    mechanism = "monitor"

    def __init__(self, sched: Scheduler, name: str = "db") -> None:
        super().__init__(sched, name)
        self.db = Database()
        self.mon = Monitor(sched, name + ".mon")
        self.turn = self.mon.condition("turn")
        self._types = deque()  # mirrors the turn queue: 'r' or 'w'
        self._readercount = 0
        self._busy = False

    def read(self, work: int = 1) -> Generator:
        """Perform one read; returns the database value."""
        self._request("read")
        yield from self._start_read()
        self._start("read")
        value = yield from self.db.read()
        yield from self._work(work)
        self._finish("read")
        yield from self._end_read()
        return value

    def write(self, value: Any, work: int = 1) -> Generator:
        """Perform one write."""
        self._request("write")
        yield from self._start_write()
        self._start("write")
        yield from self.db.write(value)
        yield from self._work(work)
        self._finish("write")
        yield from self._end_write()

    def _must_wait(self) -> bool:
        return self._busy or bool(self._types)

    def _start_read(self) -> Generator:
        yield from self.mon.enter()
        if self._must_wait():
            self._types.append("r")
            yield from self.turn.wait()
            self._types.popleft()
        self._readercount += 1
        # Admit an immediately-following reader batch (stays FCFS because
        # only the queue head is ever signalled).  signal_and_exit keeps the
        # admitting reader running first, so op_start order matches grant
        # order (Hoare's "signal as the last operation" idiom).
        if self._types and self._types[0] == "r" and not self._busy:
            self.turn.signal_and_exit()
        else:
            self.mon.exit()

    def _end_read(self) -> Generator:
        yield from self.mon.enter()
        self._readercount -= 1
        if self._readercount == 0 and self._types:
            yield from self.turn.signal()
        self.mon.exit()

    def _start_write(self) -> Generator:
        yield from self.mon.enter()
        if self._must_wait() or self._readercount != 0:
            self._types.append("w")
            yield from self.turn.wait()
            self._types.popleft()
            # Woken strictly when readers drained and resource free.
        self._busy = True
        self.mon.exit()

    def _end_write(self) -> Generator:
        yield from self.mon.enter()
        self._busy = False
        if self._types:
            yield from self.turn.signal()
        self.mon.exit()


# ----------------------------------------------------------------------
# Descriptions
#
# Component granularity matters for the §4.2 analysis: each component is one
# constraint-attributable piece of the monitor, so the differ can see that
# the priority flip touches ONLY the priority components (decision points)
# while the exclusion machinery is byte-identical — the independence the
# paper credits monitors with.
# ----------------------------------------------------------------------
_EXCLUSION_COMPONENTS = (
    Component("var:readercount", "variable", "readercount := 0"),
    Component("var:busy", "variable", "busy := false"),
    Component("cond:ok_to_read", "condition"),
    Component("cond:ok_to_write", "condition"),
    Component(
        "excl:read_admission", "procedure",
        "wait on ok_to_read while busy; readercount := readercount + 1",
    ),
    Component(
        "excl:read_cascade", "procedure",
        "ok_to_read.signal  -- admit the whole waiting reader batch",
    ),
    Component(
        "excl:read_departure", "procedure",
        "readercount := readercount - 1; "
        "if readercount = 0 then ok_to_write.signal",
    ),
    Component(
        "excl:write_admission", "procedure",
        "wait on ok_to_write while readercount != 0 or busy; busy := true",
    ),
    Component("excl:write_departure", "procedure", "busy := false"),
)

_EXCLUSION_COMPONENT_NAMES = tuple(c.name for c in _EXCLUSION_COMPONENTS)

_MONITOR_RW_EXCLUSION_REALIZATION = ConstraintRealization(
    constraint_id="rw_exclusion",
    components=_EXCLUSION_COMPONENT_NAMES,
    constructs=("monitor_mutex", "condition_queue", "local_data"),
    directness=Directness.DIRECT,
    info_handling={T1: Directness.DIRECT, T4: Directness.INDIRECT},
    notes="sync state is a hand-kept count (readercount) — accessible but "
    "explicit (§5.2); this machinery is IDENTICAL across the priority "
    "variants",
)

MONITOR_READERS_PRIORITY_DESCRIPTION = SolutionDescription(
    problem="readers_priority",
    mechanism="monitor",
    components=_EXCLUSION_COMPONENTS + (
        Component(
            "prio:wakeup_choice", "procedure",
            "on end_write: if ok_to_read.queue then ok_to_read.signal "
            "else ok_to_write.signal",
        ),
    ),
    realizations=(
        _MONITOR_RW_EXCLUSION_REALIZATION,
        ConstraintRealization(
            constraint_id="readers_priority",
            components=("prio:wakeup_choice",),
            constructs=("condition_queue", "explicit_signal"),
            directness=Directness.DIRECT,
            info_handling={T1: Directness.DIRECT},
            notes="priority is one signalling decision — direct and local, "
            "but the explicit signal forces choosing *some* total order "
            "(the §5.2 exception)",
        ),
    ),
    modularity=ModularityProfile(
        synchronization_with_resource=True,
        resource_separable=True,
        enforced_by_mechanism=False,
        notes="the shared-resource/resource/monitor structure works but is "
        "programmer discipline, not mechanism-enforced (§5.2)",
    ),
)

MONITOR_WRITERS_PRIORITY_DESCRIPTION = SolutionDescription(
    problem="writers_priority",
    mechanism="monitor",
    components=_EXCLUSION_COMPONENTS + (
        Component(
            "prio:wakeup_choice", "procedure",
            "on end_write: if ok_to_write.queue then ok_to_write.signal "
            "else ok_to_read.signal",
        ),
        Component(
            "prio:read_defer", "procedure",
            "start_read additionally waits while ok_to_write.queue",
        ),
    ),
    realizations=(
        _MONITOR_RW_EXCLUSION_REALIZATION,
        ConstraintRealization(
            constraint_id="writers_priority",
            components=("prio:wakeup_choice", "prio:read_defer"),
            constructs=("condition_queue", "explicit_signal"),
            directness=Directness.DIRECT,
            info_handling={T1: Directness.DIRECT},
            notes="two localized edits relative to readers_priority: the "
            "end_write preference and one extra guard term",
        ),
    ),
    modularity=ModularityProfile(
        synchronization_with_resource=True,
        resource_separable=True,
        enforced_by_mechanism=False,
    ),
)

MONITOR_RW_FCFS_DESCRIPTION = SolutionDescription(
    problem="rw_fcfs",
    mechanism="monitor",
    components=(
        Component("var:readercount", "variable", "readercount := 0"),
        Component("var:busy", "variable", "busy := false"),
        Component("cond:turn", "condition", "single FIFO stage-one queue"),
        Component("var:types", "variable",
                  "deque mirroring the turn queue with request types"),
        Component("proc:start_read", "procedure",
                  "if busy or types nonempty then enqueue 'r'; turn.wait"),
        Component("proc:end_read", "procedure",
                  "rc-1; if rc=0 and types nonempty then turn.signal"),
        Component("proc:start_write", "procedure",
                  "if busy or rc!=0 or types nonempty then enqueue 'w'; "
                  "turn.wait"),
        Component("proc:end_write", "procedure",
                  "busy:=false; if types nonempty then turn.signal"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="rw_exclusion",
            components=("var:readercount", "var:busy", "proc:start_read",
                        "proc:end_read", "proc:start_write", "proc:end_write"),
            constructs=("monitor_mutex", "condition_queue", "local_data"),
            directness=Directness.DIRECT,
            info_handling={T1: Directness.DIRECT, T4: Directness.INDIRECT},
        ),
        ConstraintRealization(
            constraint_id="arrival_order",
            components=("cond:turn", "var:types",
                        "proc:start_read", "proc:start_write"),
            constructs=("condition_queue", "two_stage_queue", "local_data"),
            directness=Directness.INDIRECT,
            info_handling={T2: Directness.DIRECT, T1: Directness.INDIRECT},
            notes="the §5.2 conflict: FIFO needs one queue, type handling "
            "needs separate queues; resolved by the two-stage idiom (shadow "
            "type deque beside the single condition)",
        ),
    ),
    modularity=ModularityProfile(
        synchronization_with_resource=True,
        resource_separable=True,
        enforced_by_mechanism=False,
    ),
)
