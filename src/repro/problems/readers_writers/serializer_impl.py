"""Readers/writers with serializers (Atkinson–Hewitt, §5.2 of the paper).

The solutions showcase the construct's selling points:

* crowds hold the synchronization state — no hand-kept ``readercount``;
* guarantees are declarative — no explicit signalling anywhere;
* a single queue keeps request time while guarantees distinguish request
  type, dissolving the monitor's T1 × T2 conflict (the FCFS variant here is
  *shorter* than either priority variant);
* priority flips are pure guarantee/queue-order edits — the exclusion parts
  are untouched across all three variants.
"""

from __future__ import annotations

from typing import Any, Generator

from ...core import (
    Component,
    ConstraintRealization,
    Directness,
    InformationType,
    ModularityProfile,
    SolutionDescription,
)
from ...mechanisms.serializer import Serializer
from ...resources import Database
from ...runtime.scheduler import Scheduler
from ..base import SolutionBase

T1 = InformationType.REQUEST_TYPE
T2 = InformationType.REQUEST_TIME
T4 = InformationType.SYNC_STATE


class _SerializerRWBase(SolutionBase):
    """Shared §2 structure: the serializer conceptually *contains* the
    database; access only flows through join/leave crowd."""

    def __init__(self, sched: Scheduler, name: str = "db") -> None:
        super().__init__(sched, name)
        self.db = Database()
        self.ser = Serializer(sched, name + ".ser")
        self.readers = self.ser.crowd("readers")
        self.writers = self.ser.crowd("writers")

    def _read_via(self, queue, guarantee, work: int) -> Generator:
        yield from self.ser.enter()
        yield from self.ser.enqueue(queue, guarantee)
        yield from self.ser.join_crowd(self.readers)
        self._start("read")
        value = yield from self.db.read()
        yield from self._work(work)
        self._finish("read")
        yield from self.ser.leave_crowd(self.readers)
        self.ser.exit()
        return value

    def _write_via(self, queue, guarantee, value: Any, work: int) -> Generator:
        yield from self.ser.enter()
        yield from self.ser.enqueue(queue, guarantee)
        yield from self.ser.join_crowd(self.writers)
        self._start("write")
        yield from self.db.write(value)
        yield from self._work(work)
        self._finish("write")
        yield from self.ser.leave_crowd(self.writers)
        self.ser.exit()


class SerializerReadersPriority(_SerializerRWBase):
    """Readers first: the reader queue is checked before the writer queue,
    and writers additionally yield to *waiting* readers."""

    problem = "readers_priority"
    mechanism = "serializer"

    def __init__(self, sched: Scheduler, name: str = "db") -> None:
        super().__init__(sched, name)
        self.read_q = self.ser.queue("read_q")   # declared first: priority
        self.write_q = self.ser.queue("write_q")

    def read(self, work: int = 1) -> Generator:
        """Perform one read; returns the database value."""
        self._request("read")
        value = yield from self._read_via(
            self.read_q, lambda: self.writers.empty, work
        )
        return value

    def write(self, value: Any, work: int = 1) -> Generator:
        """Perform one write."""
        self._request("write")
        yield from self._write_via(
            self.write_q,
            lambda: (
                self.readers.empty
                and self.writers.empty
                and self.read_q.empty
            ),
            value,
            work,
        )


class SerializerWritersPriority(_SerializerRWBase):
    """Writers first: queue order and guarantees flipped — nothing else."""

    problem = "writers_priority"
    mechanism = "serializer"

    def __init__(self, sched: Scheduler, name: str = "db") -> None:
        super().__init__(sched, name)
        self.write_q = self.ser.queue("write_q")  # declared first: priority
        self.read_q = self.ser.queue("read_q")

    def read(self, work: int = 1) -> Generator:
        """Perform one read; returns the database value."""
        self._request("read")
        value = yield from self._read_via(
            self.read_q,
            lambda: self.writers.empty and self.write_q.empty,
            work,
        )
        return value

    def write(self, value: Any, work: int = 1) -> Generator:
        """Perform one write."""
        self._request("write")
        yield from self._write_via(
            self.write_q,
            lambda: self.readers.empty and self.writers.empty,
            value,
            work,
        )


class SerializerRWFcfs(_SerializerRWBase):
    """Arrival order: ONE queue for both types.

    Request time is the queue position; request type is only the guarantee —
    the separation of the two information types that §5.2 credits to
    automatic signalling.
    """

    problem = "rw_fcfs"
    mechanism = "serializer"

    def __init__(self, sched: Scheduler, name: str = "db") -> None:
        super().__init__(sched, name)
        self.q = self.ser.queue("q")

    def read(self, work: int = 1) -> Generator:
        """Perform one read; returns the database value."""
        self._request("read")
        value = yield from self._read_via(
            self.q, lambda: self.writers.empty, work
        )
        return value

    def write(self, value: Any, work: int = 1) -> Generator:
        """Perform one write."""
        self._request("write")
        yield from self._write_via(
            self.q,
            lambda: self.readers.empty and self.writers.empty,
            value,
            work,
        )


# ----------------------------------------------------------------------
# Descriptions
#
# Components are split per constraint: the crowds and the *exclusion terms*
# of the guarantees are identical in all three variants; only the queue
# layout and the *defer terms* differ.  The §4.2 differ therefore sees the
# exclusion constraint as stable across every probe — the serializer's
# independence result.
# ----------------------------------------------------------------------
_SERIALIZER_EXCLUSION_COMPONENTS = (
    Component("crowd:readers", "crowd", "readers currently accessing"),
    Component("crowd:writers", "crowd", "writers currently accessing"),
    Component("excl:read_guarantee", "guarantee", "writers.empty"),
    Component("excl:write_guarantee", "guarantee",
              "readers.empty and writers.empty"),
)

_SERIALIZER_EXCLUSION_NAMES = tuple(
    c.name for c in _SERIALIZER_EXCLUSION_COMPONENTS
)

_SERIALIZER_RW_EXCLUSION_REALIZATION = ConstraintRealization(
    constraint_id="rw_exclusion",
    components=_SERIALIZER_EXCLUSION_NAMES,
    constructs=("crowd", "guarantee", "automatic_signal"),
    directness=Directness.DIRECT,
    info_handling={T1: Directness.DIRECT, T4: Directness.DIRECT},
    notes="crowds ARE the sync state; no hand counts (§5.2); identical in "
    "every readers/writers variant",
)

SERIALIZER_READERS_PRIORITY_DESCRIPTION = SolutionDescription(
    problem="readers_priority",
    mechanism="serializer",
    components=_SERIALIZER_EXCLUSION_COMPONENTS + (
        Component("prio:queue_layout", "queue",
                  "read_q declared before write_q"),
        Component("prio:write_defer", "guarantee",
                  "write additionally awaits read_q.empty"),
    ),
    realizations=(
        _SERIALIZER_RW_EXCLUSION_REALIZATION,
        ConstraintRealization(
            constraint_id="readers_priority",
            components=("prio:queue_layout", "prio:write_defer"),
            constructs=("queue_order", "guarantee"),
            directness=Directness.DIRECT,
            info_handling={T1: Directness.DIRECT},
            notes="priority = queue declaration order + one guarantee term",
        ),
    ),
    modularity=ModularityProfile(
        synchronization_with_resource=True,
        resource_separable=True,
        enforced_by_mechanism=True,
        notes="the serializer contains the resource; join/leave crowd is the "
        "only access path — structure enforced by the mechanism (§5.2)",
    ),
)

SERIALIZER_WRITERS_PRIORITY_DESCRIPTION = SolutionDescription(
    problem="writers_priority",
    mechanism="serializer",
    components=_SERIALIZER_EXCLUSION_COMPONENTS + (
        Component("prio:queue_layout", "queue",
                  "write_q declared before read_q"),
        Component("prio:read_defer", "guarantee",
                  "read additionally awaits write_q.empty"),
    ),
    realizations=(
        _SERIALIZER_RW_EXCLUSION_REALIZATION,
        ConstraintRealization(
            constraint_id="writers_priority",
            components=("prio:queue_layout", "prio:read_defer"),
            constructs=("queue_order", "guarantee"),
            directness=Directness.DIRECT,
            info_handling={T1: Directness.DIRECT},
        ),
    ),
    modularity=ModularityProfile(
        synchronization_with_resource=True,
        resource_separable=True,
        enforced_by_mechanism=True,
    ),
)

SERIALIZER_RW_FCFS_DESCRIPTION = SolutionDescription(
    problem="rw_fcfs",
    mechanism="serializer",
    components=_SERIALIZER_EXCLUSION_COMPONENTS + (
        Component("prio:queue_layout", "queue",
                  "one queue shared by both request types"),
    ),
    realizations=(
        _SERIALIZER_RW_EXCLUSION_REALIZATION,
        ConstraintRealization(
            constraint_id="arrival_order",
            components=("prio:queue_layout",),
            constructs=("queue_order", "automatic_signal"),
            directness=Directness.DIRECT,
            info_handling={T2: Directness.DIRECT, T1: Directness.DIRECT},
            notes="one queue = arrival order; guarantees distinguish types "
            "on the SAME queue — the monitor T1xT2 conflict does not arise "
            "(§5.2)",
        ),
    ),
    modularity=ModularityProfile(
        synchronization_with_resource=True,
        resource_separable=True,
        enforced_by_mechanism=True,
    ),
)
