"""Disk head scheduler (footnote 2: a request-parameters problem, [13])."""

import random
from typing import Callable, List, Sequence, Tuple

from ...runtime.errors import ProcessFailed
from ...runtime.scheduler import Scheduler
from ...verify import check_scan_order, check_single_occupancy
from .impls import (
    MONITOR_DISK_DESCRIPTION,
    MonitorDiskScheduler,
    OPEN_PATH_DISK_DESCRIPTION,
    OpenPathDiskScheduler,
    SEMAPHORE_DISK_DESCRIPTION,
    SemaphoreDiskFcfs,
    SERIALIZER_DISK_DESCRIPTION,
    SerializerDiskScheduler,
    scan_next,
)

#: (arrival delay, track) — distinct tracks, none equal to the start track.
DEFAULT_PLAN: List[Tuple[int, int]] = [
    (0, 53), (0, 18), (0, 91), (1, 37), (1, 122),
    (2, 14), (3, 70), (4, 147), (5, 9), (6, 101),
]


def random_plan(seed: int, requests: int = 12, tracks: int = 200,
                start_track: int = 0) -> List[Tuple[int, int]]:
    """Distinct random tracks with staggered arrivals."""
    rng = random.Random(seed)
    population = [t for t in range(tracks) if t != start_track]
    chosen = rng.sample(population, requests)
    return [(rng.randrange(0, 8), track) for track in chosen]


def run_requests(factory, plan: Sequence[Tuple[int, int]] = tuple(DEFAULT_PLAN),
                 policy=None, sched=None):
    """One process per (delay, track) request.  ``sched`` injects a
    pre-built (e.g. instrumented) scheduler; ``policy`` is ignored then."""
    if sched is None:
        sched = Scheduler(policy=policy)
    impl = factory(sched)

    def requester(delay: int, track: int):
        def body():
            if delay:
                yield from sched.sleep(delay)
            yield from impl.use(track, work=2)
        return body

    for index, (delay, track) in enumerate(plan):
        sched.spawn(requester(delay, track), name="D{}".format(index))
    result = sched.run(on_deadlock="return")
    return result, impl


def make_verifier(factory, name: str = "disk", start_track: int = 0,
                  check_scan: bool = True) -> Callable[[], List[str]]:
    """Oracle battery: single occupancy always; SCAN order unless the
    solution is the FCFS baseline (``check_scan=False``)."""

    def verify() -> List[str]:
        violations: List[str] = []
        plans = [("default", DEFAULT_PLAN), ("random3", random_plan(3)),
                 ("random9", random_plan(9))]
        for label, plan in plans:
            try:
                result, __ = run_requests(factory, plan)
            except ProcessFailed as failure:
                violations.append("{}: {}".format(label, failure))
                continue
            for msg in check_single_occupancy(result.trace, name, ["use"]):
                violations.append("{}: {}".format(label, msg))
            if check_scan:
                for msg in check_scan_order(result.trace, name,
                                            start_track=start_track):
                    violations.append("{}: {}".format(label, msg))
            if result.deadlocked:
                violations.append("{}: deadlock".format(label))
        return violations

    return verify


__all__ = [
    "DEFAULT_PLAN",
    "MONITOR_DISK_DESCRIPTION",
    "MonitorDiskScheduler",
    "OPEN_PATH_DISK_DESCRIPTION",
    "OpenPathDiskScheduler",
    "SEMAPHORE_DISK_DESCRIPTION",
    "SemaphoreDiskFcfs",
    "SERIALIZER_DISK_DESCRIPTION",
    "SerializerDiskScheduler",
    "make_verifier",
    "random_plan",
    "run_requests",
    "scan_next",
]

from .ext_impls import (
    CCR_DISK_DESCRIPTION,
    CSP_DISK_DESCRIPTION,
    CcrDiskScheduler,
    CspDiskScheduler,
)

__all__ += [
    "CCR_DISK_DESCRIPTION",
    "CSP_DISK_DESCRIPTION",
    "CcrDiskScheduler",
    "CspDiskScheduler",
]
