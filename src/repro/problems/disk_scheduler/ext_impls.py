"""Disk head scheduler under the §6 extension mechanisms (experiment E11).

Parameters (T3) are the interesting axis:

* CSP carries the track number *in the request message* — the most direct
  parameter handling of any mechanism in the study; the SCAN policy is
  ordinary sequential code inside the server;
* CCR guards must compare against shared state, so the whole SCAN
  computation moves into guard closures over hand-maintained pending/head/
  direction variables — expressible but entirely manual.
"""

from __future__ import annotations

from typing import Generator, List

from ...core import (
    Component,
    ConstraintRealization,
    Directness,
    InformationType,
    ModularityProfile,
    SolutionDescription,
)
from ...mechanisms.ccr import SharedRegion
from ...mechanisms.channels import Channel, ReceiveOp, select
from ...resources import Disk
from ...runtime.scheduler import Scheduler
from ..base import SolutionBase
from .impls import scan_next

T3 = InformationType.PARAMETERS
T4 = InformationType.SYNC_STATE


class CspDiskScheduler(SolutionBase):
    """Server-side SCAN: requests carry (track, reply); grants are replies."""

    problem = "disk_scheduler"
    mechanism = "csp"

    def __init__(self, sched: Scheduler, tracks: int = 200,
                 start_track: int = 0, name: str = "disk") -> None:
        super().__init__(sched, name)
        self.disk = Disk(tracks, start_track)
        self.ch_request = Channel(sched, name + ".request")
        self.ch_done = Channel(sched, name + ".done")
        self._head = start_track
        self._up = True
        sched.spawn(self._server, name=name + ".server", daemon=True)

    def _server(self) -> Generator:
        pending: List = []  # (track, reply)
        busy = False
        while True:
            # Drain every request already offered on the channel, so the
            # SCAN decision sees the same pending set an outside observer
            # (the oracle) does.
            while self.ch_request.senders_waiting:
                msg = yield from self.ch_request.receive()
                pending.append(msg)
            if not busy and pending:
                tracks = [t for t, __ in pending]
                chosen = scan_next(self._head, self._up, tracks)
                for position, (track, reply) in enumerate(pending):
                    if track == chosen:
                        del pending[position]
                        break
                self._up = chosen >= self._head
                self._head = chosen
                busy = True
                self._sched.log("serve", self.name, chosen)
                yield from reply.send(None)
                continue
            index, msg = yield from select(self._sched, [
                ReceiveOp(self.ch_request),
                ReceiveOp(self.ch_done, guard=busy),
            ])
            if index == 0:
                pending.append(msg)
            else:
                busy = False

    def use(self, track: int, work: int = 1) -> Generator:
        """Seek to ``track``, transfer, release — in elevator order."""
        self._request("use", track)
        self._sched.log("request", self.name, track)
        reply = Channel(self._sched, self.name + ".reply")
        yield from self.ch_request.send((track, reply))
        yield from reply.receive()
        self._start("use")
        yield from self.disk.transfer(track)
        yield from self._work(work)
        self._finish("use")
        yield from self.ch_done.send(None)


class CcrDiskScheduler(SolutionBase):
    """Guard-side SCAN over shared pending/head/direction variables."""

    problem = "disk_scheduler"
    mechanism = "ccr"

    def __init__(self, sched: Scheduler, tracks: int = 200,
                 start_track: int = 0, name: str = "disk") -> None:
        super().__init__(sched, name)
        self.disk = Disk(tracks, start_track)
        self.cell = SharedRegion(
            sched,
            {"pending": [], "head": start_track, "up": True, "busy": False},
            name=name + ".v",
        )

    def use(self, track: int, work: int = 1) -> Generator:
        """Seek to ``track``, transfer, release — in elevator order."""
        self._request("use", track)
        self._sched.log("request", self.name, track)
        cell = self.cell
        yield from cell.enter()
        cell.vars["pending"].append(track)
        cell.leave()
        yield from cell.enter(
            lambda v: not v["busy"]
            and scan_next(v["head"], v["up"], v["pending"]) == track
        )
        cell.vars["pending"].remove(track)
        cell.vars["up"] = track >= cell.vars["head"]
        cell.vars["head"] = track
        cell.vars["busy"] = True
        cell.leave()
        self._sched.log("serve", self.name, track)
        self._start("use")
        yield from self.disk.transfer(track)
        yield from self._work(work)
        self._finish("use")
        yield from cell.enter()
        cell.vars["busy"] = False
        cell.leave()


CSP_DISK_DESCRIPTION = SolutionDescription(
    problem="disk_scheduler",
    mechanism="csp",
    components=(
        Component("chan:request", "queue", "(track, reply) messages"),
        Component("chan:done", "queue"),
        Component("proc:scan_loop", "procedure",
                  "pick scan-next from pending; reply; await done"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="resource_mutex",
            components=("proc:scan_loop", "chan:done"),
            constructs=("server_process",),
            directness=Directness.DIRECT,
            info_handling={T4: Directness.DIRECT},
        ),
        ConstraintRealization(
            constraint_id="elevator_order",
            components=("chan:request", "proc:scan_loop"),
            constructs=("message_payload", "server_process"),
            directness=Directness.DIRECT,
            info_handling={T3: Directness.DIRECT},
            notes="parameters ride in the message — the most direct T3 "
            "handling in the study",
        ),
    ),
    modularity=ModularityProfile(True, False, True),
)

CCR_DISK_DESCRIPTION = SolutionDescription(
    problem="disk_scheduler",
    mechanism="ccr",
    components=(
        Component("var:pending", "variable"),
        Component("var:head", "variable"),
        Component("var:up", "variable"),
        Component("var:busy", "variable"),
        Component("guard:scan", "guard",
                  "when not busy and scan_next(head, up, pending) = track"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="resource_mutex",
            components=("var:busy", "guard:scan"),
            constructs=("region_guard",),
            directness=Directness.DIRECT,
            info_handling={T4: Directness.INDIRECT},
        ),
        ConstraintRealization(
            constraint_id="elevator_order",
            components=("var:pending", "var:head", "var:up", "guard:scan"),
            constructs=("region_guard", "shared_variables"),
            directness=Directness.INDIRECT,
            info_handling={T3: Directness.INDIRECT},
            notes="guards compare only shared variables, so the parameter "
            "must first be copied into one and the whole SCAN policy lives "
            "in the guard closure",
        ),
    ),
    modularity=ModularityProfile(False, True, False),
)
