"""Disk head scheduler solutions — the suite's parameters (T3) problem.

The service discipline is the elevator (SCAN): among pending requests, serve
the nearest track in the current sweep direction, reversing at the extremes.
This is Hoare's motivating example for the *priority wait* ([13]), and the
paper's for constraints conditioned on request parameters.

Mechanisms:

* :class:`MonitorDiskScheduler` — Hoare's scheduler: two priority-wait
  conditions (``upsweep`` / ``downsweep``) ranked by track number.
* :class:`SerializerDiskScheduler` — a guarantee-order queue whose
  guarantees compute "am I the SCAN-next request?" from shared state.
* :class:`OpenPathDiskScheduler` — guarded paths: the guard does the same
  SCAN-next computation; base paths cannot see parameters at all (§5.1.2).
* :class:`SemaphoreDiskFcfs` — the FCFS *baseline*: no parameter access, no
  elevator; exists to quantify what the discipline buys (bench E10) and to
  stand for the §5.1.2 finding that semaphore-level mechanisms leave
  parameter handling entirely to the user.

Workload note: plans use distinct track numbers (and avoid the start track)
so SCAN order is unambiguous — ties at the exact head position are a
specification grey zone the oracle does not arbitrate.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from ...core import (
    Component,
    ConstraintRealization,
    Directness,
    InformationType,
    ModularityProfile,
    SolutionDescription,
)
from ...mechanisms.monitor import Monitor
from ...mechanisms.pathexpr import GuardedPathResource
from ...mechanisms.serializer import Serializer
from ...resources import Disk
from ...runtime.primitives import Semaphore
from ...runtime.scheduler import Scheduler
from ..base import SolutionBase

T2 = InformationType.REQUEST_TIME
T3 = InformationType.PARAMETERS
T4 = InformationType.SYNC_STATE


def scan_next(head: int, direction_up: bool, pending: List[int]) -> Optional[int]:
    """The SCAN-next choice: nearest pending track in the current direction,
    reversing when nothing lies ahead.  Shared by the serializer and
    open-path solutions (and mirrored by the oracle)."""
    ahead = sorted(t for t in pending if t >= head)
    behind = sorted((t for t in pending if t <= head), reverse=True)
    if direction_up:
        if ahead:
            return ahead[0]
        return behind[0] if behind else None
    if behind:
        return behind[0]
    return ahead[0] if ahead else None


class MonitorDiskScheduler(SolutionBase):
    """Hoare's elevator: priority waits carry the track parameter."""

    problem = "disk_scheduler"
    mechanism = "monitor"

    def __init__(self, sched: Scheduler, tracks: int = 200,
                 start_track: int = 0, name: str = "disk") -> None:
        super().__init__(sched, name)
        self.disk = Disk(tracks, start_track)
        self.mon = Monitor(sched, name + ".mon")
        self.upsweep = self.mon.condition("upsweep")
        self.downsweep = self.mon.condition("downsweep")
        self._busy = False
        self._head = start_track
        self._up = True

    def use(self, track: int, work: int = 1) -> Generator:
        """Seek to ``track``, transfer, release — in elevator order."""
        self._request("use", track)
        self._sched.log("request", self.name, track)
        yield from self._acquire(track)
        self._sched.log("serve", self.name, track)
        self._start("use")
        yield from self.disk.transfer(track)
        yield from self._work(work)
        self._finish("use")
        yield from self._release()

    def _acquire(self, track: int) -> Generator:
        yield from self.mon.enter()
        if self._busy:
            if track > self._head:
                yield from self.upsweep.wait(priority=track)
            else:
                yield from self.downsweep.wait(
                    priority=self.disk.tracks - track
                )
        self._busy = True
        self._up = track >= self._head
        self._head = track
        self.mon.exit()

    def _release(self) -> Generator:
        yield from self.mon.enter()
        self._busy = False
        if self._up:
            if self.upsweep.queue:
                yield from self.upsweep.signal()
            else:
                self._up = False
                yield from self.downsweep.signal()
        else:
            if self.downsweep.queue:
                yield from self.downsweep.signal()
            else:
                self._up = True
                yield from self.upsweep.signal()
        self.mon.exit()


class SerializerDiskScheduler(SolutionBase):
    """Serializer elevator: guarantees compute SCAN-next from user state."""

    problem = "disk_scheduler"
    mechanism = "serializer"

    def __init__(self, sched: Scheduler, tracks: int = 200,
                 start_track: int = 0, name: str = "disk") -> None:
        super().__init__(sched, name)
        self.disk = Disk(tracks, start_track)
        self.ser = Serializer(sched, name + ".ser")
        self.q = self.ser.guarantee_order_queue("scanq")
        self.user = self.ser.crowd("user")
        self._pending: List[int] = []
        self._head = start_track
        self._up = True

    def use(self, track: int, work: int = 1) -> Generator:
        """Seek to ``track``, transfer, release — in elevator order."""
        self._request("use", track)
        self._sched.log("request", self.name, track)
        yield from self.ser.enter()
        self._pending.append(track)
        yield from self.ser.enqueue(
            self.q,
            lambda: (
                self.user.empty
                and scan_next(self._head, self._up, self._pending) == track
            ),
        )
        # Possession held: commit the SCAN step.
        self._pending.remove(track)
        self._up = track >= self._head
        self._head = track
        self._sched.log("serve", self.name, track)
        yield from self.ser.join_crowd(self.user)
        self._start("use")
        yield from self.disk.transfer(track)
        yield from self._work(work)
        self._finish("use")
        yield from self.ser.leave_crowd(self.user)
        self.ser.exit()


class OpenPathDiskScheduler(SolutionBase):
    """Guarded paths: base paths cannot reference parameters, so the SCAN
    condition lives in an Andler-style guard."""

    problem = "disk_scheduler"
    mechanism = "pathexpr_open"

    def __init__(self, sched: Scheduler, tracks: int = 200,
                 start_track: int = 0, name: str = "disk") -> None:
        super().__init__(sched, name)
        self.disk = Disk(tracks, start_track)
        self._pending: List[int] = []
        self._head = start_track
        self._up = True
        solution = self

        def transfer_body(res, track: int, work: int) -> Generator:
            solution._pending.remove(track)
            solution._up = track >= solution._head
            solution._head = track
            solution._sched.log("serve", solution.name, track)
            solution._start("use")
            yield from solution.disk.transfer(track)
            yield from solution._work(work)
            solution._finish("use")

        def scan_guard(res, args) -> bool:
            track = args[0]
            return (
                res.active("transfer") == 0
                and scan_next(solution._head, solution._up, solution._pending)
                == track
            )

        self.paths = GuardedPathResource(
            sched,
            "path transfer end",
            operations={"transfer": transfer_body},
            guards={"transfer": scan_guard},
            name=name + ".paths",
        )

    def use(self, track: int, work: int = 1) -> Generator:
        """Seek to ``track``, transfer, release — in elevator order."""
        self._request("use", track)
        self._sched.log("request", self.name, track)
        self._pending.append(track)
        yield from self.paths.invoke("transfer", track, work)


class SemaphoreDiskFcfs(SolutionBase):
    """FCFS baseline: a FIFO semaphore, blind to the track parameter."""

    problem = "disk_scheduler"
    mechanism = "semaphore"

    def __init__(self, sched: Scheduler, tracks: int = 200,
                 start_track: int = 0, name: str = "disk") -> None:
        super().__init__(sched, name)
        self.disk = Disk(tracks, start_track)
        self._sem = Semaphore(sched, 1, name + ".sem")

    def use(self, track: int, work: int = 1) -> Generator:
        """Seek to ``track`` in plain arrival order (no elevator)."""
        self._request("use", track)
        self._sched.log("request", self.name, track)
        yield from self._sem.p()
        self._sched.log("serve", self.name, track)
        self._start("use")
        yield from self.disk.transfer(track)
        yield from self._work(work)
        self._finish("use")
        self._sem.v()


# ----------------------------------------------------------------------
# Descriptions
# ----------------------------------------------------------------------
MONITOR_DISK_DESCRIPTION = SolutionDescription(
    problem="disk_scheduler",
    mechanism="monitor",
    components=(
        Component("var:busy", "variable"),
        Component("var:head", "variable", "headpos"),
        Component("var:up", "variable", "sweep direction"),
        Component("cond:upsweep", "priority_queue",
                  "priority wait ranked by track"),
        Component("cond:downsweep", "priority_queue",
                  "priority wait ranked by tracks - track"),
        Component("proc:acquire", "procedure",
                  "if busy then wait on sweep queue at rank(track)"),
        Component("proc:release", "procedure",
                  "signal current sweep else reverse"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="resource_mutex",
            components=("var:busy", "proc:acquire", "proc:release"),
            constructs=("monitor_mutex", "local_data"),
            directness=Directness.DIRECT,
            info_handling={T4: Directness.INDIRECT},
        ),
        ConstraintRealization(
            constraint_id="elevator_order",
            components=("cond:upsweep", "cond:downsweep", "var:head",
                        "var:up", "proc:acquire", "proc:release"),
            constructs=("priority_wait",),
            directness=Directness.DIRECT,
            info_handling={T3: Directness.DIRECT},
            notes="priority queues provide a means for using most needed "
            "information from arguments (§5.2)",
        ),
    ),
    modularity=ModularityProfile(True, True, False),
)

SERIALIZER_DISK_DESCRIPTION = SolutionDescription(
    problem="disk_scheduler",
    mechanism="serializer",
    components=(
        Component("queue:scanq", "queue", "guarantee-order (extension)"),
        Component("crowd:user", "crowd"),
        Component("var:pending", "variable", "registered track requests"),
        Component("var:head", "variable"),
        Component("var:up", "variable"),
        Component("guarantee:use", "guarantee",
                  "user.empty and scan_next(head, up, pending) == my track"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="resource_mutex",
            components=("crowd:user", "guarantee:use"),
            constructs=("crowd", "guarantee"),
            directness=Directness.DIRECT,
            info_handling={T4: Directness.DIRECT},
        ),
        ConstraintRealization(
            constraint_id="elevator_order",
            components=("queue:scanq", "var:pending", "var:head", "var:up",
                        "guarantee:use"),
            constructs=("guarantee", "local_variables", "queue_extension"),
            directness=Directness.INDIRECT,
            info_handling={T3: Directness.INDIRECT},
            notes="needs the later-added local variables and non-FIFO queue "
            "release (§5.2: the first serializer version could not easily "
            "handle arguments passed to requests)",
        ),
    ),
    modularity=ModularityProfile(True, True, True),
)

OPEN_PATH_DISK_DESCRIPTION = SolutionDescription(
    problem="disk_scheduler",
    mechanism="pathexpr_open",
    components=(
        Component("path:1", "path", "path transfer end"),
        Component("guard:transfer", "guard",
                  "not busy and scan_next(head, up, pending) == track"),
        Component("var:pending", "variable"),
        Component("var:head", "variable"),
        Component("var:up", "variable"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="resource_mutex",
            components=("path:1",),
            constructs=("sequence",),
            directness=Directness.DIRECT,
            info_handling={T4: Directness.INDIRECT},
        ),
        ConstraintRealization(
            constraint_id="elevator_order",
            components=("guard:transfer", "var:pending", "var:head", "var:up"),
            constructs=("predicate", "state_variables"),
            directness=Directness.INDIRECT,
            info_handling={T3: Directness.INDIRECT},
            notes="pure paths have no way to use parameter values "
            "(§5.1.2); Andler predicates + state variables carry the whole "
            "discipline",
        ),
    ),
    modularity=ModularityProfile(True, False, True),
)

SEMAPHORE_DISK_DESCRIPTION = SolutionDescription(
    problem="disk_scheduler",
    mechanism="semaphore",
    components=(
        Component("sem:disk", "semaphore", "init 1, FIFO"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="resource_mutex",
            components=("sem:disk",),
            constructs=("semaphore",),
            directness=Directness.DIRECT,
            info_handling={T4: Directness.INDIRECT},
        ),
        ConstraintRealization(
            constraint_id="elevator_order",
            components=(),
            constructs=(),
            directness=Directness.UNSUPPORTED,
            info_handling={T3: Directness.UNSUPPORTED},
            notes="baseline only: plain semaphores offer no way to order "
            "waiters by parameter (short of per-process private semaphores "
            "re-implementing a scheduler by hand) — serves FCFS",
        ),
    ),
    modularity=ModularityProfile(False, False, False),
)
