"""One-slot buffer solutions — the suite's history (T6) problem.

This is Campbell–Habermann's own flagship example ([7] in the paper), and
the one place base path expressions are maximally direct: the entire
synchronization scheme is the two-token text ``path put ; get end``.  The
other mechanisms must *reconstruct* the history information ("was the last
completed operation a put?") from state they maintain themselves.
"""

from __future__ import annotations

from typing import Any, Generator

from ...core import (
    Component,
    ConstraintRealization,
    Directness,
    InformationType,
    ModularityProfile,
    SolutionDescription,
)
from ...mechanisms.monitor import Monitor
from ...mechanisms.pathexpr import PathResource
from ...mechanisms.serializer import Serializer
from ...resources import SlotBuffer
from ...runtime.primitives import Semaphore
from ...runtime.scheduler import Scheduler
from ..base import SolutionBase

T4 = InformationType.SYNC_STATE
T5 = InformationType.LOCAL_STATE
T6 = InformationType.HISTORY


class PathOneSlotBuffer(SolutionBase):
    """``path put ; get end`` — the whole solution."""

    problem = "one_slot_buffer"
    mechanism = "pathexpr"

    def __init__(self, sched: Scheduler, name: str = "slot") -> None:
        super().__init__(sched, name)
        self.slot = SlotBuffer()
        solution = self

        def put_body(res, item: Any) -> Generator:
            solution._start("put")
            yield from solution.slot.put(item)
            solution._finish("put")

        def get_body(res) -> Generator:
            solution._start("get")
            item = yield from solution.slot.get()
            solution._finish("get")
            return item

        self.paths = PathResource(
            sched,
            "path put ; get end",
            operations={"put": put_body, "get": get_body},
            name=name + ".paths",
        )

    def put(self, item: Any) -> Generator:
        """Fill the slot (blocks until the previous value was consumed)."""
        self._request("put", item)
        yield from self.paths.invoke("put", item)

    def get(self) -> Generator:
        """Drain the slot (blocks until a value is present)."""
        self._request("get")
        item = yield from self.paths.invoke("get")
        return item


class SemaphoreOneSlotBuffer(SolutionBase):
    """Two binary semaphores passed back and forth — history encoded as
    which semaphore currently holds the token."""

    problem = "one_slot_buffer"
    mechanism = "semaphore"

    def __init__(self, sched: Scheduler, name: str = "slot") -> None:
        super().__init__(sched, name)
        self.slot = SlotBuffer()
        self._may_put = Semaphore(sched, 1, name + ".may_put")
        self._may_get = Semaphore(sched, 0, name + ".may_get")

    def put(self, item: Any) -> Generator:
        """Fill the slot (blocks until the previous value was consumed)."""
        self._request("put", item)
        yield from self._may_put.p()
        self._start("put")
        yield from self.slot.put(item)
        self._finish("put")
        self._may_get.v()

    def get(self) -> Generator:
        """Drain the slot (blocks until a value is present)."""
        self._request("get")
        yield from self._may_get.p()
        self._start("get")
        item = yield from self.slot.get()
        self._finish("get")
        self._may_put.v()
        return item


class MonitorOneSlotBuffer(SolutionBase):
    """Monitor version: the history bit is the resource's ``occupied`` flag
    (history folded into local state, as §3 predicts)."""

    problem = "one_slot_buffer"
    mechanism = "monitor"

    def __init__(self, sched: Scheduler, name: str = "slot") -> None:
        super().__init__(sched, name)
        self.slot = SlotBuffer()
        self.mon = Monitor(sched, name + ".mon")
        self.may_put = self.mon.condition("may_put")
        self.may_get = self.mon.condition("may_get")
        self._op_active = False

    def put(self, item: Any) -> Generator:
        """Fill the slot (blocks until the previous value was consumed)."""
        self._request("put", item)
        yield from self.mon.enter()
        while self._op_active or self.slot.occupied:
            yield from self.may_put.wait()
        self._op_active = True
        self.mon.exit()
        self._start("put")
        yield from self.slot.put(item)
        self._finish("put")
        yield from self.mon.enter()
        self._op_active = False
        yield from self.may_get.signal()
        self.mon.exit()

    def get(self) -> Generator:
        """Drain the slot (blocks until a value is present)."""
        self._request("get")
        yield from self.mon.enter()
        while self._op_active or not self.slot.occupied:
            yield from self.may_get.wait()
        self._op_active = True
        self.mon.exit()
        self._start("get")
        item = yield from self.slot.get()
        self._finish("get")
        yield from self.mon.enter()
        self._op_active = False
        yield from self.may_put.signal()
        self.mon.exit()
        return item


class SerializerOneSlotBuffer(SolutionBase):
    """Serializer version: guarantees read the slot's occupancy."""

    problem = "one_slot_buffer"
    mechanism = "serializer"

    def __init__(self, sched: Scheduler, name: str = "slot") -> None:
        super().__init__(sched, name)
        self.slot = SlotBuffer()
        self.ser = Serializer(sched, name + ".ser")
        self.putq = self.ser.queue("putq")
        self.getq = self.ser.queue("getq")
        self.users = self.ser.crowd("users")

    def put(self, item: Any) -> Generator:
        """Fill the slot (blocks until the previous value was consumed)."""
        self._request("put", item)
        yield from self.ser.enter()
        yield from self.ser.enqueue(
            self.putq, lambda: self.users.empty and not self.slot.occupied
        )
        yield from self.ser.join_crowd(self.users)
        self._start("put")
        yield from self.slot.put(item)
        self._finish("put")
        yield from self.ser.leave_crowd(self.users)
        self.ser.exit()

    def get(self) -> Generator:
        """Drain the slot (blocks until a value is present)."""
        self._request("get")
        yield from self.ser.enter()
        yield from self.ser.enqueue(
            self.getq, lambda: self.users.empty and self.slot.occupied
        )
        yield from self.ser.join_crowd(self.users)
        self._start("get")
        item = yield from self.slot.get()
        self._finish("get")
        yield from self.ser.leave_crowd(self.users)
        self.ser.exit()
        return item


# ----------------------------------------------------------------------
# Descriptions
# ----------------------------------------------------------------------
PATH_ONE_SLOT_DESCRIPTION = SolutionDescription(
    problem="one_slot_buffer",
    mechanism="pathexpr",
    components=(
        Component("path:1", "path", "path put ; get end"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="slot_alternation",
            components=("path:1",),
            constructs=("sequence",),
            directness=Directness.DIRECT,
            info_handling={T6: Directness.DIRECT},
            notes="history IS the path position — the mechanism's best case "
            "([7]'s own example)",
        ),
    ),
    modularity=ModularityProfile(True, True, True,
                                 "no sync procedures needed here"),
)

SEMAPHORE_ONE_SLOT_DESCRIPTION = SolutionDescription(
    problem="one_slot_buffer",
    mechanism="semaphore",
    components=(
        Component("sem:may_put", "semaphore", "init 1"),
        Component("sem:may_get", "semaphore", "init 0"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="slot_alternation",
            components=("sem:may_put", "sem:may_get"),
            constructs=("semaphore", "token_passing"),
            directness=Directness.INDIRECT,
            info_handling={T6: Directness.INDIRECT},
            notes="history encoded as which semaphore holds the token",
        ),
    ),
    modularity=ModularityProfile(False, False, False),
)

MONITOR_ONE_SLOT_DESCRIPTION = SolutionDescription(
    problem="one_slot_buffer",
    mechanism="monitor",
    components=(
        Component("cond:may_put", "condition"),
        Component("cond:may_get", "condition"),
        Component("var:op_active", "variable"),
        Component("proc:put_guard", "procedure",
                  "while op_active or slot.occupied do may_put.wait"),
        Component("proc:get_guard", "procedure",
                  "while op_active or not slot.occupied do may_get.wait"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="slot_alternation",
            components=("cond:may_put", "cond:may_get",
                        "proc:put_guard", "proc:get_guard"),
            constructs=("condition_queue", "resource_state_query"),
            directness=Directness.DIRECT,
            info_handling={T6: Directness.DIRECT, T5: Directness.DIRECT},
            notes="history read as local state (occupied flag), per §3's "
            "interchangeability observation",
        ),
    ),
    modularity=ModularityProfile(True, True, False),
)

SERIALIZER_ONE_SLOT_DESCRIPTION = SolutionDescription(
    problem="one_slot_buffer",
    mechanism="serializer",
    components=(
        Component("queue:putq", "queue"),
        Component("queue:getq", "queue"),
        Component("crowd:users", "crowd"),
        Component("guarantee:put", "guarantee",
                  "users.empty and not slot.occupied"),
        Component("guarantee:get", "guarantee",
                  "users.empty and slot.occupied"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="slot_alternation",
            components=("guarantee:put", "guarantee:get", "crowd:users"),
            constructs=("guarantee", "automatic_signal"),
            directness=Directness.DIRECT,
            info_handling={T6: Directness.DIRECT, T5: Directness.DIRECT},
        ),
    ),
    modularity=ModularityProfile(True, True, True),
)
