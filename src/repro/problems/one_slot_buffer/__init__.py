"""One-slot buffer (footnote 2: the history problem, from [7])."""

from typing import Callable, List, Sequence

from ...runtime.errors import ProcessFailed
from ...runtime.policies import RandomPolicy
from ...runtime.scheduler import Scheduler
from ...verify import check_alternation
from .impls import (
    MONITOR_ONE_SLOT_DESCRIPTION,
    MonitorOneSlotBuffer,
    PATH_ONE_SLOT_DESCRIPTION,
    PathOneSlotBuffer,
    SEMAPHORE_ONE_SLOT_DESCRIPTION,
    SemaphoreOneSlotBuffer,
    SERIALIZER_ONE_SLOT_DESCRIPTION,
    SerializerOneSlotBuffer,
)


def run_ping_pong(factory, rounds: int = 6, producers: int = 2,
                  consumers: int = 2, policy=None, sched=None):
    """Contending producers and consumers over one slot.  ``sched`` injects
    a pre-built (e.g. instrumented) scheduler; ``policy`` is ignored then."""
    if sched is None:
        sched = Scheduler(policy=policy)
    impl = factory(sched)
    consumed: List[object] = []
    per_producer = rounds // producers
    per_consumer = rounds // consumers

    def producer(base):
        def body():
            for i in range(per_producer):
                yield from impl.put(base * 100 + i)
        return body

    def consumer():
        def body():
            for __ in range(per_consumer):
                item = yield from impl.get()
                consumed.append(item)
        return body

    for p in range(producers):
        sched.spawn(producer(p), name="prod{}".format(p))
    for c in range(consumers):
        sched.spawn(consumer(), name="cons{}".format(c))
    result = sched.run(on_deadlock="return")
    return result, consumed


def make_verifier(
    factory,
    name: str = "slot",
    random_seeds: Sequence[int] = (0, 1, 2),
) -> Callable[[], List[str]]:
    """Oracle battery: strict put/get alternation across schedules."""

    def run_one(label, policy=None) -> List[str]:
        try:
            result, consumed = run_ping_pong(factory, policy=policy)
        except ProcessFailed as failure:
            return ["{}: {}".format(label, failure)]
        violations = [
            "{}: {}".format(label, msg)
            for msg in check_alternation(result.trace, name)
        ]
        if result.deadlocked:
            violations.append(
                "{}: deadlock, blocked={}".format(label, result.blocked)
            )
        return violations

    def verify() -> List[str]:
        violations = run_one("fifo")
        for seed in random_seeds:
            violations.extend(
                run_one("random{}".format(seed), RandomPolicy(seed))
            )
        return violations

    return verify


__all__ = [
    "MONITOR_ONE_SLOT_DESCRIPTION",
    "MonitorOneSlotBuffer",
    "PATH_ONE_SLOT_DESCRIPTION",
    "PathOneSlotBuffer",
    "SEMAPHORE_ONE_SLOT_DESCRIPTION",
    "SemaphoreOneSlotBuffer",
    "SERIALIZER_ONE_SLOT_DESCRIPTION",
    "SerializerOneSlotBuffer",
    "make_verifier",
    "run_ping_pong",
]

from .ext_impls import (
    CCR_ONE_SLOT_DESCRIPTION,
    CSP_ONE_SLOT_DESCRIPTION,
    CcrOneSlotBuffer,
    CspOneSlotBuffer,
)

__all__ += [
    "CCR_ONE_SLOT_DESCRIPTION",
    "CSP_ONE_SLOT_DESCRIPTION",
    "CcrOneSlotBuffer",
    "CspOneSlotBuffer",
]
