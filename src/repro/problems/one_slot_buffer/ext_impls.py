"""One-slot buffer under the §6 extension mechanisms (experiment E11).

A bare rendezvous channel *is* a one-slot buffer (send/receive complete
pairwise — see ``tests/test_channels.py::test_channel_as_one_slot_buffer``);
the CSP solution here routes through a tiny server so the uniform
``op_start``/``op_end`` trace the alternation oracle consumes is emitted in
completion order.  The CCR solution reads the slot's occupancy flag —
history folded into local state, as §3 predicts.
"""

from __future__ import annotations

from typing import Any, Generator

from ...core import (
    Component,
    ConstraintRealization,
    Directness,
    InformationType,
    ModularityProfile,
    SolutionDescription,
)
from ...mechanisms.ccr import SharedRegion
from ...mechanisms.channels import Channel, ReceiveOp, SendOp, select
from ...resources import SlotBuffer
from ...runtime.scheduler import Scheduler
from ..base import SolutionBase

T5 = InformationType.LOCAL_STATE
T6 = InformationType.HISTORY


class CspOneSlotBuffer(SolutionBase):
    """A single-cell CSP server alternating between a put-arm and a
    get-arm; the slot's occupancy is the select guard."""

    problem = "one_slot_buffer"
    mechanism = "csp"

    def __init__(self, sched: Scheduler, name: str = "slot") -> None:
        super().__init__(sched, name)
        self.slot = SlotBuffer()
        self.ch_put = Channel(sched, name + ".put")
        self.ch_get = Channel(sched, name + ".get")
        sched.spawn(self._server, name=name + ".server", daemon=True)

    def _server(self) -> Generator:
        while True:
            arms = [
                ReceiveOp(self.ch_put, guard=not self.slot.occupied),
                SendOp(
                    self.ch_get,
                    self.slot.peek() if self.slot.occupied else None,
                    guard=self.slot.occupied,
                ),
            ]
            index, item = yield from select(self._sched, arms)
            if index == 0:
                self._start("put")
                yield from self.slot.put(item)
                self._finish("put")
            else:
                self._start("get")
                yield from self.slot.get()
                self._finish("get")

    def put(self, item: Any) -> Generator:
        """Fill the slot (blocks until the previous value was consumed)."""
        self._request("put", item)
        yield from self.ch_put.send(item)

    def get(self) -> Generator:
        """Drain the slot (blocks until a value is present)."""
        self._request("get")
        item = yield from self.ch_get.receive()
        return item


class CcrOneSlotBuffer(SolutionBase):
    """``region slot when occupied do get`` — alternation from one flag."""

    problem = "one_slot_buffer"
    mechanism = "ccr"

    def __init__(self, sched: Scheduler, name: str = "slot") -> None:
        super().__init__(sched, name)
        self.slot = SlotBuffer()
        self.cell = SharedRegion(sched, {}, name=name + ".v")

    def put(self, item: Any) -> Generator:
        """Fill the slot (blocks until the previous value was consumed)."""
        self._request("put", item)
        yield from self.cell.enter(lambda v: not self.slot.occupied)
        self._start("put")
        yield from self.slot.put(item)
        self._finish("put")
        self.cell.leave()

    def get(self) -> Generator:
        """Drain the slot (blocks until a value is present)."""
        self._request("get")
        yield from self.cell.enter(lambda v: self.slot.occupied)
        self._start("get")
        item = yield from self.slot.get()
        self._finish("get")
        self.cell.leave()
        return item


CSP_ONE_SLOT_DESCRIPTION = SolutionDescription(
    problem="one_slot_buffer",
    mechanism="csp",
    components=(
        Component("chan:put", "queue"),
        Component("chan:get", "queue"),
        Component("guard:occupancy", "guard",
                  "put-arm when vacant, get-arm when occupied"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="slot_alternation",
            components=("chan:put", "chan:get", "guard:occupancy"),
            constructs=("guarded_select", "server_process", "rendezvous"),
            directness=Directness.DIRECT,
            info_handling={T6: Directness.DIRECT, T5: Directness.DIRECT},
            notes="a bare rendezvous channel already IS a one-slot buffer; "
            "history is the server's loop position",
        ),
    ),
    modularity=ModularityProfile(True, False, True),
)

CCR_ONE_SLOT_DESCRIPTION = SolutionDescription(
    problem="one_slot_buffer",
    mechanism="ccr",
    components=(
        Component("guard:put", "guard", "region when not occupied"),
        Component("guard:get", "guard", "region when occupied"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="slot_alternation",
            components=("guard:put", "guard:get"),
            constructs=("region_guard",),
            directness=Directness.DIRECT,
            info_handling={T6: Directness.DIRECT, T5: Directness.DIRECT},
            notes="history read as local state (occupied flag) — §3's "
            "interchangeability, same as the monitor solution",
        ),
    ),
    modularity=ModularityProfile(False, True, False),
)
