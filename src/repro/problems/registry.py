"""The solution registry: every (problem × mechanism) implementation, its
machine-readable description, and its oracle battery — the input to the
evaluation engine and the benchmarks.

``build_evaluator()`` assembles the complete §5-style evaluation in one
call::

    from repro.problems.registry import build_evaluator
    report = build_evaluator().evaluate()
    print(report.render())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..core import Evaluator, SolutionDescription
from ..runtime.scheduler import Scheduler
from . import alarm_clock, bounded_buffer, disk_scheduler, eventcount_impls, fcfs_resource
from . import one_slot_buffer, staged_queue
from . import readers_writers as rw

Factory = Callable[[Scheduler], object]


@dataclass(frozen=True)
class RegisteredSolution:
    """One catalog entry: how to build, describe, and verify a solution."""

    problem: str
    mechanism: str
    factory: Factory
    description: SolutionDescription
    verifier: Callable[[], List[str]]
    notes: str = ""

    @property
    def key(self) -> Tuple[str, str]:
        return (self.problem, self.mechanism)


def _rw_entry(cls, description, problem) -> RegisteredSolution:
    factory = lambda sched: cls(sched)  # noqa: E731
    return RegisteredSolution(
        problem=problem,
        mechanism=cls.mechanism,
        factory=factory,
        description=description,
        verifier=rw.make_verifier(factory, problem),
    )


def _build_registry() -> Dict[Tuple[str, str], RegisteredSolution]:
    entries: List[RegisteredSolution] = []

    # Readers/writers family -------------------------------------------
    entries += [
        _rw_entry(rw.SemaphoreReadersPriority,
                  rw.SEMAPHORE_READERS_PRIORITY_DESCRIPTION,
                  "readers_priority"),
        _rw_entry(rw.MonitorReadersPriority,
                  rw.MONITOR_READERS_PRIORITY_DESCRIPTION,
                  "readers_priority"),
        _rw_entry(rw.SerializerReadersPriority,
                  rw.SERIALIZER_READERS_PRIORITY_DESCRIPTION,
                  "readers_priority"),
        _rw_entry(rw.PathReadersPriority,
                  rw.PATH_READERS_PRIORITY_DESCRIPTION,
                  "readers_priority"),
        _rw_entry(rw.SemaphoreWritersPriority,
                  rw.SEMAPHORE_WRITERS_PRIORITY_DESCRIPTION,
                  "writers_priority"),
        _rw_entry(rw.MonitorWritersPriority,
                  rw.MONITOR_WRITERS_PRIORITY_DESCRIPTION,
                  "writers_priority"),
        _rw_entry(rw.SerializerWritersPriority,
                  rw.SERIALIZER_WRITERS_PRIORITY_DESCRIPTION,
                  "writers_priority"),
        _rw_entry(rw.PathWritersPriority,
                  rw.PATH_WRITERS_PRIORITY_DESCRIPTION,
                  "writers_priority"),
        _rw_entry(rw.MonitorRWFcfs, rw.MONITOR_RW_FCFS_DESCRIPTION,
                  "rw_fcfs"),
        _rw_entry(rw.SerializerRWFcfs, rw.SERIALIZER_RW_FCFS_DESCRIPTION,
                  "rw_fcfs"),
        _rw_entry(rw.PathRWFcfs, rw.PATH_RW_FCFS_DESCRIPTION, "rw_fcfs"),
        # §6 extension mechanisms (experiment E11):
        _rw_entry(rw.CspReadersPriority,
                  rw.CSP_READERS_PRIORITY_DESCRIPTION, "readers_priority"),
        _rw_entry(rw.CspWritersPriority,
                  rw.CSP_WRITERS_PRIORITY_DESCRIPTION, "writers_priority"),
        _rw_entry(rw.CspRWFcfs, rw.CSP_RW_FCFS_DESCRIPTION, "rw_fcfs"),
        _rw_entry(rw.CcrReadersPriority,
                  rw.CCR_READERS_PRIORITY_DESCRIPTION, "readers_priority"),
        _rw_entry(rw.CcrWritersPriority,
                  rw.CCR_WRITERS_PRIORITY_DESCRIPTION, "writers_priority"),
        _rw_entry(rw.CcrRWFcfs, rw.CCR_RW_FCFS_DESCRIPTION, "rw_fcfs"),
    ]

    # Bounded buffer ----------------------------------------------------
    for cls, description in (
        (bounded_buffer.SemaphoreBoundedBuffer,
         bounded_buffer.SEMAPHORE_BOUNDED_BUFFER_DESCRIPTION),
        (bounded_buffer.MonitorBoundedBuffer,
         bounded_buffer.MONITOR_BOUNDED_BUFFER_DESCRIPTION),
        (bounded_buffer.SerializerBoundedBuffer,
         bounded_buffer.SERIALIZER_BOUNDED_BUFFER_DESCRIPTION),
        (bounded_buffer.OpenPathBoundedBuffer,
         bounded_buffer.OPEN_PATH_BOUNDED_BUFFER_DESCRIPTION),
        (bounded_buffer.CspBoundedBuffer,
         bounded_buffer.CSP_BOUNDED_BUFFER_DESCRIPTION),
        (bounded_buffer.CcrBoundedBuffer,
         bounded_buffer.CCR_BOUNDED_BUFFER_DESCRIPTION),
        (eventcount_impls.EventCountBoundedBuffer,
         eventcount_impls.EVENTCOUNT_BOUNDED_BUFFER_DESCRIPTION),
    ):
        factory = (lambda c: lambda sched: c(sched))(cls)
        entries.append(RegisteredSolution(
            problem="bounded_buffer",
            mechanism=cls.mechanism,
            factory=factory,
            description=description,
            verifier=bounded_buffer.make_verifier(factory),
        ))

    # One-slot buffer ----------------------------------------------------
    for cls, description in (
        (one_slot_buffer.SemaphoreOneSlotBuffer,
         one_slot_buffer.SEMAPHORE_ONE_SLOT_DESCRIPTION),
        (one_slot_buffer.MonitorOneSlotBuffer,
         one_slot_buffer.MONITOR_ONE_SLOT_DESCRIPTION),
        (one_slot_buffer.SerializerOneSlotBuffer,
         one_slot_buffer.SERIALIZER_ONE_SLOT_DESCRIPTION),
        (one_slot_buffer.PathOneSlotBuffer,
         one_slot_buffer.PATH_ONE_SLOT_DESCRIPTION),
        (one_slot_buffer.CspOneSlotBuffer,
         one_slot_buffer.CSP_ONE_SLOT_DESCRIPTION),
        (one_slot_buffer.CcrOneSlotBuffer,
         one_slot_buffer.CCR_ONE_SLOT_DESCRIPTION),
        (eventcount_impls.EventCountOneSlotBuffer,
         eventcount_impls.EVENTCOUNT_ONE_SLOT_DESCRIPTION),
    ):
        factory = (lambda c: lambda sched: c(sched))(cls)
        entries.append(RegisteredSolution(
            problem="one_slot_buffer",
            mechanism=cls.mechanism,
            factory=factory,
            description=description,
            verifier=one_slot_buffer.make_verifier(factory),
        ))

    # FCFS resource -------------------------------------------------------
    for cls, description in (
        (fcfs_resource.SemaphoreFcfsResource,
         fcfs_resource.SEMAPHORE_FCFS_DESCRIPTION),
        (fcfs_resource.MonitorFcfsResource,
         fcfs_resource.MONITOR_FCFS_DESCRIPTION),
        (fcfs_resource.SerializerFcfsResource,
         fcfs_resource.SERIALIZER_FCFS_DESCRIPTION),
        (fcfs_resource.PathFcfsResource,
         fcfs_resource.PATH_FCFS_DESCRIPTION),
        (fcfs_resource.CspFcfsResource,
         fcfs_resource.CSP_FCFS_DESCRIPTION),
        (fcfs_resource.CcrFcfsResource,
         fcfs_resource.CCR_FCFS_DESCRIPTION),
        (eventcount_impls.EventCountFcfsResource,
         eventcount_impls.EVENTCOUNT_FCFS_DESCRIPTION),
    ):
        factory = (lambda c: lambda sched: c(sched))(cls)
        entries.append(RegisteredSolution(
            problem="fcfs_resource",
            mechanism=cls.mechanism,
            factory=factory,
            description=description,
            verifier=fcfs_resource.make_verifier(factory),
        ))

    # Disk scheduler -------------------------------------------------------
    for cls, description, check_scan in (
        (disk_scheduler.MonitorDiskScheduler,
         disk_scheduler.MONITOR_DISK_DESCRIPTION, True),
        (disk_scheduler.SerializerDiskScheduler,
         disk_scheduler.SERIALIZER_DISK_DESCRIPTION, True),
        (disk_scheduler.OpenPathDiskScheduler,
         disk_scheduler.OPEN_PATH_DISK_DESCRIPTION, True),
        (disk_scheduler.SemaphoreDiskFcfs,
         disk_scheduler.SEMAPHORE_DISK_DESCRIPTION, False),
        (disk_scheduler.CspDiskScheduler,
         disk_scheduler.CSP_DISK_DESCRIPTION, True),
        (disk_scheduler.CcrDiskScheduler,
         disk_scheduler.CCR_DISK_DESCRIPTION, True),
    ):
        factory = (lambda c: lambda sched: c(sched))(cls)
        entries.append(RegisteredSolution(
            problem="disk_scheduler",
            mechanism=cls.mechanism,
            factory=factory,
            description=description,
            verifier=disk_scheduler.make_verifier(factory,
                                                  check_scan=check_scan),
            notes="" if check_scan else "FCFS baseline, no elevator",
        ))

    # Alarm clock -----------------------------------------------------------
    for cls, description in (
        (alarm_clock.MonitorAlarmClock, alarm_clock.MONITOR_ALARM_DESCRIPTION),
        (alarm_clock.SerializerAlarmClock,
         alarm_clock.SERIALIZER_ALARM_DESCRIPTION),
        (alarm_clock.OpenPathAlarmClock,
         alarm_clock.OPEN_PATH_ALARM_DESCRIPTION),
        (alarm_clock.SemaphoreAlarmClock,
         alarm_clock.SEMAPHORE_ALARM_DESCRIPTION),
        (alarm_clock.CspAlarmClock, alarm_clock.CSP_ALARM_DESCRIPTION),
        (alarm_clock.CcrAlarmClock, alarm_clock.CCR_ALARM_DESCRIPTION),
    ):
        factory = (lambda c: lambda sched: c(sched))(cls)
        entries.append(RegisteredSolution(
            problem="alarm_clock",
            mechanism=cls.mechanism,
            factory=factory,
            description=description,
            verifier=alarm_clock.make_verifier(factory),
        ))

    # Staged queue ------------------------------------------------------------
    for cls, description in (
        (staged_queue.MonitorStagedQueue,
         staged_queue.MONITOR_STAGED_DESCRIPTION),
        (staged_queue.SerializerStagedQueue,
         staged_queue.SERIALIZER_STAGED_DESCRIPTION),
        (staged_queue.OpenPathStagedQueue,
         staged_queue.OPEN_PATH_STAGED_DESCRIPTION),
        (staged_queue.CspStagedQueue, staged_queue.CSP_STAGED_DESCRIPTION),
        (staged_queue.CcrStagedQueue, staged_queue.CCR_STAGED_DESCRIPTION),
    ):
        factory = (lambda c: lambda sched: c(sched))(cls)
        entries.append(RegisteredSolution(
            problem="staged_queue",
            mechanism=cls.mechanism,
            factory=factory,
            description=description,
            verifier=staged_queue.make_verifier(factory),
        ))

    return {entry.key: entry for entry in entries}


#: Every registered solution, keyed by (problem, mechanism).
REGISTRY: Dict[Tuple[str, str], RegisteredSolution] = _build_registry()


def all_solutions() -> List[RegisteredSolution]:
    """Every entry, ordered by problem then mechanism."""
    return sorted(REGISTRY.values(), key=lambda e: e.key)


def get_solution(problem: str, mechanism: str) -> RegisteredSolution:
    """Look up one entry (raises ``KeyError``)."""
    return REGISTRY[(problem, mechanism)]


def solutions_for(problem: Optional[str] = None,
                  mechanism: Optional[str] = None) -> List[RegisteredSolution]:
    """Filter the registry by problem and/or mechanism."""
    return [
        entry for entry in all_solutions()
        if (problem is None or entry.problem == problem)
        and (mechanism is None or entry.mechanism == mechanism)
    ]


def build_evaluator(include_infeasible: bool = True) -> Evaluator:
    """An :class:`Evaluator` pre-loaded with the entire registry.

    ``include_infeasible`` also loads the negative results of
    :mod:`repro.problems.infeasibility`, so the paper's "no way to express"
    findings surface as NONE cells in the expressive-power matrix.
    """
    from .infeasibility import INFEASIBILITY_RECORDS

    evaluator = Evaluator()
    for entry in all_solutions():
        evaluator.add(entry.description, entry.verifier)
    if include_infeasible:
        for record in INFEASIBILITY_RECORDS:
            evaluator.add(record, verifier=None)
    return evaluator
