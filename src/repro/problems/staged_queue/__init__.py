"""Class priority + FCFS within class (the §5.2 T1+T2 combination)."""

from typing import Callable, List, Sequence, Tuple

from ...runtime.errors import ProcessFailed
from ...runtime.scheduler import Scheduler
from ...verify import check_class_priority_two_stage, check_single_occupancy
from .impls import (
    MONITOR_STAGED_DESCRIPTION,
    MonitorSingleQueue,
    MonitorStagedQueue,
    OPEN_PATH_STAGED_DESCRIPTION,
    OpenPathStagedQueue,
    SERIALIZER_STAGED_DESCRIPTION,
    SerializerStagedQueue,
)

#: (class, arrival delay).  Everyone arrives at once (virtual time does not
#: advance while processes are runnable), so a queue builds behind the first
#: B and both oracles have bite: a correct solution must serve the queued
#: A's before the queued B's, FCFS within each class.
DEFAULT_PLAN: Tuple[Tuple[str, int], ...] = (
    ("B", 0), ("B", 0), ("A", 0), ("B", 0),
    ("A", 0), ("A", 0), ("B", 0), ("A", 0),
)


def run_classes(factory, plan: Sequence[Tuple[str, int]] = DEFAULT_PLAN,
                policy=None, sched=None):
    """Spawn one process per (class, delay) request.  ``sched`` injects a
    pre-built (e.g. instrumented) scheduler; ``policy`` is ignored then."""
    if sched is None:
        sched = Scheduler(policy=policy)
    impl = factory(sched)

    def requester(kind: str, delay: int):
        def body():
            if delay:
                yield from sched.sleep(delay)
            if kind == "A":
                yield from impl.use_a(work=3)
            else:
                yield from impl.use_b(work=3)
        return body

    for index, (kind, delay) in enumerate(plan):
        sched.spawn(requester(kind, delay), name="{}{}".format(kind, index))
    return sched.run(on_deadlock="return")


def make_verifier(factory, name: str = "res") -> Callable[[], List[str]]:
    """Oracle battery: single occupancy + class priority + FCFS per class."""

    def verify() -> List[str]:
        violations: List[str] = []
        try:
            result = run_classes(factory)
        except ProcessFailed as failure:
            return [str(failure)]
        violations.extend(
            check_single_occupancy(result.trace, name,
                                   ["acquire_a", "acquire_b"])
        )
        violations.extend(
            check_class_priority_two_stage(
                result.trace, name, "acquire_a", "acquire_b"
            )
        )
        if result.deadlocked:
            violations.append("deadlock")
        return violations

    return verify


__all__ = [
    "DEFAULT_PLAN",
    "MONITOR_STAGED_DESCRIPTION",
    "MonitorSingleQueue",
    "MonitorStagedQueue",
    "OPEN_PATH_STAGED_DESCRIPTION",
    "OpenPathStagedQueue",
    "SERIALIZER_STAGED_DESCRIPTION",
    "SerializerStagedQueue",
    "make_verifier",
    "run_classes",
]

from .ext_impls import (
    CCR_STAGED_DESCRIPTION,
    CSP_STAGED_DESCRIPTION,
    CcrStagedQueue,
    CspStagedQueue,
)

__all__ += [
    "CCR_STAGED_DESCRIPTION",
    "CSP_STAGED_DESCRIPTION",
    "CcrStagedQueue",
    "CspStagedQueue",
]
