"""Staged queue (class priority + FCFS within class) under the §6
extension mechanisms (experiment E11).

* CSP: one channel per class; class priority is select-arm order, FCFS
  within class is the channel queue — three moving parts, all native.
* CCR: class-A interest count + guard, the same interest-count pattern the
  priority readers/writers variants need.
"""

from __future__ import annotations

from typing import Generator

from ...core import (
    Component,
    ConstraintRealization,
    Directness,
    InformationType,
    ModularityProfile,
    SolutionDescription,
)
from ...mechanisms.ccr import SharedRegion
from ...mechanisms.channels import Channel, ReceiveOp, select
from ...runtime.scheduler import Scheduler
from ..base import SolutionBase

T1 = InformationType.REQUEST_TYPE
T2 = InformationType.REQUEST_TIME
T4 = InformationType.SYNC_STATE


class CspStagedQueue(SolutionBase):
    """Two request channels; the class-A arm is checked first."""

    problem = "staged_queue"
    mechanism = "csp"

    def __init__(self, sched: Scheduler, name: str = "res") -> None:
        super().__init__(sched, name)
        self.ch_a = Channel(sched, name + ".class_a")
        self.ch_b = Channel(sched, name + ".class_b")
        self.ch_done = Channel(sched, name + ".done")
        sched.spawn(self._server, name=name + ".server", daemon=True)

    def _server(self) -> Generator:
        # Drain-then-decide: pull every request already offered on either
        # channel into local FIFO lists, then grant by class priority.
        # Deciding at rendezvous time instead would race against same-wave
        # arrivals (a request can be accepted before a higher-class request
        # from the same burst has even been offered).
        pend_a: list = []
        pend_b: list = []
        busy = False
        while True:
            while self.ch_a.senders_waiting:
                reply = yield from self.ch_a.receive()
                pend_a.append(reply)
            while self.ch_b.senders_waiting:
                reply = yield from self.ch_b.receive()
                pend_b.append(reply)
            if not busy and (pend_a or pend_b):
                reply = pend_a.pop(0) if pend_a else pend_b.pop(0)
                busy = True
                yield from reply.send(None)
                continue
            index, msg = yield from select(self._sched, [
                ReceiveOp(self.ch_a),
                ReceiveOp(self.ch_b),
                ReceiveOp(self.ch_done, guard=busy),
            ])
            if index == 0:
                pend_a.append(msg)
            elif index == 1:
                pend_b.append(msg)
            else:
                busy = False

    def use_a(self, work: int = 1) -> Generator:
        """One class-A use of the resource."""
        yield from self._use("acquire_a", self.ch_a, work)

    def use_b(self, work: int = 1) -> Generator:
        """One class-B use of the resource."""
        yield from self._use("acquire_b", self.ch_b, work)

    def _use(self, op: str, channel: Channel, work: int) -> Generator:
        self._request(op)
        reply = Channel(self._sched, self.name + ".reply")
        yield from channel.send(reply)
        yield from reply.receive()
        self._start(op)
        yield from self._work(work)
        self._finish(op)
        yield from self.ch_done.send(None)


class CcrStagedQueue(SolutionBase):
    """Class-A interest count; class B defers to it in its guard."""

    problem = "staged_queue"
    mechanism = "ccr"

    def __init__(self, sched: Scheduler, name: str = "res") -> None:
        super().__init__(sched, name)
        self.cell = SharedRegion(
            sched, {"busy": False, "a_interest": 0}, name=name + ".v"
        )

    def use_a(self, work: int = 1) -> Generator:
        """One class-A use of the resource."""
        self._request("acquire_a")
        cell = self.cell
        yield from cell.enter()
        cell.vars["a_interest"] += 1
        cell.leave()
        yield from cell.enter(lambda v: not v["busy"])
        cell.vars["a_interest"] -= 1
        cell.vars["busy"] = True
        cell.leave()
        self._start("acquire_a")
        yield from self._work(work)
        self._finish("acquire_a")
        yield from cell.enter()
        cell.vars["busy"] = False
        cell.leave()

    def use_b(self, work: int = 1) -> Generator:
        """One class-B use of the resource."""
        self._request("acquire_b")
        cell = self.cell
        yield from cell.enter(
            lambda v: not v["busy"] and v["a_interest"] == 0
        )
        cell.vars["busy"] = True
        cell.leave()
        self._start("acquire_b")
        yield from self._work(work)
        self._finish("acquire_b")
        yield from cell.enter()
        cell.vars["busy"] = False
        cell.leave()


CSP_STAGED_DESCRIPTION = SolutionDescription(
    problem="staged_queue",
    mechanism="csp",
    components=(
        Component("chan:class_a", "queue", "first select arm"),
        Component("chan:class_b", "queue"),
        Component("chan:done", "queue"),
        Component("proc:grant_loop", "procedure",
                  "select(A first, then B); reply; await done"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="resource_mutex",
            components=("proc:grant_loop", "chan:done"),
            constructs=("server_process",),
            directness=Directness.DIRECT,
            info_handling={T4: Directness.DIRECT},
        ),
        ConstraintRealization(
            constraint_id="class_priority",
            components=("chan:class_a", "chan:class_b", "proc:grant_loop"),
            constructs=("arm_order",),
            directness=Directness.DIRECT,
            info_handling={T1: Directness.DIRECT},
        ),
        ConstraintRealization(
            constraint_id="fcfs_within_class",
            components=("chan:class_a", "chan:class_b"),
            constructs=("channel_fifo",),
            directness=Directness.DIRECT,
            info_handling={T2: Directness.DIRECT},
        ),
    ),
    modularity=ModularityProfile(True, False, True),
)

CCR_STAGED_DESCRIPTION = SolutionDescription(
    problem="staged_queue",
    mechanism="ccr",
    components=(
        Component("var:busy", "variable"),
        Component("var:a_interest", "variable"),
        Component("guard:use_a", "guard", "when not busy"),
        Component("guard:use_b", "guard",
                  "when not busy and a_interest = 0"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="resource_mutex",
            components=("var:busy", "guard:use_a", "guard:use_b"),
            constructs=("region_guard",),
            directness=Directness.DIRECT,
            info_handling={T4: Directness.INDIRECT},
        ),
        ConstraintRealization(
            constraint_id="class_priority",
            components=("var:a_interest", "guard:use_b"),
            constructs=("interest_count", "region_guard"),
            directness=Directness.INDIRECT,
            info_handling={T1: Directness.INDIRECT},
        ),
        ConstraintRealization(
            constraint_id="fcfs_within_class",
            components=("guard:use_a", "guard:use_b"),
            constructs=("fifo_eligibility",),
            directness=Directness.INDIRECT,
            info_handling={T2: Directness.INDIRECT},
            notes="depends on the region's FIFO-among-eligible wake rule, "
            "an implementation property (like path selection FIFO)",
        ),
    ),
    modularity=ModularityProfile(False, True, False),
)
