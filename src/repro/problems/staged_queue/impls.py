"""Class-priority with FCFS-within-class — the T1 + T2 combination problem.

Two request classes contend for one resource: class A outranks class B, and
each class is served in arrival order.  This needs request type (to rank)
and request time (to order) together — the pair §5.2 identifies as the one
conflicting combination in monitors.

Variants:

* :class:`MonitorStagedQueue` — the standard resolution: one condition
  queue *per class* (type = which queue, time = position in it).
* :class:`MonitorSingleQueue` — the deliberately naive contrast used by
  experiment E8: one queue keeps global arrival order but cannot see types,
  so class priority is silently lost.  Expected to FAIL the class-priority
  oracle.
* :class:`SerializerStagedQueue` — queue declaration order is the class
  priority; three declarations, no signalling.
* :class:`OpenPathStagedQueue` — the priority operator (Habermann 1975
  version) on guarded paths.
"""

from __future__ import annotations

from typing import Generator

from ...core import (
    Component,
    ConstraintRealization,
    Directness,
    InformationType,
    ModularityProfile,
    SolutionDescription,
)
from ...mechanisms.monitor import Monitor
from ...mechanisms.pathexpr import GuardedPathResource
from ...mechanisms.serializer import Serializer
from ...runtime.scheduler import Scheduler
from ..base import SolutionBase

T1 = InformationType.REQUEST_TYPE
T2 = InformationType.REQUEST_TIME
T4 = InformationType.SYNC_STATE


class MonitorStagedQueue(SolutionBase):
    """Two condition queues, one per class; release prefers class A."""

    problem = "staged_queue"
    mechanism = "monitor"

    def __init__(self, sched: Scheduler, name: str = "res") -> None:
        super().__init__(sched, name)
        self.mon = Monitor(sched, name + ".mon")
        self.qa = self.mon.condition("class_a")
        self.qb = self.mon.condition("class_b")
        self._busy = False

    def use_a(self, work: int = 1) -> Generator:
        """One class-A use of the resource."""
        yield from self._use("acquire_a", self.qa, work)

    def use_b(self, work: int = 1) -> Generator:
        """One class-B use of the resource."""
        yield from self._use("acquire_b", self.qb, work)

    def _use(self, op: str, cond, work: int) -> Generator:
        self._request(op)
        yield from self.mon.enter()
        if self._busy:
            yield from cond.wait()
        self._busy = True
        self.mon.exit()
        self._start(op)
        yield from self._work(work)
        self._finish(op)
        yield from self.mon.enter()
        self._busy = False
        if self.qa.queue:
            yield from self.qa.signal()
        else:
            yield from self.qb.signal()
        self.mon.exit()


class MonitorSingleQueue(SolutionBase):
    """The naive contrast: one FIFO queue for both classes — global FCFS,
    class priority lost (request type information discarded)."""

    problem = "staged_queue"
    mechanism = "monitor"

    def __init__(self, sched: Scheduler, name: str = "res") -> None:
        super().__init__(sched, name)
        self.mon = Monitor(sched, name + ".mon")
        self.turn = self.mon.condition("turn")
        self._busy = False

    def use_a(self, work: int = 1) -> Generator:
        """One class-A use of the resource."""
        yield from self._use("acquire_a", work)

    def use_b(self, work: int = 1) -> Generator:
        """One class-B use of the resource."""
        yield from self._use("acquire_b", work)

    def _use(self, op: str, work: int) -> Generator:
        self._request(op)
        yield from self.mon.enter()
        if self._busy or self.turn.queue:
            yield from self.turn.wait()
        self._busy = True
        self.mon.exit()
        self._start(op)
        yield from self._work(work)
        self._finish(op)
        yield from self.mon.enter()
        self._busy = False
        yield from self.turn.signal()
        self.mon.exit()


class SerializerStagedQueue(SolutionBase):
    """Serializer: queue declaration order *is* the class priority."""

    problem = "staged_queue"
    mechanism = "serializer"

    def __init__(self, sched: Scheduler, name: str = "res") -> None:
        super().__init__(sched, name)
        self.ser = Serializer(sched, name + ".ser")
        self.qa = self.ser.queue("class_a")  # declared first: priority
        self.qb = self.ser.queue("class_b")
        self.user = self.ser.crowd("user")

    def use_a(self, work: int = 1) -> Generator:
        """One class-A use of the resource."""
        yield from self._use("acquire_a", self.qa, work)

    def use_b(self, work: int = 1) -> Generator:
        """One class-B use of the resource."""
        yield from self._use("acquire_b", self.qb, work)

    def _use(self, op: str, queue, work: int) -> Generator:
        self._request(op)
        yield from self.ser.enter()
        yield from self.ser.enqueue(queue, lambda: self.user.empty)
        yield from self.ser.join_crowd(self.user)
        self._start(op)
        yield from self._work(work)
        self._finish(op)
        yield from self.ser.leave_crowd(self.user)
        self.ser.exit()


class OpenPathStagedQueue(SolutionBase):
    """Guarded paths with the priority operator: both ops guarded on the
    resource being free; class A carries the higher wake priority."""

    problem = "staged_queue"
    mechanism = "pathexpr_open"

    def __init__(self, sched: Scheduler, name: str = "res") -> None:
        super().__init__(sched, name)
        solution = self

        def body(op: str):
            def run(res, work: int) -> Generator:
                solution._start(op)
                yield from solution._work(work)
                solution._finish(op)
            return run

        def free(res, args) -> bool:
            return (
                res.active("acquire_a") == 0 and res.active("acquire_b") == 0
            )

        self.paths = GuardedPathResource(
            sched,
            "path acquire_a , acquire_b end",
            operations={
                "acquire_a": body("acquire_a"),
                "acquire_b": body("acquire_b"),
            },
            guards={"acquire_a": free, "acquire_b": free},
            priorities={"acquire_a": 10, "acquire_b": 1},
            name=name + ".paths",
        )

    def use_a(self, work: int = 1) -> Generator:
        """One class-A use of the resource."""
        self._request("acquire_a")
        yield from self.paths.invoke("acquire_a", work)

    def use_b(self, work: int = 1) -> Generator:
        """One class-B use of the resource."""
        self._request("acquire_b")
        yield from self.paths.invoke("acquire_b", work)


# ----------------------------------------------------------------------
# Descriptions
# ----------------------------------------------------------------------
MONITOR_STAGED_DESCRIPTION = SolutionDescription(
    problem="staged_queue",
    mechanism="monitor",
    components=(
        Component("var:busy", "variable"),
        Component("cond:class_a", "condition", "FIFO, class A"),
        Component("cond:class_b", "condition", "FIFO, class B"),
        Component("proc:acquire", "procedure",
                  "if busy then wait on own class queue"),
        Component("proc:release", "procedure",
                  "if class_a.queue then class_a.signal else class_b.signal"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="resource_mutex",
            components=("var:busy", "proc:acquire", "proc:release"),
            constructs=("monitor_mutex",),
            directness=Directness.DIRECT,
            info_handling={T4: Directness.INDIRECT},
        ),
        ConstraintRealization(
            constraint_id="class_priority",
            components=("cond:class_a", "cond:class_b", "proc:release"),
            constructs=("condition_queue", "explicit_signal"),
            directness=Directness.DIRECT,
            info_handling={T1: Directness.DIRECT},
            notes="type = separate queues; the §5.2 rule",
        ),
        ConstraintRealization(
            constraint_id="fcfs_within_class",
            components=("cond:class_a", "cond:class_b"),
            constructs=("condition_queue",),
            directness=Directness.DIRECT,
            info_handling={T2: Directness.DIRECT},
            notes="time = position in queue; the combination works because "
            "ordering is only needed WITHIN each type here — contrast "
            "rw_fcfs, where ordering across types forces two-stage queuing",
        ),
    ),
    modularity=ModularityProfile(True, True, False),
)

SERIALIZER_STAGED_DESCRIPTION = SolutionDescription(
    problem="staged_queue",
    mechanism="serializer",
    components=(
        Component("queue:class_a", "queue", "declared first"),
        Component("queue:class_b", "queue"),
        Component("crowd:user", "crowd"),
        Component("guarantee:use", "guarantee", "user.empty"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="resource_mutex",
            components=("crowd:user", "guarantee:use"),
            constructs=("crowd", "guarantee"),
            directness=Directness.DIRECT,
            info_handling={T4: Directness.DIRECT},
        ),
        ConstraintRealization(
            constraint_id="class_priority",
            components=("queue:class_a", "queue:class_b"),
            constructs=("queue_order",),
            directness=Directness.DIRECT,
            info_handling={T1: Directness.DIRECT},
        ),
        ConstraintRealization(
            constraint_id="fcfs_within_class",
            components=("queue:class_a", "queue:class_b"),
            constructs=("queue_order", "automatic_signal"),
            directness=Directness.DIRECT,
            info_handling={T2: Directness.DIRECT},
        ),
    ),
    modularity=ModularityProfile(True, True, True),
)

OPEN_PATH_STAGED_DESCRIPTION = SolutionDescription(
    problem="staged_queue",
    mechanism="pathexpr_open",
    components=(
        Component("path:1", "path", "path acquire_a , acquire_b end"),
        Component("guard:free", "guard", "no acquisition in flight"),
        Component("priority:classes", "guard",
                  "priority(acquire_a) > priority(acquire_b)"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="resource_mutex",
            components=("path:1", "guard:free"),
            constructs=("selection", "predicate"),
            directness=Directness.DIRECT,
            info_handling={T4: Directness.INDIRECT},
        ),
        ConstraintRealization(
            constraint_id="class_priority",
            components=("priority:classes",),
            constructs=("priority_operator",),
            directness=Directness.INDIRECT,
            info_handling={T1: Directness.INDIRECT},
            notes="base paths have no priority at all (§5.1.1); the 1975 "
            "version's priority operator supplies it",
        ),
        ConstraintRealization(
            constraint_id="fcfs_within_class",
            components=("priority:classes",),
            constructs=("fifo_selection",),
            directness=Directness.INDIRECT,
            info_handling={T2: Directness.INDIRECT},
        ),
    ),
    modularity=ModularityProfile(True, False, True),
)
