"""Workloads and verifier for the bounded buffer.

The correctness story is carried by the resource itself (overflow/underflow/
overlap raise :class:`ResourceIntegrityError`) plus two trace/data checks:
operations never overlap, and consumers drain exactly the produced items in
FIFO order.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ...runtime.errors import ProcessFailed
from ...runtime.policies import RandomPolicy, SchedulingPolicy
from ...runtime.scheduler import Scheduler
from ...verify import check_mutual_exclusion

Factory = Callable[[Scheduler], object]


def run_producers_consumers(
    factory: Factory,
    producers: int = 2,
    consumers: int = 2,
    items_each: int = 5,
    policy: Optional[SchedulingPolicy] = None,
    sched: Optional[Scheduler] = None,
):
    """Spawn producers/consumers; returns (result, produced, consumed).
    ``sched`` injects a pre-built (e.g. instrumented) scheduler; ``policy``
    is ignored then."""
    if sched is None:
        sched = Scheduler(policy=policy)
    impl = factory(sched)
    produced: List[int] = []
    consumed: List[int] = []
    total = producers * items_each

    def producer(base: int):
        def body():
            for i in range(items_each):
                item = base * 1000 + i
                yield from impl.put(item)
                produced.append(item)
        return body

    def consumer(count: int):
        def body():
            for __ in range(count):
                item = yield from impl.get()
                consumed.append(item)
        return body

    share, remainder = divmod(total, consumers)
    for p in range(producers):
        sched.spawn(producer(p), name="prod{}".format(p))
    for c in range(consumers):
        count = share + (1 if c < remainder else 0)
        sched.spawn(consumer(count), name="cons{}".format(c))
    result = sched.run(on_deadlock="return")
    return result, produced, consumed


def make_verifier(
    factory: Factory,
    name: str = "buf",
    random_seeds: Sequence[int] = (0, 1, 2, 3),
) -> Callable[[], List[str]]:
    """Oracle battery: integrity + no overlap + conservation, across FIFO
    and randomized schedules."""

    def run_one(label: str, policy=None) -> List[str]:
        try:
            result, produced, consumed = run_producers_consumers(
                factory, policy=policy
            )
        except ProcessFailed as failure:
            return ["{}: {}".format(label, failure)]
        violations = [
            "{}: {}".format(label, msg)
            for msg in check_mutual_exclusion(
                result.trace, name, exclusive_ops=["put", "get"]
            )
        ]
        if result.deadlocked:
            violations.append(
                "{}: deadlock, blocked={}".format(label, result.blocked)
            )
        elif sorted(consumed) != sorted(produced):
            violations.append(
                "{}: consumed items differ from produced".format(label)
            )
        return violations

    def verify() -> List[str]:
        violations = run_one("fifo")
        for seed in random_seeds:
            violations.extend(
                run_one("random{}".format(seed), RandomPolicy(seed))
            )
        return violations

    return verify
