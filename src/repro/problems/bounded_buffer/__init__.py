"""Bounded buffer (footnote 2: the local-state problem)."""

from .impls import (
    MONITOR_BOUNDED_BUFFER_DESCRIPTION,
    MonitorBoundedBuffer,
    OPEN_PATH_BOUNDED_BUFFER_DESCRIPTION,
    OpenPathBoundedBuffer,
    SEMAPHORE_BOUNDED_BUFFER_DESCRIPTION,
    SemaphoreBoundedBuffer,
    SERIALIZER_BOUNDED_BUFFER_DESCRIPTION,
    SerializerBoundedBuffer,
)
from .workloads import make_verifier, run_producers_consumers

__all__ = [
    "MONITOR_BOUNDED_BUFFER_DESCRIPTION",
    "MonitorBoundedBuffer",
    "OPEN_PATH_BOUNDED_BUFFER_DESCRIPTION",
    "OpenPathBoundedBuffer",
    "SEMAPHORE_BOUNDED_BUFFER_DESCRIPTION",
    "SemaphoreBoundedBuffer",
    "SERIALIZER_BOUNDED_BUFFER_DESCRIPTION",
    "SerializerBoundedBuffer",
    "make_verifier",
    "run_producers_consumers",
]

from .ext_impls import (
    CCR_BOUNDED_BUFFER_DESCRIPTION,
    CSP_BOUNDED_BUFFER_DESCRIPTION,
    CcrBoundedBuffer,
    CspBoundedBuffer,
)

__all__ += [
    "CCR_BOUNDED_BUFFER_DESCRIPTION",
    "CSP_BOUNDED_BUFFER_DESCRIPTION",
    "CcrBoundedBuffer",
    "CspBoundedBuffer",
]
