"""Bounded buffer under the §6 extension mechanisms (experiment E11).

* :class:`CspBoundedBuffer` — the canonical CSP buffer process: a select
  loop whose put-arm is guarded by "not full" and whose get-arm *offers*
  the head item, guarded by "not empty".
* :class:`CcrBoundedBuffer` — the canonical CCR example (Brinch Hansen's
  own): ``region buf when not full do put``; local state is exactly what
  CCR guards were designed for.
"""

from __future__ import annotations

from typing import Any, Generator

from ...core import (
    Component,
    ConstraintRealization,
    Directness,
    InformationType,
    ModularityProfile,
    SolutionDescription,
)
from ...mechanisms.ccr import SharedRegion
from ...mechanisms.channels import Channel, ReceiveOp, SendOp, select
from ...resources import BoundedBuffer
from ...runtime.scheduler import Scheduler
from ..base import SolutionBase

T4 = InformationType.SYNC_STATE
T5 = InformationType.LOCAL_STATE


class CspBoundedBuffer(SolutionBase):
    """The CSP'78 bounded buffer process."""

    problem = "bounded_buffer"
    mechanism = "csp"

    def __init__(self, sched: Scheduler, capacity: int = 4,
                 name: str = "buf") -> None:
        super().__init__(sched, name)
        self.buffer = BoundedBuffer(capacity)
        self.ch_put = Channel(sched, name + ".put")
        self.ch_get = Channel(sched, name + ".get")
        sched.spawn(self._server, name=name + ".server", daemon=True)

    def _server(self) -> Generator:
        while True:
            arms = [
                ReceiveOp(self.ch_put, guard=not self.buffer.full),
                SendOp(
                    self.ch_get,
                    self.buffer.peek() if not self.buffer.empty else None,
                    guard=not self.buffer.empty,
                ),
            ]
            index, item = yield from select(self._sched, arms)
            if index == 0:
                self._start("put")
                yield from self.buffer.put(item)
                self._finish("put")
            else:
                self._start("get")
                yield from self.buffer.get()
                self._finish("get")

    def put(self, item: Any, work: int = 0) -> Generator:
        """Insert one item, blocking while the buffer is full."""
        self._request("put", item)
        yield from self.ch_put.send(item)
        yield from self._work(work)

    def get(self, work: int = 0) -> Generator:
        """Remove and return the oldest item, blocking while empty."""
        self._request("get")
        item = yield from self.ch_get.receive()
        yield from self._work(work)
        return item


class CcrBoundedBuffer(SolutionBase):
    """``region buf when not full do put`` — CCR's home turf."""

    problem = "bounded_buffer"
    mechanism = "ccr"

    def __init__(self, sched: Scheduler, capacity: int = 4,
                 name: str = "buf") -> None:
        super().__init__(sched, name)
        self.buffer = BoundedBuffer(capacity)
        self.cell = SharedRegion(sched, {}, name=name + ".v")

    def put(self, item: Any, work: int = 0) -> Generator:
        """Insert one item, blocking while the buffer is full."""
        self._request("put", item)
        yield from self.cell.enter(lambda v: not self.buffer.full)
        self._start("put")
        yield from self.buffer.put(item)
        yield from self._work(work)
        self._finish("put")
        self.cell.leave()

    def get(self, work: int = 0) -> Generator:
        """Remove and return the oldest item, blocking while empty."""
        self._request("get")
        yield from self.cell.enter(lambda v: not self.buffer.empty)
        self._start("get")
        item = yield from self.buffer.get()
        yield from self._work(work)
        self._finish("get")
        self.cell.leave()
        return item


CSP_BOUNDED_BUFFER_DESCRIPTION = SolutionDescription(
    problem="bounded_buffer",
    mechanism="csp",
    components=(
        Component("chan:put", "queue"),
        Component("chan:get", "queue"),
        Component("guard:put", "guard", "not buffer.full"),
        Component("guard:get", "guard", "not buffer.empty (send arm)"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="buffer_bounds",
            components=("guard:put", "guard:get"),
            constructs=("guarded_select", "server_process"),
            directness=Directness.DIRECT,
            info_handling={T5: Directness.DIRECT},
            notes="the CSP'78 paper's own example; guards read the server's "
            "resource state directly",
        ),
        ConstraintRealization(
            constraint_id="buffer_mutex",
            components=("chan:put", "chan:get"),
            constructs=("server_process",),
            directness=Directness.DIRECT,
            info_handling={T4: Directness.DIRECT},
            notes="the server's sequentiality IS the exclusion",
        ),
    ),
    modularity=ModularityProfile(True, False, True),
)

CCR_BOUNDED_BUFFER_DESCRIPTION = SolutionDescription(
    problem="bounded_buffer",
    mechanism="ccr",
    components=(
        Component("guard:put", "guard", "region when not buffer.full"),
        Component("guard:get", "guard", "region when not buffer.empty"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="buffer_bounds",
            components=("guard:put", "guard:get"),
            constructs=("region_guard",),
            directness=Directness.DIRECT,
            info_handling={T5: Directness.DIRECT},
            notes="local state is exactly what the when-clause was built "
            "for (Brinch Hansen's flagship example, paper ref [6])",
        ),
        ConstraintRealization(
            constraint_id="buffer_mutex",
            components=("guard:put", "guard:get"),
            constructs=("region_mutex",),
            directness=Directness.DIRECT,
            info_handling={T4: Directness.INDIRECT},
        ),
    ),
    modularity=ModularityProfile(False, True, False),
)
