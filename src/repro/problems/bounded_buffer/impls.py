"""Bounded buffer solutions — the suite's local-state (T5) problem.

Four mechanisms.  The base-path-expression finding of §5.1.2 ("nor is local
resource state information available") shows up here concretely: the bounded
buffer needs the count of stored items, which base paths cannot see, so the
path solution uses the *extended* (open) variant with the numeric-operator
counters — mechanism tag ``pathexpr_open``.
"""

from __future__ import annotations

from typing import Any, Generator

from ...core import (
    Component,
    ConstraintRealization,
    Directness,
    InformationType,
    ModularityProfile,
    SolutionDescription,
)
from ...mechanisms.monitor import Monitor
from ...mechanisms.pathexpr import GuardedPathResource
from ...mechanisms.serializer import Serializer
from ...resources import BoundedBuffer
from ...runtime.primitives import Semaphore
from ...runtime.scheduler import Scheduler
from ..base import SolutionBase

T4 = InformationType.SYNC_STATE
T5 = InformationType.LOCAL_STATE
T6 = InformationType.HISTORY


class SemaphoreBoundedBuffer(SolutionBase):
    """Dijkstra's classic: counting semaphores mirror the buffer state."""

    problem = "bounded_buffer"
    mechanism = "semaphore"

    def __init__(self, sched: Scheduler, capacity: int = 4,
                 name: str = "buf") -> None:
        super().__init__(sched, name)
        self.buffer = BoundedBuffer(capacity)
        self._spaces = Semaphore(sched, capacity, name + ".spaces")
        self._items = Semaphore(sched, 0, name + ".items")
        self._mutex = Semaphore(sched, 1, name + ".mutex")

    def put(self, item: Any, work: int = 0) -> Generator:
        """Insert one item, blocking while the buffer is full."""
        self._request("put", item)
        yield from self._spaces.p()
        yield from self._mutex.p()
        self._start("put")
        yield from self.buffer.put(item)
        yield from self._work(work)
        self._finish("put")
        self._mutex.v()
        self._items.v()

    def get(self, work: int = 0) -> Generator:
        """Remove and return the oldest item, blocking while empty."""
        self._request("get")
        yield from self._items.p()
        yield from self._mutex.p()
        self._start("get")
        item = yield from self.buffer.get()
        yield from self._work(work)
        self._finish("get")
        self._mutex.v()
        self._spaces.v()
        return item


class MonitorBoundedBuffer(SolutionBase):
    """Hoare's bounded buffer, structured per §2: the monitor is a pure
    synchronizer reading the buffer's *local state* (``full`` / ``empty``)
    directly off the separate resource object."""

    problem = "bounded_buffer"
    mechanism = "monitor"

    def __init__(self, sched: Scheduler, capacity: int = 4,
                 name: str = "buf") -> None:
        super().__init__(sched, name)
        self.buffer = BoundedBuffer(capacity)
        self.mon = Monitor(sched, name + ".mon")
        self.nonfull = self.mon.condition("nonfull")
        self.nonempty = self.mon.condition("nonempty")
        self._op_active = False

    def put(self, item: Any, work: int = 0) -> Generator:
        """Insert one item, blocking while the buffer is full."""
        self._request("put", item)
        yield from self.mon.enter()
        while self._op_active or self.buffer.full:
            yield from self.nonfull.wait()
        self._op_active = True
        self.mon.exit()
        self._start("put")
        yield from self.buffer.put(item)
        yield from self._work(work)
        self._finish("put")
        yield from self.mon.enter()
        self._op_active = False
        yield from self.nonempty.signal()
        if not self.buffer.full:
            yield from self.nonfull.signal()
        self.mon.exit()

    def get(self, work: int = 0) -> Generator:
        """Remove and return the oldest item, blocking while empty."""
        self._request("get")
        yield from self.mon.enter()
        while self._op_active or self.buffer.empty:
            yield from self.nonempty.wait()
        self._op_active = True
        self.mon.exit()
        self._start("get")
        item = yield from self.buffer.get()
        yield from self._work(work)
        self._finish("get")
        yield from self.mon.enter()
        self._op_active = False
        yield from self.nonfull.signal()
        if not self.buffer.empty:
            yield from self.nonempty.signal()
        self.mon.exit()
        return item


class SerializerBoundedBuffer(SolutionBase):
    """Serializer bounded buffer: guarantees read buffer state and the
    crowd; no signals anywhere."""

    problem = "bounded_buffer"
    mechanism = "serializer"

    def __init__(self, sched: Scheduler, capacity: int = 4,
                 name: str = "buf") -> None:
        super().__init__(sched, name)
        self.buffer = BoundedBuffer(capacity)
        self.ser = Serializer(sched, name + ".ser")
        self.putq = self.ser.queue("putq")
        self.getq = self.ser.queue("getq")
        self.users = self.ser.crowd("users")

    def put(self, item: Any, work: int = 0) -> Generator:
        """Insert one item, blocking while the buffer is full."""
        self._request("put", item)
        yield from self.ser.enter()
        yield from self.ser.enqueue(
            self.putq, lambda: self.users.empty and not self.buffer.full
        )
        yield from self.ser.join_crowd(self.users)
        self._start("put")
        yield from self.buffer.put(item)
        yield from self._work(work)
        self._finish("put")
        yield from self.ser.leave_crowd(self.users)
        self.ser.exit()

    def get(self, work: int = 0) -> Generator:
        """Remove and return the oldest item, blocking while empty."""
        self._request("get")
        yield from self.ser.enter()
        yield from self.ser.enqueue(
            self.getq, lambda: self.users.empty and not self.buffer.empty
        )
        yield from self.ser.join_crowd(self.users)
        self._start("get")
        item = yield from self.buffer.get()
        yield from self._work(work)
        self._finish("get")
        yield from self.ser.leave_crowd(self.users)
        self.ser.exit()
        return item


class OpenPathBoundedBuffer(SolutionBase):
    """Bounded buffer in *extended* path expressions via the numeric
    operator (Flon–Habermann, the §5.1.2 lineage).

    ``path N : ( put ; get ) end`` keeps at most N put→get cycles in flight
    — puts can run at most N ahead of gets, which *is* the capacity bound;
    ``path put , get end`` serializes the individual operations.  No guards,
    no counters: the bound lives in the path text, expressing the local-state
    condition through history (the interchangeability §3 notes).
    """

    problem = "bounded_buffer"
    mechanism = "pathexpr_open"

    def __init__(self, sched: Scheduler, capacity: int = 4,
                 name: str = "buf") -> None:
        super().__init__(sched, name)
        self.buffer = BoundedBuffer(capacity)
        self.capacity = capacity
        solution = self

        def put_body(res, item: Any, work: int) -> Generator:
            solution._start("put")
            yield from solution.buffer.put(item)
            yield from solution._work(work)
            solution._finish("put")

        def get_body(res, work: int) -> Generator:
            solution._start("get")
            item = yield from solution.buffer.get()
            yield from solution._work(work)
            solution._finish("get")
            return item

        self.paths = GuardedPathResource(
            sched,
            [
                "path {} : ( put ; get ) end".format(capacity),
                "path put , get end",
            ],
            operations={"put": put_body, "get": get_body},
            name=name + ".paths",
        )

    def put(self, item: Any, work: int = 0) -> Generator:
        """Insert one item, blocking while the buffer is full."""
        self._request("put", item)
        yield from self.paths.invoke("put", item, work)

    def get(self, work: int = 0) -> Generator:
        """Remove and return the oldest item, blocking while empty."""
        self._request("get")
        item = yield from self.paths.invoke("get", work)
        return item


# ----------------------------------------------------------------------
# Descriptions
# ----------------------------------------------------------------------
SEMAPHORE_BOUNDED_BUFFER_DESCRIPTION = SolutionDescription(
    problem="bounded_buffer",
    mechanism="semaphore",
    components=(
        Component("sem:spaces", "semaphore", "init N: free slots"),
        Component("sem:items", "semaphore", "init 0: stored items"),
        Component("sem:mutex", "semaphore", "op exclusion"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="buffer_bounds",
            components=("sem:spaces", "sem:items"),
            constructs=("counting_semaphore",),
            directness=Directness.INDIRECT,
            info_handling={T5: Directness.INDIRECT},
            notes="local state is *encoded* in semaphore counts that must "
            "be kept consistent with the buffer by hand",
        ),
        ConstraintRealization(
            constraint_id="buffer_mutex",
            components=("sem:mutex",),
            constructs=("semaphore",),
            directness=Directness.DIRECT,
            info_handling={T4: Directness.INDIRECT},
        ),
    ),
    modularity=ModularityProfile(False, False, False,
                                 "P/V at every access point"),
)

MONITOR_BOUNDED_BUFFER_DESCRIPTION = SolutionDescription(
    problem="bounded_buffer",
    mechanism="monitor",
    components=(
        Component("cond:nonfull", "condition"),
        Component("cond:nonempty", "condition"),
        Component("var:op_active", "variable", "op_active := false"),
        Component("proc:before_put", "procedure",
                  "while op_active or buffer.full do nonfull.wait"),
        Component("proc:after_put", "procedure",
                  "op_active := false; nonempty.signal"),
        Component("proc:before_get", "procedure",
                  "while op_active or buffer.empty do nonempty.wait"),
        Component("proc:after_get", "procedure",
                  "op_active := false; nonfull.signal"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="buffer_bounds",
            components=("cond:nonfull", "cond:nonempty",
                        "proc:before_put", "proc:before_get"),
            constructs=("condition_queue", "resource_state_query"),
            directness=Directness.DIRECT,
            info_handling={T5: Directness.DIRECT},
            notes="guards read buffer.full / buffer.empty straight off the "
            "separate resource object (the §2 structure)",
        ),
        ConstraintRealization(
            constraint_id="buffer_mutex",
            components=("var:op_active", "proc:before_put", "proc:after_put",
                        "proc:before_get", "proc:after_get"),
            constructs=("monitor_mutex", "local_data"),
            directness=Directness.DIRECT,
            info_handling={T4: Directness.INDIRECT},
        ),
    ),
    modularity=ModularityProfile(True, True, False),
)

SERIALIZER_BOUNDED_BUFFER_DESCRIPTION = SolutionDescription(
    problem="bounded_buffer",
    mechanism="serializer",
    components=(
        Component("queue:putq", "queue"),
        Component("queue:getq", "queue"),
        Component("crowd:users", "crowd"),
        Component("guarantee:put", "guarantee",
                  "users.empty and not buffer.full"),
        Component("guarantee:get", "guarantee",
                  "users.empty and not buffer.empty"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="buffer_bounds",
            components=("guarantee:put", "guarantee:get"),
            constructs=("guarantee", "automatic_signal",
                        "resource_state_query"),
            directness=Directness.DIRECT,
            info_handling={T5: Directness.DIRECT},
        ),
        ConstraintRealization(
            constraint_id="buffer_mutex",
            components=("crowd:users", "guarantee:put", "guarantee:get"),
            constructs=("crowd", "guarantee"),
            directness=Directness.DIRECT,
            info_handling={T4: Directness.DIRECT},
        ),
    ),
    modularity=ModularityProfile(True, True, True),
)

OPEN_PATH_BOUNDED_BUFFER_DESCRIPTION = SolutionDescription(
    problem="bounded_buffer",
    mechanism="pathexpr_open",
    components=(
        Component("path:1", "path", "path N : ( put ; get ) end"),
        Component("path:2", "path", "path put , get end"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="buffer_bounds",
            components=("path:1",),
            constructs=("numeric_operator", "sequence"),
            directness=Directness.INDIRECT,
            info_handling={T5: Directness.INDIRECT, T6: Directness.DIRECT},
            notes="base paths cannot see local state (§5.1.2); the numeric "
            "operator expresses the bound through history (N cycles in "
            "flight) — the §3 state/history interchangeability",
        ),
        ConstraintRealization(
            constraint_id="buffer_mutex",
            components=("path:2",),
            constructs=("selection",),
            directness=Directness.DIRECT,
            info_handling={T4: Directness.INDIRECT},
        ),
    ),
    modularity=ModularityProfile(True, False, True),
)
