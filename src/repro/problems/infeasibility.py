"""Negative results: constraints a mechanism *cannot* express.

The methodology treats a failed implementation attempt as data: "If there is
no direct way to use a certain kind of information, it should become obvious
when an attempt is made to implement a solution requiring it" (§4.1).  These
records document the attempts §5.1.2 reports for base path expressions —
parameters (disk scheduler, alarm clock) and local state (bounded buffer)
have no realization without synchronization procedures that reduce the
mechanism to hand-rolled bookkeeping, and the priority operator does not
exist at all.

Each entry is a :class:`SolutionDescription` with UNSUPPORTED realizations
and no verifier; the evaluation engine folds them into the expressive-power
matrix so the paper's "no way to…" findings appear as NONE cells rather
than coverage gaps.
"""

from __future__ import annotations

from ..core import (
    ConstraintRealization,
    Directness,
    InformationType,
    ModularityProfile,
    SolutionDescription,
)

T3 = InformationType.PARAMETERS
T5 = InformationType.LOCAL_STATE

_NO_MODULARITY_CLAIM = ModularityProfile(
    synchronization_with_resource=True,
    resource_separable=False,
    enforced_by_mechanism=True,
    notes="no solution exists; modularity judged on the attempt",
)

PATH_BOUNDED_BUFFER_INFEASIBLE = SolutionDescription(
    problem="bounded_buffer",
    mechanism="pathexpr",
    components=(),
    realizations=(
        ConstraintRealization(
            constraint_id="buffer_bounds",
            components=(),
            constructs=(),
            directness=Directness.UNSUPPORTED,
            info_handling={T5: Directness.UNSUPPORTED},
            notes="base paths cannot reference the item count: 'nor is "
            "local resource state information available' (§5.1.2); the "
            "capacity bound needs the Flon-Habermann numeric operator "
            "(see the pathexpr_open solution)",
        ),
    ),
    modularity=_NO_MODULARITY_CLAIM,
    notes="negative result recorded per §4.1",
)

PATH_DISK_SCHEDULER_INFEASIBLE = SolutionDescription(
    problem="disk_scheduler",
    mechanism="pathexpr",
    components=(),
    realizations=(
        ConstraintRealization(
            constraint_id="elevator_order",
            components=(),
            constructs=(),
            directness=Directness.UNSUPPORTED,
            info_handling={T3: Directness.UNSUPPORTED},
            notes="'There is obviously no way to use parameter values in "
            "paths' (§5.1.2): the track number cannot influence any path",
        ),
    ),
    modularity=_NO_MODULARITY_CLAIM,
    notes="negative result recorded per §4.1",
)

PATH_ALARM_CLOCK_INFEASIBLE = SolutionDescription(
    problem="alarm_clock",
    mechanism="pathexpr",
    components=(),
    realizations=(
        ConstraintRealization(
            constraint_id="deadline_order",
            components=(),
            constructs=(),
            directness=Directness.UNSUPPORTED,
            info_handling={T3: Directness.UNSUPPORTED},
            notes="the wake-up delay is a request parameter; base paths "
            "cannot see it — the alarmclock gate procedures of [11] are "
            "already outside the mechanism (§5.1.2)",
        ),
    ),
    modularity=_NO_MODULARITY_CLAIM,
    notes="negative result recorded per §4.1",
)

#: All negative records, for the evaluation engine.  The eventcount record
#: lives with its positive siblings in ``eventcount_impls``.
def _eventcount_record():
    from .eventcount_impls import EVENTCOUNT_RW_INFEASIBLE
    return EVENTCOUNT_RW_INFEASIBLE


INFEASIBILITY_RECORDS = (
    PATH_BOUNDED_BUFFER_INFEASIBLE,
    PATH_DISK_SCHEDULER_INFEASIBLE,
    PATH_ALARM_CLOCK_INFEASIBLE,
    _eventcount_record(),
)
