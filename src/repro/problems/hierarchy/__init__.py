"""Hierarchically structured resources (§5.2 nested-monitor-call study)."""

from .scenarios import (
    run_layered_protected,
    run_nested_monitors,
    run_serializer_nested,
)

__all__ = [
    "run_layered_protected",
    "run_nested_monitors",
    "run_serializer_nested",
]
