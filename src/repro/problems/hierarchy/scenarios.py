"""Hierarchically structured resources — the nested-monitor-call problem.

§5.2 of the paper: "The nested monitor call problem results when an
operation in one monitor is always invoked from an operation within another
monitor.  If the second monitor waits, a deadlock will result because the
second monitor is released by the wait, but the calling monitor is not."

Three runnable scenarios over the same two-level structure (an outer
directory object wrapping an inner one-slot channel):

* :func:`run_nested_monitors` — inner wait inside outer monitor: the
  producer can never enter the outer monitor to signal → **deadlock**.
* :func:`run_layered_protected` — the §2 protected-resource structure:
  "the monitor is released before the resource operation is invoked...
  Therefore, no deadlock will result."
* :func:`run_serializer_nested` — serializers: ``join_crowd`` releases
  possession around the inner access, so nesting is safe by construction.

Each returns the :class:`RunResult`; experiment E7 asserts the deadlock
pattern (first deadlocks, other two complete).
"""

from __future__ import annotations

from typing import List

from ...mechanisms.monitor import Monitor
from ...mechanisms.serializer import Serializer
from ...runtime.scheduler import Scheduler
from ...runtime.trace import RunResult


class _InnerChannelMonitor:
    """A one-slot channel protected by its own (inner) monitor."""

    def __init__(self, sched: Scheduler, name: str = "inner") -> None:
        self._sched = sched
        self.mon = Monitor(sched, name + ".mon")
        self.nonempty = self.mon.condition("nonempty")
        self._value = None
        self._full = False

    def put(self, value):
        yield from self.mon.enter()
        self._value = value
        self._full = True
        yield from self.nonempty.signal()
        self.mon.exit()

    def get(self):
        yield from self.mon.enter()
        while not self._full:
            yield from self.nonempty.wait()  # releases INNER monitor only
        value = self._value
        self._full = False
        self.mon.exit()
        return value


def run_nested_monitors(consumers: int = 1) -> RunResult:
    """The deadlock shape: outer monitor ops call inner monitor ops.

    The consumer holds the outer monitor while waiting inside the inner one;
    the producer blocks at outer entry; nobody can ever signal.
    """
    sched = Scheduler()
    inner = _InnerChannelMonitor(sched)
    outer = Monitor(sched, "outer.mon")

    def outer_get():
        yield from outer.enter()
        value = yield from inner.get()  # called while HOLDING outer
        outer.exit()
        return value

    def outer_put(value):
        yield from outer.enter()
        yield from inner.put(value)
        outer.exit()

    def consumer():
        value = yield from outer_get()
        return value

    def producer():
        yield  # let the consumer get stuck first
        yield from outer_put(42)

    for c in range(consumers):
        sched.spawn(consumer, name="consumer{}".format(c))
    sched.spawn(producer, name="producer")
    return sched.run(on_deadlock="return")


def run_layered_protected() -> RunResult:
    """The §2 fix: the outer monitor only performs the *admission* decision
    and is exited before the inner (resource) operation is invoked."""
    sched = Scheduler()
    inner = _InnerChannelMonitor(sched)
    outer = Monitor(sched, "outer.mon")
    state = {"gets": 0, "puts": 0}
    received: List[int] = []

    def outer_get():
        yield from outer.enter()
        state["gets"] += 1  # bookkeeping under the outer monitor
        outer.exit()  # RELEASED before the lower-level call
        value = yield from inner.get()
        return value

    def outer_put(value):
        yield from outer.enter()
        state["puts"] += 1
        outer.exit()
        yield from inner.put(value)

    def consumer():
        value = yield from outer_get()
        received.append(value)

    def producer():
        yield
        yield from outer_put(42)

    sched.spawn(consumer, name="consumer")
    sched.spawn(producer, name="producer")
    result = sched.run(on_deadlock="return")
    result.results["received"] = received
    return result


def run_serializer_nested() -> RunResult:
    """Serializer outer layer: join_crowd releases possession around the
    inner access, so the producer can pass through the outer serializer
    while the consumer is blocked inside the inner resource."""
    sched = Scheduler()
    inner = _InnerChannelMonitor(sched)
    outer = Serializer(sched, "outer.ser")
    users = outer.crowd("users")
    received: List[int] = []

    def outer_get():
        yield from outer.enter()
        yield from outer.join_crowd(users)  # possession released here
        value = yield from inner.get()
        yield from outer.leave_crowd(users)
        outer.exit()
        return value

    def outer_put(value):
        yield from outer.enter()
        yield from outer.join_crowd(users)
        yield from inner.put(value)
        yield from outer.leave_crowd(users)
        outer.exit()

    def consumer():
        value = yield from outer_get()
        received.append(value)

    def producer():
        yield
        yield from outer_put(42)

    sched.spawn(consumer, name="consumer")
    sched.spawn(producer, name="producer")
    result = sched.run(on_deadlock="return")
    result.results["received"] = received
    return result
