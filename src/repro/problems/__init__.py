"""The test-problem suite (S8): one subpackage per catalog problem, each
implemented under every mechanism that can express it.

See :mod:`repro.problems.registry` for the complete solution index used by
the evaluation engine and the benchmarks.
"""
