"""Alarm clock solutions — the second request-parameters (T3) problem.

Hoare's alarm clock ([13]): ``wakeme(n)`` suspends the caller for ``n``
ticks of a clock driven by a ticker process calling ``tick()`` once per unit
of virtual time.  The scheduling decision is parameter-based: wake the
sleeper whose deadline (request time + n) has arrived, earliest first.

Trace conventions for the oracle: ``wakeme`` events (detail = delay) on
request, ``wake`` events at resumption, both with obj = the resource name.
"""

from __future__ import annotations

from typing import Generator, List, Tuple

from ...core import (
    Component,
    ConstraintRealization,
    Directness,
    InformationType,
    ModularityProfile,
    SolutionDescription,
)
from ...mechanisms.monitor import Monitor
from ...mechanisms.pathexpr import GuardedPathResource
from ...mechanisms.serializer import Serializer
from ...runtime.primitives import Semaphore
from ...runtime.scheduler import Scheduler
from ..base import SolutionBase

T3 = InformationType.PARAMETERS


class MonitorAlarmClock(SolutionBase):
    """Hoare's alarm clock: one priority-wait condition ranked by deadline,
    with the cascading wake-up from his paper."""

    problem = "alarm_clock"
    mechanism = "monitor"

    def __init__(self, sched: Scheduler, name: str = "alarm") -> None:
        super().__init__(sched, name)
        self.mon = Monitor(sched, name + ".mon")
        self.wakeup = self.mon.condition("wakeup")
        self._now = 0

    @property
    def now(self) -> int:
        """The alarm clock's own tick counter."""
        return self._now

    def wakeme(self, n: int) -> Generator:
        """Sleep for ``n`` ticks."""
        self._sched.log("wakeme", self.name, n)
        yield from self.mon.enter()
        alarm_setting = self._now + n
        while self._now < alarm_setting:
            yield from self.wakeup.wait(priority=alarm_setting)
        # Cascade: wake the next sleeper so it can re-check its own setting.
        yield from self.wakeup.signal()
        self.mon.exit()
        self._sched.log("wake", self.name)

    def tick(self) -> Generator:
        """Advance the clock one unit and start the wake-up cascade."""
        yield from self.mon.enter()
        self._now += 1
        yield from self.wakeup.signal()
        self.mon.exit()


class SerializerAlarmClock(SolutionBase):
    """Serializer alarm clock: a priority queue ranked by deadline with a
    guarantee on the clock — the later-version extensions at work."""

    problem = "alarm_clock"
    mechanism = "serializer"

    def __init__(self, sched: Scheduler, name: str = "alarm") -> None:
        super().__init__(sched, name)
        self.ser = Serializer(sched, name + ".ser")
        self.sleepers = self.ser.priority_queue("sleepers")
        self._now = 0

    @property
    def now(self) -> int:
        """The alarm clock's own tick counter."""
        return self._now

    def wakeme(self, n: int) -> Generator:
        """Sleep for ``n`` ticks."""
        self._sched.log("wakeme", self.name, n)
        yield from self.ser.enter()
        deadline = self._now + n
        yield from self.ser.enqueue(
            self.sleepers,
            lambda: self._now >= deadline,
            priority=deadline,
        )
        self.ser.exit()
        self._sched.log("wake", self.name)

    def tick(self) -> Generator:
        """Advance the clock one unit; guarantees re-evaluate on exit."""
        yield from self.ser.enter()
        self._now += 1
        self.ser.exit()


class OpenPathAlarmClock(SolutionBase):
    """Guarded paths: the deadline comparison is an Andler predicate over a
    state variable (the tick counter)."""

    problem = "alarm_clock"
    mechanism = "pathexpr_open"

    def __init__(self, sched: Scheduler, name: str = "alarm") -> None:
        super().__init__(sched, name)
        solution = self

        def tick_body(res) -> Generator:
            res.state["now"] = res.state.get("now", 0) + 1
            return
            yield  # pragma: no cover - generator marker

        self.paths = GuardedPathResource(
            sched,
            "path tick end",
            operations={"tick": tick_body},
            guards={
                "wakeme": lambda r, args: r.state.get("now", 0) >= args[0],
            },
            name=name + ".paths",
        )
        # wakeme is not path-constrained, only guarded; give it a no-op body.
        self.paths.define("wakeme", lambda res, deadline: None)

    @property
    def now(self) -> int:
        """The alarm clock's own tick counter."""
        return self.paths.state.get("now", 0)

    def wakeme(self, n: int) -> Generator:
        """Sleep for ``n`` ticks."""
        self._sched.log("wakeme", self.name, n)
        deadline = self.now + n
        yield from self.paths.invoke("wakeme", deadline)
        self._sched.log("wake", self.name)

    def tick(self) -> Generator:
        """Advance the clock one unit; guards re-evaluate automatically."""
        yield from self.paths.invoke("tick")


class SemaphoreAlarmClock(SolutionBase):
    """Private-semaphore baseline: the ticker V's every due sleeper."""

    problem = "alarm_clock"
    mechanism = "semaphore"

    def __init__(self, sched: Scheduler, name: str = "alarm") -> None:
        super().__init__(sched, name)
        self._now = 0
        self._mutex = Semaphore(sched, 1, name + ".mutex")
        self._sleepers: List[Tuple[int, Semaphore]] = []

    @property
    def now(self) -> int:
        """The alarm clock's own tick counter."""
        return self._now

    def wakeme(self, n: int) -> Generator:
        """Sleep for ``n`` ticks."""
        self._sched.log("wakeme", self.name, n)
        yield from self._mutex.p()
        deadline = self._now + n
        private = Semaphore(self._sched, 0, "{}.p{}".format(self.name, deadline))
        self._sleepers.append((deadline, private))
        self._mutex.v()
        if n > 0:
            yield from private.p()
        self._sched.log("wake", self.name)

    def tick(self) -> Generator:
        """Advance the clock one unit and release every due sleeper."""
        yield from self._mutex.p()
        self._now += 1
        due = [s for s in self._sleepers if s[0] <= self._now]
        self._sleepers = [s for s in self._sleepers if s[0] > self._now]
        for __, private in due:
            private.v()
        self._mutex.v()


# ----------------------------------------------------------------------
# Descriptions
# ----------------------------------------------------------------------
MONITOR_ALARM_DESCRIPTION = SolutionDescription(
    problem="alarm_clock",
    mechanism="monitor",
    components=(
        Component("var:now", "variable", "tick counter"),
        Component("cond:wakeup", "priority_queue",
                  "priority wait ranked by alarmsetting"),
        Component("proc:wakeme", "procedure",
                  "while now < alarmsetting do wakeup.wait(alarmsetting); "
                  "wakeup.signal"),
        Component("proc:tick", "procedure", "now+1; wakeup.signal"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="deadline_order",
            components=("cond:wakeup", "var:now", "proc:wakeme", "proc:tick"),
            constructs=("priority_wait", "cascade_signal"),
            directness=Directness.DIRECT,
            info_handling={T3: Directness.DIRECT},
        ),
    ),
    modularity=ModularityProfile(True, True, False),
)

SERIALIZER_ALARM_DESCRIPTION = SolutionDescription(
    problem="alarm_clock",
    mechanism="serializer",
    components=(
        Component("var:now", "variable", "tick counter"),
        Component("queue:sleepers", "priority_queue",
                  "ranked by deadline (extension)"),
        Component("guarantee:wakeme", "guarantee", "now >= deadline"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="deadline_order",
            components=("queue:sleepers", "guarantee:wakeme", "var:now"),
            constructs=("priority_queue", "guarantee", "local_variables"),
            directness=Directness.INDIRECT,
            info_handling={T3: Directness.INDIRECT},
            notes="needs the priority queues and local variables that 'had "
            "to be added later' (§5.2) — absent from the first version",
        ),
    ),
    modularity=ModularityProfile(True, True, True),
)

OPEN_PATH_ALARM_DESCRIPTION = SolutionDescription(
    problem="alarm_clock",
    mechanism="pathexpr_open",
    components=(
        Component("path:1", "path", "path tick end"),
        Component("var:now", "variable", "state variable"),
        Component("guard:wakeme", "guard", "now >= deadline"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="deadline_order",
            components=("guard:wakeme", "var:now"),
            constructs=("predicate", "state_variables"),
            directness=Directness.INDIRECT,
            info_handling={T3: Directness.INDIRECT},
            notes="the alarmclock example 'is another case in which "
            "synchronization procedures are used as gates' (§5.1.2) — here "
            "lifted to Andler predicates",
        ),
    ),
    modularity=ModularityProfile(True, False, True),
)

SEMAPHORE_ALARM_DESCRIPTION = SolutionDescription(
    problem="alarm_clock",
    mechanism="semaphore",
    components=(
        Component("sem:mutex", "semaphore"),
        Component("var:sleepers", "variable",
                  "(deadline, private semaphore) list"),
        Component("proc:tick", "procedure", "V every due private semaphore"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="deadline_order",
            components=("sem:mutex", "var:sleepers", "proc:tick"),
            constructs=("private_semaphore", "hand_scheduler"),
            directness=Directness.INDIRECT,
            info_handling={T3: Directness.INDIRECT},
            notes="the private-semaphore pattern: the user writes the whole "
            "scheduler by hand",
        ),
    ),
    modularity=ModularityProfile(False, False, False),
)
