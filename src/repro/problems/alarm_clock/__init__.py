"""Alarm clock (footnote 2: a request-parameters problem, [13])."""

from typing import Callable, List, Sequence

from ...runtime.errors import ProcessFailed
from ...runtime.scheduler import Scheduler
from ...verify import check_alarm_wakeups
from .impls import (
    MONITOR_ALARM_DESCRIPTION,
    MonitorAlarmClock,
    OPEN_PATH_ALARM_DESCRIPTION,
    OpenPathAlarmClock,
    SEMAPHORE_ALARM_DESCRIPTION,
    SemaphoreAlarmClock,
    SERIALIZER_ALARM_DESCRIPTION,
    SerializerAlarmClock,
)

#: Delays the sleepers request, in spawn order — deliberately NOT sorted so
#: wake order must come from the parameter, not arrival.
DEFAULT_DELAYS = (5, 2, 9, 2, 7, 1, 4)


def run_sleepers(factory, delays: Sequence[int] = DEFAULT_DELAYS,
                 policy=None, sched=None):
    """Spawn one sleeper per delay plus the ticker; returns (result, wakes).

    The ticker ticks once per unit of virtual time until every sleeper's
    deadline has passed.  Wake order is recorded for assertions.  ``sched``
    injects a pre-built (e.g. instrumented) scheduler.
    """
    if sched is None:
        sched = Scheduler(policy=policy)
    impl = factory(sched)
    wakes: List[int] = []
    horizon = max(delays) + 1

    def sleeper(n: int):
        def body():
            yield from impl.wakeme(n)
            wakes.append(n)
        return body

    def ticker():
        for __ in range(horizon):
            yield from sched.sleep(1)
            yield from impl.tick()

    for n in delays:
        sched.spawn(sleeper(n), name="S{}".format(n))
    sched.spawn(ticker, name="ticker")
    result = sched.run(on_deadlock="return")
    return result, wakes


def make_verifier(factory, name: str = "alarm") -> Callable[[], List[str]]:
    """Oracle battery: every sleeper wakes exactly at its deadline."""

    def verify() -> List[str]:
        violations: List[str] = []
        for label, delays in (
            ("default", DEFAULT_DELAYS),
            ("reverse", tuple(sorted(DEFAULT_DELAYS, reverse=True))),
            ("duplicates", (3, 3, 1, 5, 1)),
        ):
            try:
                result, wakes = run_sleepers(factory, delays)
            except ProcessFailed as failure:
                violations.append("{}: {}".format(label, failure))
                continue
            for msg in check_alarm_wakeups(result.trace, name):
                violations.append("{}: {}".format(label, msg))
            if result.deadlocked:
                violations.append("{}: deadlock".format(label))
            if wakes != sorted(wakes):
                violations.append(
                    "{}: wake order {} not by deadline".format(label, wakes)
                )
        return violations

    return verify


__all__ = [
    "DEFAULT_DELAYS",
    "MONITOR_ALARM_DESCRIPTION",
    "MonitorAlarmClock",
    "OPEN_PATH_ALARM_DESCRIPTION",
    "OpenPathAlarmClock",
    "SEMAPHORE_ALARM_DESCRIPTION",
    "SemaphoreAlarmClock",
    "SERIALIZER_ALARM_DESCRIPTION",
    "SerializerAlarmClock",
    "make_verifier",
    "run_sleepers",
]

from .ext_impls import (
    CCR_ALARM_DESCRIPTION,
    CSP_ALARM_DESCRIPTION,
    CcrAlarmClock,
    CspAlarmClock,
)

__all__ += [
    "CCR_ALARM_DESCRIPTION",
    "CSP_ALARM_DESCRIPTION",
    "CcrAlarmClock",
    "CspAlarmClock",
]
