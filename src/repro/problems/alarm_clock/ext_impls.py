"""Alarm clock under the §6 extension mechanisms (experiment E11).

* CSP: the deadline travels in the ``wakeme`` message; the server keeps a
  sorted sleeper list and replies to everything due after each tick.
* CCR: the canonical guard ``when now >= deadline`` over a shared tick
  counter — each sleeper's parameter lives in its own guard closure.
"""

from __future__ import annotations

from typing import Generator, List, Tuple

from ...core import (
    Component,
    ConstraintRealization,
    Directness,
    InformationType,
    ModularityProfile,
    SolutionDescription,
)
from ...mechanisms.ccr import SharedRegion
from ...mechanisms.channels import Channel, ReceiveOp, select
from ...runtime.scheduler import Scheduler
from ..base import SolutionBase

T3 = InformationType.PARAMETERS


class CspAlarmClock(SolutionBase):
    """Sleepers send (deadline, reply); the ticker sends ticks; the server
    releases every due sleeper after each tick."""

    problem = "alarm_clock"
    mechanism = "csp"

    def __init__(self, sched: Scheduler, name: str = "alarm") -> None:
        super().__init__(sched, name)
        self.ch_wakeme = Channel(sched, name + ".wakeme")
        self.ch_tick = Channel(sched, name + ".tick")
        self._now = 0
        sched.spawn(self._server, name=name + ".server", daemon=True)

    @property
    def now(self) -> int:
        """The alarm clock's own tick counter."""
        return self._now

    def _server(self) -> Generator:
        sleepers: List[Tuple[int, Channel]] = []
        while True:
            index, msg = yield from select(self._sched, [
                ReceiveOp(self.ch_wakeme),
                ReceiveOp(self.ch_tick),
            ])
            if index == 0:
                deadline, reply = msg
                if deadline <= self._now:
                    yield from reply.send(None)
                else:
                    sleepers.append((deadline, reply))
                    sleepers.sort(key=lambda item: item[0])
            else:
                self._now += 1
                while sleepers and sleepers[0][0] <= self._now:
                    __, reply = sleepers.pop(0)
                    yield from reply.send(None)

    def wakeme(self, n: int) -> Generator:
        """Sleep for ``n`` ticks."""
        self._sched.log("wakeme", self.name, n)
        reply = Channel(self._sched, self.name + ".reply")
        yield from self.ch_wakeme.send((self._now + n, reply))
        yield from reply.receive()
        self._sched.log("wake", self.name)

    def tick(self) -> Generator:
        """Advance the clock one unit."""
        yield from self.ch_tick.send(None)


class CcrAlarmClock(SolutionBase):
    """``region v when now >= deadline`` — the guard carries the parameter."""

    problem = "alarm_clock"
    mechanism = "ccr"

    def __init__(self, sched: Scheduler, name: str = "alarm") -> None:
        super().__init__(sched, name)
        self.cell = SharedRegion(sched, {"now": 0}, name=name + ".v")

    @property
    def now(self) -> int:
        """The alarm clock's own tick counter."""
        return self.cell.vars["now"]

    def wakeme(self, n: int) -> Generator:
        """Sleep for ``n`` ticks."""
        self._sched.log("wakeme", self.name, n)
        deadline = self.now + n
        yield from self.cell.enter(lambda v: v["now"] >= deadline)
        self.cell.leave()
        self._sched.log("wake", self.name)

    def tick(self) -> Generator:
        """Advance the clock one unit; guards re-evaluate on leave."""
        yield from self.cell.enter()
        self.cell.vars["now"] += 1
        self.cell.leave()


CSP_ALARM_DESCRIPTION = SolutionDescription(
    problem="alarm_clock",
    mechanism="csp",
    components=(
        Component("chan:wakeme", "queue", "(deadline, reply) messages"),
        Component("chan:tick", "queue"),
        Component("var:sleepers", "variable", "server-local sorted list"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="deadline_order",
            components=("chan:wakeme", "chan:tick", "var:sleepers"),
            constructs=("message_payload", "server_process"),
            directness=Directness.DIRECT,
            info_handling={T3: Directness.DIRECT},
        ),
    ),
    modularity=ModularityProfile(True, False, True),
)

CCR_ALARM_DESCRIPTION = SolutionDescription(
    problem="alarm_clock",
    mechanism="ccr",
    components=(
        Component("var:now", "variable", "shared tick counter"),
        Component("guard:deadline", "guard", "when now >= deadline"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="deadline_order",
            components=("var:now", "guard:deadline"),
            constructs=("region_guard",),
            directness=Directness.INDIRECT,
            info_handling={T3: Directness.INDIRECT},
            notes="the parameter reaches the guard only via closure over a "
            "pre-computed deadline; the construct itself has no parameter "
            "access",
        ),
    ),
    modularity=ModularityProfile(False, True, False),
)
