"""First-come-first-served resource — the suite's request-time (T2) problem.

A single resource granted in strict arrival order.  Each mechanism exposes
``use(work)``: acquire, hold for ``work`` steps, release.

The path-expression solution is the clearest beneficiary of the paper's
added assumption that "the selection operator always chooses the process
that has been waiting longest" (§5.1): ``path use end`` is FCFS *only*
because the underlying semaphore wakes FIFO — experiment E9 ablates exactly
this by switching the wake policy.
"""

from __future__ import annotations

from typing import Generator

from ...core import (
    Component,
    ConstraintRealization,
    Directness,
    InformationType,
    ModularityProfile,
    SolutionDescription,
)
from ...mechanisms.monitor import Monitor
from ...mechanisms.pathexpr import PathResource
from ...mechanisms.serializer import Serializer
from ...runtime.primitives import Semaphore
from ...runtime.scheduler import Scheduler
from ..base import SolutionBase

T2 = InformationType.REQUEST_TIME
T4 = InformationType.SYNC_STATE


class SemaphoreFcfsResource(SolutionBase):
    """A single FIFO semaphore: the baseline, FCFS by queue discipline."""

    problem = "fcfs_resource"
    mechanism = "semaphore"

    def __init__(self, sched: Scheduler, name: str = "res",
                 wake_policy: str = "fifo", seed: int = 0) -> None:
        super().__init__(sched, name)
        self._sem = Semaphore(sched, 1, name + ".sem",
                              wake_policy=wake_policy, seed=seed)

    def use(self, work: int = 1) -> Generator:
        """Acquire, hold for ``work`` steps, release."""
        self._request("use")
        yield from self._sem.p()
        self._start("use")
        yield from self._work(work)
        self._finish("use")
        self._sem.v()


class MonitorFcfsResource(SolutionBase):
    """FIFO condition queue: arrival order is the queue order."""

    problem = "fcfs_resource"
    mechanism = "monitor"

    def __init__(self, sched: Scheduler, name: str = "res") -> None:
        super().__init__(sched, name)
        self.mon = Monitor(sched, name + ".mon")
        self.turn = self.mon.condition("turn")
        self._busy = False

    def use(self, work: int = 1) -> Generator:
        """Acquire, hold for ``work`` steps, release."""
        self._request("use")
        yield from self.mon.enter()
        if self._busy or self.turn.queue:
            yield from self.turn.wait()
        self._busy = True
        self.mon.exit()
        self._start("use")
        yield from self._work(work)
        self._finish("use")
        yield from self.mon.enter()
        self._busy = False
        yield from self.turn.signal()
        self.mon.exit()


class SerializerFcfsResource(SolutionBase):
    """One queue, one crowd: the queue IS the arrival order."""

    problem = "fcfs_resource"
    mechanism = "serializer"

    def __init__(self, sched: Scheduler, name: str = "res") -> None:
        super().__init__(sched, name)
        self.ser = Serializer(sched, name + ".ser")
        self.q = self.ser.queue("q")
        self.users = self.ser.crowd("users")

    def use(self, work: int = 1) -> Generator:
        """Acquire, hold for ``work`` steps, release."""
        self._request("use")
        yield from self.ser.enter()
        yield from self.ser.enqueue(self.q, lambda: self.users.empty)
        yield from self.ser.join_crowd(self.users)
        self._start("use")
        yield from self._work(work)
        self._finish("use")
        yield from self.ser.leave_crowd(self.users)
        self.ser.exit()


class PathFcfsResource(SolutionBase):
    """``path use end`` — FCFS by the longest-waiting selection assumption."""

    problem = "fcfs_resource"
    mechanism = "pathexpr"

    def __init__(self, sched: Scheduler, name: str = "res",
                 wake_policy: str = "fifo", seed: int = 0) -> None:
        super().__init__(sched, name)
        solution = self

        def use_body(res, work: int) -> Generator:
            solution._start("use")
            yield from solution._work(work)
            solution._finish("use")

        self.paths = PathResource(
            sched,
            "path use end",
            operations={"use": use_body},
            name=name + ".paths",
            wake_policy=wake_policy,
            seed=seed,
        )

    def use(self, work: int = 1) -> Generator:
        """Acquire, hold for ``work`` steps, release."""
        self._request("use")
        yield from self.paths.invoke("use", work)


# ----------------------------------------------------------------------
# Descriptions
# ----------------------------------------------------------------------
SEMAPHORE_FCFS_DESCRIPTION = SolutionDescription(
    problem="fcfs_resource",
    mechanism="semaphore",
    components=(
        Component("sem:res", "semaphore", "init 1, FIFO queue"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="resource_mutex",
            components=("sem:res",),
            constructs=("semaphore",),
            directness=Directness.DIRECT,
            info_handling={T4: Directness.INDIRECT},
        ),
        ConstraintRealization(
            constraint_id="arrival_order",
            components=("sem:res",),
            constructs=("fifo_queue",),
            directness=Directness.INDIRECT,
            info_handling={T2: Directness.INDIRECT},
            notes="FCFS holds only if the semaphore's own queue is FIFO — "
            "an implementation property, not an expressed constraint",
        ),
    ),
    modularity=ModularityProfile(False, False, False),
)

MONITOR_FCFS_DESCRIPTION = SolutionDescription(
    problem="fcfs_resource",
    mechanism="monitor",
    components=(
        Component("var:busy", "variable"),
        Component("cond:turn", "condition", "FIFO wait queue"),
        Component("proc:acquire", "procedure",
                  "if busy or turn.queue then turn.wait; busy:=true"),
        Component("proc:release", "procedure",
                  "busy:=false; turn.signal"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="resource_mutex",
            components=("var:busy", "proc:acquire", "proc:release"),
            constructs=("monitor_mutex", "local_data"),
            directness=Directness.DIRECT,
            info_handling={T4: Directness.INDIRECT},
        ),
        ConstraintRealization(
            constraint_id="arrival_order",
            components=("cond:turn", "proc:acquire"),
            constructs=("condition_queue",),
            directness=Directness.DIRECT,
            info_handling={T2: Directness.DIRECT},
            notes="condition queues are the monitor's construct for request "
            "time (§5.2)",
        ),
    ),
    modularity=ModularityProfile(True, True, False),
)

SERIALIZER_FCFS_DESCRIPTION = SolutionDescription(
    problem="fcfs_resource",
    mechanism="serializer",
    components=(
        Component("queue:q", "queue"),
        Component("crowd:users", "crowd"),
        Component("guarantee:use", "guarantee", "users.empty"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="resource_mutex",
            components=("crowd:users", "guarantee:use"),
            constructs=("crowd", "guarantee"),
            directness=Directness.DIRECT,
            info_handling={T4: Directness.DIRECT},
        ),
        ConstraintRealization(
            constraint_id="arrival_order",
            components=("queue:q",),
            constructs=("queue_order", "automatic_signal"),
            directness=Directness.DIRECT,
            info_handling={T2: Directness.DIRECT},
        ),
    ),
    modularity=ModularityProfile(True, True, True),
)

PATH_FCFS_DESCRIPTION = SolutionDescription(
    problem="fcfs_resource",
    mechanism="pathexpr",
    components=(
        Component("path:1", "path", "path use end"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="resource_mutex",
            components=("path:1",),
            constructs=("sequence",),
            directness=Directness.DIRECT,
            info_handling={T4: Directness.INDIRECT},
        ),
        ConstraintRealization(
            constraint_id="arrival_order",
            components=("path:1",),
            constructs=("fifo_selection",),
            directness=Directness.INDIRECT,
            info_handling={T2: Directness.INDIRECT},
            notes="depends entirely on the §5.1 longest-waiting assumption; "
            "breaks under LIFO/random wake policies (ablation E9)",
        ),
    ),
    modularity=ModularityProfile(True, True, True),
)
