"""FCFS resource under the §6 extension mechanisms (experiment E11).

The contrast the methodology surfaces:

* CSP gets arrival order *for free* — the request channel's sender queue is
  the FCFS queue (T2 direct, like serializer queues);
* CCR guards cannot see time at all — FCFS needs the hand-rolled ticket
  protocol (T2 indirect, the same verdict as base path expressions).
"""

from __future__ import annotations

from typing import Generator

from ...core import (
    Component,
    ConstraintRealization,
    Directness,
    InformationType,
    ModularityProfile,
    SolutionDescription,
)
from ...mechanisms.ccr import SharedRegion
from ...mechanisms.channels import Channel
from ...runtime.scheduler import Scheduler
from ..base import SolutionBase

T2 = InformationType.REQUEST_TIME
T4 = InformationType.SYNC_STATE


class CspFcfsResource(SolutionBase):
    """Grant loop: take next request (channel FIFO), reply, await done."""

    problem = "fcfs_resource"
    mechanism = "csp"

    def __init__(self, sched: Scheduler, name: str = "res") -> None:
        super().__init__(sched, name)
        self.ch_request = Channel(sched, name + ".request")
        self.ch_done = Channel(sched, name + ".done")
        sched.spawn(self._server, name=name + ".server", daemon=True)

    def _server(self) -> Generator:
        while True:
            reply = yield from self.ch_request.receive()
            yield from reply.send(None)
            yield from self.ch_done.receive()

    def use(self, work: int = 1) -> Generator:
        """Acquire, hold for ``work`` steps, release."""
        self._request("use")
        reply = Channel(self._sched, self.name + ".reply")
        yield from self.ch_request.send(reply)
        yield from reply.receive()
        self._start("use")
        yield from self._work(work)
        self._finish("use")
        yield from self.ch_done.send(None)


class CcrFcfsResource(SolutionBase):
    """Ticket dispenser: guards cannot reference arrival order, so order is
    reified into shared variables by hand."""

    problem = "fcfs_resource"
    mechanism = "ccr"

    def __init__(self, sched: Scheduler, name: str = "res") -> None:
        super().__init__(sched, name)
        self.cell = SharedRegion(
            sched, {"next_ticket": 0, "turn": 0, "busy": False},
            name=name + ".v",
        )

    def use(self, work: int = 1) -> Generator:
        """Acquire, hold for ``work`` steps, release."""
        self._request("use")
        cell = self.cell
        yield from cell.enter()
        ticket = cell.vars["next_ticket"]
        cell.vars["next_ticket"] += 1
        cell.leave()
        yield from cell.enter(
            lambda v: v["turn"] == ticket and not v["busy"]
        )
        cell.vars["busy"] = True
        cell.leave()
        self._start("use")
        yield from self._work(work)
        self._finish("use")
        yield from cell.enter()
        cell.vars["busy"] = False
        cell.vars["turn"] += 1
        cell.leave()


CSP_FCFS_DESCRIPTION = SolutionDescription(
    problem="fcfs_resource",
    mechanism="csp",
    components=(
        Component("chan:request", "queue", "FIFO sender queue = arrivals"),
        Component("chan:done", "queue"),
        Component("proc:grant_loop", "procedure",
                  "receive request; reply; await done"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="resource_mutex",
            components=("proc:grant_loop", "chan:done"),
            constructs=("server_process",),
            directness=Directness.DIRECT,
            info_handling={T4: Directness.DIRECT},
        ),
        ConstraintRealization(
            constraint_id="arrival_order",
            components=("chan:request",),
            constructs=("channel_fifo",),
            directness=Directness.DIRECT,
            info_handling={T2: Directness.DIRECT},
            notes="the channel queue IS the FCFS queue",
        ),
    ),
    modularity=ModularityProfile(True, False, True),
)

CCR_FCFS_DESCRIPTION = SolutionDescription(
    problem="fcfs_resource",
    mechanism="ccr",
    components=(
        Component("var:tickets", "variable", "next_ticket / turn"),
        Component("var:busy", "variable"),
        Component("guard:turn", "guard",
                  "region when turn = my ticket and not busy"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="resource_mutex",
            components=("var:busy", "guard:turn"),
            constructs=("region_guard",),
            directness=Directness.DIRECT,
            info_handling={T4: Directness.INDIRECT},
        ),
        ConstraintRealization(
            constraint_id="arrival_order",
            components=("var:tickets", "guard:turn"),
            constructs=("ticket_protocol", "region_guard"),
            directness=Directness.INDIRECT,
            info_handling={T2: Directness.INDIRECT},
            notes="guards cannot see request time; the ticket protocol "
            "reconstructs it — the same indirectness class as base paths",
        ),
    ),
    modularity=ModularityProfile(False, True, False),
)
