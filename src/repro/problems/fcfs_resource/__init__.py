"""First-come-first-served resource (footnote 2: the request-time problem)."""

from typing import Callable, List

from ...runtime.errors import ProcessFailed
from ...runtime.scheduler import Scheduler
from ...verify import check_fcfs, check_single_occupancy
from .impls import (
    MONITOR_FCFS_DESCRIPTION,
    MonitorFcfsResource,
    PATH_FCFS_DESCRIPTION,
    PathFcfsResource,
    SEMAPHORE_FCFS_DESCRIPTION,
    SemaphoreFcfsResource,
    SERIALIZER_FCFS_DESCRIPTION,
    SerializerFcfsResource,
)


def run_contenders(factory, contenders: int = 6, rounds: int = 2,
                   policy=None, stagger: bool = True, sched=None):
    """``contenders`` processes each use the resource ``rounds`` times,
    arriving at staggered virtual times so arrival order is unambiguous.
    ``sched`` injects a pre-built (e.g. instrumented) scheduler."""
    if sched is None:
        sched = Scheduler(policy=policy)
    impl = factory(sched)

    def user(index):
        def body():
            if stagger:
                yield from sched.sleep(index)
            for __ in range(rounds):
                yield from impl.use(work=2)
        return body

    for i in range(contenders):
        sched.spawn(user(i), name="U{}".format(i))
    return sched.run(on_deadlock="return")


def make_verifier(factory, name: str = "res") -> Callable[[], List[str]]:
    """Oracle battery: single occupancy + strict FCFS."""

    def verify() -> List[str]:
        violations: List[str] = []
        for label, stagger in (("staggered", True), ("burst", False)):
            try:
                result = run_contenders(factory, stagger=stagger)
            except ProcessFailed as failure:
                violations.append("{}: {}".format(label, failure))
                continue
            for msg in check_single_occupancy(result.trace, name, ["use"]):
                violations.append("{}: {}".format(label, msg))
            for msg in check_fcfs(result.trace, name, ["use"]):
                violations.append("{}: {}".format(label, msg))
            if result.deadlocked:
                violations.append("{}: deadlock".format(label))
        return violations

    return verify


__all__ = [
    "MONITOR_FCFS_DESCRIPTION",
    "MonitorFcfsResource",
    "PATH_FCFS_DESCRIPTION",
    "PathFcfsResource",
    "SEMAPHORE_FCFS_DESCRIPTION",
    "SemaphoreFcfsResource",
    "SERIALIZER_FCFS_DESCRIPTION",
    "SerializerFcfsResource",
    "make_verifier",
    "run_contenders",
]

from .ext_impls import (
    CCR_FCFS_DESCRIPTION,
    CSP_FCFS_DESCRIPTION,
    CcrFcfsResource,
    CspFcfsResource,
)

__all__ += [
    "CCR_FCFS_DESCRIPTION",
    "CSP_FCFS_DESCRIPTION",
    "CcrFcfsResource",
    "CspFcfsResource",
]
