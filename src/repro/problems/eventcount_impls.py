"""Eventcount/sequencer solutions (Reed & Kanodia, SOSP 1979) — E11 family.

The construct's profile under the methodology:

* request time: **direct** — the sequencer IS a request-time capture device
  (the ticket machine gives FCFS in three lines);
* history: **direct** — eventcounts are exactly §3's history information
  ("whether a given event has occurred"), made a first-class object;
* local state: indirect — encoded as differences between counts
  (the Reed–Kanodia bounded buffer: ``in - out`` is the occupancy);
* request type and priority: **no purchase at all** — counts order
  occurrences but cannot distinguish kinds, so the readers/writers priority
  family is out of reach (recorded as an infeasibility, like base paths and
  parameters).
"""

from __future__ import annotations

from typing import Any, Generator, List

from ..core import (
    Component,
    ConstraintRealization,
    Directness,
    InformationType,
    ModularityProfile,
    SolutionDescription,
)
from ..mechanisms.eventcount import EventCount, Sequencer
from ..runtime.scheduler import Scheduler
from .base import SolutionBase

T1 = InformationType.REQUEST_TYPE
T2 = InformationType.REQUEST_TIME
T4 = InformationType.SYNC_STATE
T5 = InformationType.LOCAL_STATE
T6 = InformationType.HISTORY


class EventCountFcfsResource(SolutionBase):
    """The ticket machine: ``t = ticket(); await(t); use; advance()``."""

    problem = "fcfs_resource"
    mechanism = "eventcount"

    def __init__(self, sched: Scheduler, name: str = "res") -> None:
        super().__init__(sched, name)
        self.seq = Sequencer(sched, name + ".seq")
        self.done = EventCount(sched, name + ".done")

    def use(self, work: int = 1) -> Generator:
        """Acquire, hold for ``work`` steps, release."""
        self._request("use")
        ticket = self.seq.ticket()
        yield from self.done.await_(ticket)
        self._start("use")
        yield from self._work(work)
        self._finish("use")
        self.done.advance()


class EventCountBoundedBuffer(SolutionBase):
    """Reed & Kanodia's own bounded buffer: occupancy is ``in - out``.

    Two producer-side sequencers serialize same-role contenders (their
    multi-producer generalization); eventcounts carry the data hand-off.
    The buffer cells live in a plain list indexed by ticket modulo capacity,
    so the *local state* constraint is realized purely through history
    counts — §3's interchangeability driven to its extreme.
    """

    problem = "bounded_buffer"
    mechanism = "eventcount"

    def __init__(self, sched: Scheduler, capacity: int = 4,
                 name: str = "buf") -> None:
        super().__init__(sched, name)
        self.capacity = capacity
        self._slots: List[Any] = [None] * capacity
        self.ec_in = EventCount(sched, name + ".in")
        self.ec_out = EventCount(sched, name + ".out")
        self.seq_p = Sequencer(sched, name + ".pseq")
        self.seq_c = Sequencer(sched, name + ".cseq")

    @property
    def size(self) -> int:
        """Occupancy, reconstructed from the two counts."""
        return self.ec_in.read() - self.ec_out.read()

    def put(self, item: Any, work: int = 0) -> Generator:
        """Insert one item, blocking while the buffer is full."""
        self._request("put", item)
        ticket = self.seq_p.ticket()            # my production index
        yield from self.ec_in.await_(ticket)    # wait for earlier producers
        yield from self.ec_out.await_(ticket + 1 - self.capacity)
        self._start("put")
        self._slots[ticket % self.capacity] = item
        yield from self._work(work)
        self._finish("put")
        self.ec_in.advance()

    def get(self, work: int = 0) -> Generator:
        """Remove and return the oldest item, blocking while empty."""
        self._request("get")
        ticket = self.seq_c.ticket()
        yield from self.ec_out.await_(ticket)   # wait for earlier consumers
        yield from self.ec_in.await_(ticket + 1)
        self._start("get")
        item = self._slots[ticket % self.capacity]
        yield from self._work(work)
        self._finish("get")
        self.ec_out.advance()
        return item


class EventCountOneSlotBuffer(SolutionBase):
    """The capacity-1 special case: strict alternation from two counts."""

    problem = "one_slot_buffer"
    mechanism = "eventcount"

    def __init__(self, sched: Scheduler, name: str = "slot") -> None:
        super().__init__(sched, name)
        self._value: Any = None
        self.ec_in = EventCount(sched, name + ".in")
        self.ec_out = EventCount(sched, name + ".out")
        self.seq_p = Sequencer(sched, name + ".pseq")
        self.seq_c = Sequencer(sched, name + ".cseq")

    def put(self, item: Any) -> Generator:
        """Fill the slot (blocks until the previous value was consumed)."""
        self._request("put", item)
        ticket = self.seq_p.ticket()
        yield from self.ec_in.await_(ticket)
        yield from self.ec_out.await_(ticket)
        self._start("put")
        self._value = item
        self._finish("put")
        self.ec_in.advance()

    def get(self) -> Generator:
        """Drain the slot (blocks until a value is present)."""
        self._request("get")
        ticket = self.seq_c.ticket()
        yield from self.ec_out.await_(ticket)
        yield from self.ec_in.await_(ticket + 1)
        self._start("get")
        item = self._value
        self._finish("get")
        self.ec_out.advance()
        return item


# ----------------------------------------------------------------------
# Descriptions
# ----------------------------------------------------------------------
EVENTCOUNT_FCFS_DESCRIPTION = SolutionDescription(
    problem="fcfs_resource",
    mechanism="eventcount",
    components=(
        Component("seq:tickets", "counter", "sequencer"),
        Component("ec:done", "counter", "completions eventcount"),
        Component("proto:ticket_machine", "procedure",
                  "t := ticket(); await(done, t); use; advance(done)"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="resource_mutex",
            components=("seq:tickets", "ec:done", "proto:ticket_machine"),
            constructs=("sequencer", "eventcount"),
            directness=Directness.DIRECT,
            info_handling={T4: Directness.INDIRECT},
            notes="exclusion falls out of tickets being unique",
        ),
        ConstraintRealization(
            constraint_id="arrival_order",
            components=("seq:tickets",),
            constructs=("sequencer",),
            directness=Directness.DIRECT,
            info_handling={T2: Directness.DIRECT},
            notes="the sequencer IS a request-time capture device — the "
            "construct's home turf",
        ),
    ),
    modularity=ModularityProfile(False, False, False,
                                 "like semaphores: code at points of use"),
)

EVENTCOUNT_BOUNDED_BUFFER_DESCRIPTION = SolutionDescription(
    problem="bounded_buffer",
    mechanism="eventcount",
    components=(
        Component("ec:in", "counter", "items produced"),
        Component("ec:out", "counter", "items consumed"),
        Component("seq:producers", "counter"),
        Component("seq:consumers", "counter"),
        Component("proto:put", "procedure",
                  "t := pticket(); await(in, t); await(out, t+1-N); "
                  "slot[t mod N] := x; advance(in)"),
        Component("proto:get", "procedure",
                  "t := cticket(); await(out, t); await(in, t+1); "
                  "x := slot[t mod N]; advance(out)"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="buffer_bounds",
            components=("ec:in", "ec:out", "proto:put", "proto:get"),
            constructs=("eventcount",),
            directness=Directness.INDIRECT,
            info_handling={T5: Directness.INDIRECT, T6: Directness.DIRECT},
            notes="local state exists only as the difference of two history "
            "counts (Reed-Kanodia's own example) — §3 interchangeability "
            "at its purest",
        ),
        ConstraintRealization(
            constraint_id="buffer_mutex",
            components=("seq:producers", "seq:consumers"),
            constructs=("sequencer",),
            directness=Directness.INDIRECT,
            info_handling={T4: Directness.INDIRECT},
            notes="same-role contenders serialized by ticket; cross-role "
            "overlap is harmless by slot-index disjointness",
        ),
    ),
    modularity=ModularityProfile(False, False, False),
)

EVENTCOUNT_ONE_SLOT_DESCRIPTION = SolutionDescription(
    problem="one_slot_buffer",
    mechanism="eventcount",
    components=(
        Component("ec:in", "counter"),
        Component("ec:out", "counter"),
        Component("proto:alternation", "procedure",
                  "put awaits out = t; get awaits in = t+1"),
    ),
    realizations=(
        ConstraintRealization(
            constraint_id="slot_alternation",
            components=("ec:in", "ec:out", "proto:alternation"),
            constructs=("eventcount",),
            directness=Directness.DIRECT,
            info_handling={T6: Directness.DIRECT},
            notes="history IS the construct: counts of completed puts/gets",
        ),
    ),
    modularity=ModularityProfile(False, False, False),
)

#: The methodology's negative finding: no request-type purchase.
EVENTCOUNT_RW_INFEASIBLE = SolutionDescription(
    problem="readers_priority",
    mechanism="eventcount",
    components=(),
    realizations=(
        ConstraintRealization(
            constraint_id="readers_priority",
            components=(),
            constructs=(),
            directness=Directness.UNSUPPORTED,
            info_handling={T1: Directness.UNSUPPORTED},
            notes="eventcounts order occurrences but cannot distinguish "
            "kinds: 'readers over writers' has no counting formulation "
            "without rebuilding a scheduler in shared data",
        ),
    ),
    modularity=ModularityProfile(False, False, False,
                                 "no solution exists; judged on the attempt"),
    notes="negative result recorded per §4.1",
)
