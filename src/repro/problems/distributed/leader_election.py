"""Bully-flavoured quorum leader election with terms.

Pure bully election ("highest id that answers wins") is famously unsafe
under partitions: both sides elect.  This scenario keeps the bully's
static priority — node index sets the election timeout, so the
highest-priority live node normally wins without contention — but makes
the *grant* a quorum vote with one vote per term, which is what actually
buys the safety property the oracle checks: two leaders in one term would
each need a majority, majorities intersect, and no voter votes twice in a
term.  (This is the elective core of Raft, with bully priorities as the
tiebreaker.)

Dynamics under a leader-isolating partition: the majority side times out
and elects a new leader *in a higher term* while the old leader, unable to
reach a quorum, keeps incrementing terms fruitlessly; after heal its
higher-term vote request (or the new leader's heartbeat) resolves the
split — one more election, one leader again.  ``leader_elected`` events
after the partition tick are what the MTTR analysis anchors on.

Trace vocabulary: ``election_start``, ``leader_elected``,
``leader_stepdown`` (obj = node, detail = ``{"term": t}``), judged by
:func:`repro.verify.partition.check_at_most_one_leader`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ...dist import NetPlan, Network, Node
from ...runtime.errors import WaitTimeout
from ...runtime.faults import FaultPlan
from ...runtime.policies import ScriptedPolicy
from ...runtime.scheduler import Scheduler
from ...runtime.trace import RunResult

#: Member nodes; index = bully priority (lower index, shorter timeout).
ELECTION_NODES = ["n0", "n1", "n2"]


def build_leader_election(
    policy: ScriptedPolicy,
    netplan: Optional[NetPlan] = None,
    fault_plan: Optional[FaultPlan] = None,
    deadline: int = 120,
    heartbeat_every: int = 5,
    timeout_base: int = 12,
    stagger: int = 4,
    nodes: Optional[Sequence[str]] = None,
) -> RunResult:
    """Run the cluster until ``deadline``; members return their final view
    (``{"term": t, "leader": bool}``).  ``nodes`` overrides the
    membership (index = bully priority) for larger clusters."""
    sched = Scheduler(policy=policy, preemptive=True, fault_plan=fault_plan)
    net = Network(sched, netplan, latency=1)
    net.start()
    nodes = list(ELECTION_NODES if nodes is None else nodes)
    majority = len(nodes) // 2 + 1

    def member(idx: int, me: str):
        def body():
            node = Node(net, me, peers=nodes).bind(me)
            term = 0
            voted = {}                  # term -> candidate we granted
            votes = set()               # grants received for our candidacy
            is_leader = False
            last_heard = sched.now
            my_timeout = timeout_base + idx * stagger
            next_beat = 0
            while sched.now < deadline:
                now = sched.now
                if is_leader and now >= next_beat:
                    yield from node.broadcast("beat", term=term)
                    next_beat = sched.now + heartbeat_every
                    continue
                if not is_leader and now - last_heard >= my_timeout:
                    term += 1
                    voted[term] = me
                    votes = {me}
                    sched.log("election_start", me, {"term": term})
                    yield from node.broadcast("vote_req", term=term)
                    last_heard = sched.now
                    continue
                wait = (next_beat - now if is_leader
                        else my_timeout - (now - last_heard))
                wait = max(1, min(wait, deadline - now))
                try:
                    msg = yield from node.receive(timeout=wait)
                except WaitTimeout:
                    continue
                if msg.term > term:
                    term = msg.term
                    if is_leader:
                        sched.log("leader_stepdown", me, {"term": term})
                    is_leader = False
                    votes = set()
                if msg.kind == "vote_req":
                    # One vote per term; re-granting the same candidate is
                    # the idempotent answer to a retransmission.
                    if (msg.term == term
                            and voted.get(term) in (None, msg.src)):
                        voted[term] = msg.src
                        last_heard = sched.now
                        yield from node.send(msg.src, "vote_grant",
                                             term=term)
                elif msg.kind == "vote_grant":
                    if (msg.term == term and voted.get(term) == me
                            and not is_leader):
                        votes.add(msg.src)
                        if len(votes) >= majority:
                            is_leader = True
                            sched.log("leader_elected", me, {"term": term})
                            next_beat = sched.now
                elif msg.kind == "beat":
                    if msg.term == term and not is_leader:
                        last_heard = sched.now
            return {"term": term, "leader": is_leader}

        return body

    for idx, name in enumerate(nodes):
        sched.spawn(member(idx, name), name=name)
    result = sched.run(on_deadlock="return", on_error="record",
                       on_steplimit="return")
    result.network_stats = net.stats()
    return result
