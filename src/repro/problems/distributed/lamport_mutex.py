"""Lamport-style message-passing mutual exclusion.

The classic logical-clock algorithm (Lamport 1978, via Aspnes' notes):
each node timestamps its request, broadcasts it, and enters the critical
section once (a) its request is the smallest in its local queue and (b)
every peer has acknowledged with a later timestamp.  Release broadcasts
remove the request from peer queues.

The textbook algorithm assumes reliable FIFO channels; under a
:class:`~repro.dist.netplan.NetPlan` it gets neither, so the scenario adds
the minimal loss tolerance the protocol runtime affords: requests and
releases are **retransmitted** on receive timeout (peers treat both
idempotently), and a node that already released re-sends its release when
it sees a stale request.  Under an unhealed partition the algorithm is
*safe but not live* — requesters on either side simply never assemble the
full acknowledgement set — which is exactly the behaviour the partition
report classifies as ``wedged`` rather than ``split-brain``.

Trace vocabulary: ``cs_enter`` / ``cs_exit`` (obj = node), judged by
:func:`repro.verify.partition.check_mutex_intervals`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ...dist import NetPlan, Network, Node
from ...runtime.errors import WaitTimeout
from ...runtime.faults import FaultPlan
from ...runtime.policies import ScriptedPolicy
from ...runtime.scheduler import Scheduler
from ...runtime.trace import RunResult

#: The participating nodes (process name == node name).
LAMPORT_NODES = ["n0", "n1", "n2"]


def build_lamport_mutex(
    policy: ScriptedPolicy,
    netplan: Optional[NetPlan] = None,
    fault_plan: Optional[FaultPlan] = None,
    deadline: int = 80,
    retry_every: int = 6,
    nodes: Optional[Sequence[str]] = None,
) -> RunResult:
    """Every node requests the critical section exactly once.

    ``nodes`` overrides the membership (the resilience layer runs 5–9
    node clusters); the default stays the 3-node :data:`LAMPORT_NODES`.
    Returns the finished run; each node's result records whether it got
    in and out (``{"entered": bool, "exited": bool}``).
    """
    sched = Scheduler(policy=policy, preemptive=True, fault_plan=fault_plan)
    net = Network(sched, netplan, latency=1)
    net.start()
    nodes = list(LAMPORT_NODES if nodes is None else nodes)

    def member(idx: int, me: str):
        def body():
            node = Node(net, me, peers=nodes).bind(me)
            clock = idx + 1
            my_ts = (clock, me)
            queue = {me: my_ts}          # node -> request timestamp
            acks = {me}
            done = set()                 # nodes whose release we have seen
            entered = exited = False
            yield from node.broadcast("req", payload=my_ts)
            while sched.now < deadline:
                if (not entered and acks >= set(nodes)
                        and min(queue.values()) == my_ts):
                    entered = True
                    sched.log("cs_enter", me)
                    yield from sched.checkpoint()
                    sched.log("cs_exit", me)
                    exited = True
                    del queue[me]
                    done.add(me)
                    yield from node.broadcast("rel", payload=my_ts)
                if exited and done >= set(nodes):
                    break
                try:
                    msg = yield from node.receive(timeout=retry_every)
                except WaitTimeout:
                    # Reliable-channel assumption patched by retransmission:
                    # peers dedup requests by node and treat releases
                    # idempotently.
                    if not entered:
                        yield from node.broadcast("req", payload=my_ts)
                    elif exited and not done >= set(nodes):
                        yield from node.broadcast("rel", payload=my_ts)
                    continue
                ts = tuple(msg.payload)
                clock = max(clock, ts[0]) + 1
                if msg.kind == "req":
                    if msg.src not in done:
                        # A delayed request arriving after its own release
                        # must not resurrect the queue entry.
                        queue[msg.src] = ts
                    yield from node.send(msg.src, "ack",
                                         payload=(clock, me))
                    if exited:
                        yield from node.send(msg.src, "rel", payload=my_ts)
                elif msg.kind == "ack":
                    acks.add(msg.src)
                elif msg.kind == "rel":
                    queue.pop(msg.src, None)
                    done.add(msg.src)
            return {"entered": entered, "exited": exited}

        return body

    for idx, name in enumerate(nodes):
        sched.spawn(member(idx, name), name=name)
    result = sched.run(on_deadlock="return", on_error="record",
                       on_steplimit="return")
    result.network_stats = net.stats()
    return result
