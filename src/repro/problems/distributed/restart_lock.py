"""Crash-restart under partition: the amnesiac lease holder.

The combined-fault scenario the resilience layer is built around.  A
client (``c0``) holds a quorum lease over ``servers`` replicas and writes
a shared :class:`~repro.resilience.fencing.FencedResource` — storage that
stays reachable through network partitions, which is exactly why lease
validity alone cannot protect it.  A second client (``c1``) competes for
the lease.  ``c0`` runs under a :class:`~repro.resilience.supervisor.
NodeSupervisor`: a fault-plan kill restarts it with only its durable
namespace (held/token record, sequence stamps) — every volatile fact,
*including the clock-anchored lease validity horizon*, is gone.

The scripted amnesia bug: a restarted ``c0`` that finds a durable
"holding" record first attempts one lease renewal; if the renewal times
out (a partition cuts it off from every server) it falls back to trusting
the persisted record and resumes writing with its old fencing token.
Neither fault alone is harmful — after a kill alone the renewal succeeds
(the servers still recognise the holder), and under a partition alone the
original incarnation's volatile ``lease.valid`` check fences it out at
its horizon — but together they produce a stale writer interleaved with
the new holder:

* ``fencing=False`` — the resource accepts the stale token after the new
  holder's higher token: a **fencing/exclusion violation** (the
  split-brain witness the joint fault-plan search finds and minimizes to
  exactly {kill, partition});
* ``fencing=True`` — the resource rejects the first stale write after
  the new holder appears; ``c0`` fences out (``cs_abort``), clears its
  durable hold, and re-acquires after the heal: **partition-tolerant**.

Trace vocabulary: ``cs_enter``/``cs_exit``/``cs_abort`` (obj = client),
``fence_accept``/``fence_reject``, plus the lease, restart, and rejoin
events of the layers underneath.
"""

from __future__ import annotations

from typing import List, Optional

from ...dist import NetPlan, Network, Node, LeaseServer, QuorumLease
from ...recover import FixedBackoff, RestartPolicy
from ...resilience.durable import DurableStore
from ...resilience.fencing import FencedResource
from ...resilience.supervisor import NodeSupervisor
from ...runtime.errors import WaitTimeout
from ...runtime.faults import FaultPlan
from ...runtime.policies import ScriptedPolicy
from ...runtime.scheduler import Scheduler
from ...runtime.trace import RunResult

#: Default cluster: five lease replicas (majority 3), two clients.
RESTART_SERVERS = ["s0", "s1", "s2", "s3", "s4"]
RESTART_CLIENTS = ["c0", "c1"]


def restart_server_names(count: int) -> List[str]:
    return ["s{}".format(i) for i in range(count)]


def build_restart_lock(
    policy: ScriptedPolicy,
    netplan: Optional[NetPlan] = None,
    fault_plan: Optional[FaultPlan] = None,
    servers: int = 5,
    fencing: bool = True,
    deadline: int = 150,
    duration: int = 20,
    writes: int = 4,
    resume_writes: int = 8,
    write_every: int = 2,
    retry_sleep: int = 4,
    c1_delay: int = 8,
    restart_backoff: int = 2,
) -> RunResult:
    """Run the crash-restart-under-partition cluster to its deadline.

    Client results: ``c0`` → ``{"locked": bool, "stale_writes": int,
    "aborts": int, "incarnations": int}``, ``c1`` → ``{"locked": bool,
    "aborts": int}``.  ``result.fencing_stats`` carries the resource's
    accept/reject counters and ``result.durable_state`` the store's final
    snapshot.
    """
    sched = Scheduler(policy=policy, preemptive=True, fault_plan=fault_plan)
    net = Network(sched, netplan, latency=1)
    net.start()
    store = DurableStore()
    server_ids = restart_server_names(servers)
    resource = FencedResource(sched, "store", enforce=fencing)

    def server(sid: str):
        ns = store.namespace(sid)

        def body():
            node = Node(net, sid, store=ns).bind(sid)
            lease = LeaseServer(node, duration=duration, store=ns)
            while True:
                remaining = deadline - sched.now
                if remaining <= 0:
                    return
                try:
                    msg = yield from node.receive(timeout=remaining)
                except WaitTimeout:
                    return
                yield from lease.handle(msg)

        return body

    def c0_body(incarnation, ns):
        node = Node(net, "c0", store=ns).bind("c0")
        lease = QuorumLease(node, server_ids, duration=duration,
                            timeout=3, attempts=1)
        stale_writes = 0
        aborts = 0

        def write_session(token: int):
            """One fenced write session under a *valid* lease.  Returns
            True when every write landed (validity held throughout)."""
            sched.log("cs_enter", "c0")
            for _ in range(writes):
                if not lease.valid or not resource.access("c0", token):
                    return False
                yield from sched.sleep(write_every)
            return True

        if incarnation > 1 and ns.get("holding"):
            # Came back from the dead mid-hold.  Correct: treat validity
            # as lost (it was volatile).  First, one polite renewal —
            # enough when the crash was the only fault:
            renew = QuorumLease(node, server_ids, duration=duration,
                                timeout=3, attempts=1)
            renewed = yield from renew.acquire()
            if renewed:
                lease = renew
                ns.put("token", lease.token)
            else:
                # The amnesia bug: cut off from every server, c0 trusts
                # the durable "holding" record — whose validity horizon
                # died with the first incarnation — and resumes writing
                # with its old token.  Only the resource-side fencing
                # check stands between this and split-brain.
                token = int(ns.get("token", 0))
                sched.log("cs_enter", "c0")
                for _ in range(resume_writes):
                    if not resource.access("c0", token):
                        # Fenced out: a newer holder has written.
                        aborts += 1
                        sched.log("cs_abort", "c0")
                        ns.put("holding", False)
                        break
                    stale_writes += 1
                    yield from sched.sleep(write_every)
                else:
                    sched.log("cs_exit", "c0")
                    ns.put("holding", False)
                    return {"locked": True, "stale_writes": stale_writes,
                            "aborts": aborts, "incarnations": incarnation}

        while sched.now < deadline:
            ok = yield from lease.acquire()
            if not ok:
                yield from sched.sleep(retry_sleep)
                continue
            ns.put("holding", True)
            ns.put("token", lease.token)
            done = yield from write_session(lease.token)
            if done:
                sched.log("cs_exit", "c0")
                ns.put("holding", False)
                yield from lease.release()
                return {"locked": True, "stale_writes": stale_writes,
                        "aborts": aborts, "incarnations": incarnation}
            aborts += 1
            sched.log("cs_abort", "c0")
            ns.put("holding", False)
        return {"locked": False, "stale_writes": stale_writes,
                "aborts": aborts, "incarnations": incarnation}

    def c1_body():
        node = Node(net, "c1").bind("c1")
        lease = QuorumLease(node, server_ids, duration=duration,
                            timeout=3, attempts=1)
        aborts = 0
        yield from sched.sleep(c1_delay)
        while sched.now < deadline:
            ok = yield from lease.acquire()
            if not ok:
                yield from sched.sleep(retry_sleep)
                continue
            sched.log("cs_enter", "c1")
            completed = True
            for _ in range(writes):
                if not lease.valid or not resource.access(
                        "c1", lease.token):
                    completed = False
                    break
                yield from sched.sleep(write_every)
            if completed:
                sched.log("cs_exit", "c1")
                yield from lease.release()
                return {"locked": True, "aborts": aborts}
            aborts += 1
            sched.log("cs_abort", "c1")
        return {"locked": False, "aborts": aborts}

    for sid in server_ids:
        sched.spawn(server(sid), name=sid)
    nsup = NodeSupervisor(
        sched, net, store,
        RestartPolicy(max_restarts=3,
                      backoff=FixedBackoff(restart_backoff)),
    )
    nsup.node("c0", c0_body)
    nsup.start()
    sched.spawn(c1_body, name="c1")
    result = sched.run(on_deadlock="return", on_error="record",
                       on_steplimit="return")
    result.network_stats = net.stats()
    result.fencing_stats = resource.stats()
    result.durable_state = store.snapshot()
    return result
