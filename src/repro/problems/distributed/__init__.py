"""Partition-tolerant distributed scenarios over the dist layer.

Unlike the catalog problems (one class per mechanism × problem), these are
chaos-style *builders*: each takes ``(policy, netplan, fault_plan)`` and
runs a fresh little distributed system — message-passing mutual exclusion,
quorum-based locking, leader election — to completion under that schedule
and those network faults, returning the :class:`~repro.runtime.trace.
RunResult` the partition oracles (:mod:`repro.verify.partition`) judge.

All three terminate deterministically: every wait is a virtual-clock
timeout and every loop is bounded by a scenario deadline, so even a
never-healing partition produces a finite, classifiable run.
"""

from .lamport_mutex import LAMPORT_NODES, build_lamport_mutex
from .quorum_lock import (LOCK_CLIENTS, LOCK_SERVERS, build_quorum_lock)
from .leader_election import ELECTION_NODES, build_leader_election
from .restart_lock import (RESTART_CLIENTS, RESTART_SERVERS,
                           build_restart_lock, restart_server_names)

__all__ = [
    "build_lamport_mutex", "LAMPORT_NODES",
    "build_quorum_lock", "LOCK_SERVERS", "LOCK_CLIENTS",
    "build_leader_election", "ELECTION_NODES",
    "build_restart_lock", "RESTART_SERVERS", "RESTART_CLIENTS",
    "restart_server_names",
]
