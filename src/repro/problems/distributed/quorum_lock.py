"""Quorum-based locking: a distributed lock from quorum leases.

Three :class:`~repro.dist.quorum.LeaseServer` replicas hold the lock
state; two clients compete, each needing unexpired grants from a majority
(:class:`~repro.dist.quorum.QuorumLease`).  The client treats the critical
section as usable only while its lease is ``valid`` and *aborts* the hold
the moment validity lapses — the fencing discipline that makes the
partition story safe: a holder cut off by a partition cannot renew,
expires at its validity horizon, and the majority side re-acquires only
after every grant the old holder might still trust has aged out.  At no
virtual-clock tick are there two valid holders (the
``no-two-holders-across-partition`` oracle,
:func:`repro.verify.partition.check_lease_exclusion`).

Trace vocabulary: ``cs_enter`` / ``cs_exit`` / ``cs_abort`` (obj =
client) on top of the lease events emitted by :mod:`repro.dist.quorum`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ...dist import NetPlan, Network, Node, LeaseServer, QuorumLease
from ...runtime.errors import WaitTimeout
from ...runtime.faults import FaultPlan
from ...runtime.policies import ScriptedPolicy
from ...runtime.scheduler import Scheduler
from ...runtime.trace import RunResult

#: Replica and client node names.
LOCK_SERVERS = ["s0", "s1", "s2"]
LOCK_CLIENTS = ["c0", "c1"]


def build_quorum_lock(
    policy: ScriptedPolicy,
    netplan: Optional[NetPlan] = None,
    fault_plan: Optional[FaultPlan] = None,
    deadline: int = 110,
    duration: int = 18,
    hold: int = 6,
    retry_sleep: int = 5,
    servers: Optional[Sequence[str]] = None,
    clients: Optional[Sequence[str]] = None,
) -> RunResult:
    """Two clients each try to complete one fenced lock-hold.

    ``servers``/``clients`` override the membership (the resilience
    layer runs 5+ replica clusters); defaults stay the 3+2 constants.
    A client's result records whether it ever finished a hold without
    losing validity (``{"locked": bool, "aborts": int}``).
    """
    server_ids = list(LOCK_SERVERS if servers is None else servers)
    client_ids = list(LOCK_CLIENTS if clients is None else clients)
    sched = Scheduler(policy=policy, preemptive=True, fault_plan=fault_plan)
    net = Network(sched, netplan, latency=1)
    net.start()

    def server(sid: str):
        def body():
            node = Node(net, sid).bind(sid)
            lease = LeaseServer(node, duration=duration)
            while True:
                remaining = deadline - sched.now
                if remaining <= 0:
                    return
                try:
                    msg = yield from node.receive(timeout=remaining)
                except WaitTimeout:
                    return
                yield from lease.handle(msg)

        return body

    def client(cid: str):
        def body():
            node = Node(net, cid).bind(cid)
            lease = QuorumLease(node, server_ids, duration=duration,
                                timeout=4, attempts=2)
            aborts = 0
            while sched.now < deadline:
                ok = yield from lease.acquire()
                if not ok:
                    yield from sched.sleep(retry_sleep)
                    continue
                sched.log("cs_enter", cid)
                held = 0
                while held < hold and lease.valid:
                    yield from sched.sleep(1)
                    held += 1
                if lease.valid:
                    sched.log("cs_exit", cid)
                    yield from lease.release()
                    return {"locked": True, "aborts": aborts}
                # Validity lapsed mid-hold (partition, slow quorum): fence
                # out — stop touching the resource, try again.
                aborts += 1
                sched.log("cs_abort", cid)
            return {"locked": False, "aborts": aborts}

        return body

    for sid in server_ids:
        sched.spawn(server(sid), name=sid)
    for cid in client_ids:
        sched.spawn(client(cid), name=cid)
    result = sched.run(on_deadlock="return", on_error="record",
                       on_steplimit="return")
    result.network_stats = net.stats()
    return result
