"""Evaluation criteria (paper §4).

Two computable criteria over :class:`SolutionDescription` sets:

* **Expressive power** (§4.1): per mechanism and information type, the most
  direct handling any solution in the suite achieved.  "If there is no
  direct way to use a certain kind of information, it should become obvious
  when an attempt is made to implement a solution requiring it" — here the
  attempt is the recorded realization, and the judgement is its
  ``info_handling`` entry.
* **Constraint-kind support**: the same aggregation keyed by
  exclusion/priority, capturing findings like "path expressions provide no
  direct means of expressing priority constraints" (§5.1.1).

Constraint independence — the §4.2 ease-of-use criterion — needs *pairs* of
solutions and lives in :mod:`repro.analysis.independence`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from .catalog import PROBLEM_CATALOG
from .constraints import ConstraintKind
from .information import ALL_INFORMATION_TYPES, InformationType
from .problems import ProblemSpec
from .solution import Directness, SolutionDescription, best

PowerMatrix = Dict[str, Dict[InformationType, Optional[Directness]]]
KindMatrix = Dict[str, Dict[ConstraintKind, Optional[Directness]]]


def _info_judgements(
    description: SolutionDescription,
    catalog: Mapping[str, ProblemSpec],
):
    """Yield (info_type, directness) pairs contributed by one solution."""
    spec = catalog.get(description.problem)
    for realization in description.realizations:
        explicit = realization.info_handling
        if explicit:
            for info_type, judgement in explicit.items():
                yield info_type, judgement
            continue
        # Fall back to the constraint's declared info types, all judged at
        # the realization's overall directness.
        if spec is None:
            continue
        try:
            constraint = spec.constraint(realization.constraint_id)
        except KeyError:
            continue
        for info_type in constraint.info_types:
            yield info_type, realization.directness


def expressive_power(
    descriptions: Iterable[SolutionDescription],
    catalog: Mapping[str, ProblemSpec] = PROBLEM_CATALOG,
) -> PowerMatrix:
    """Mechanism × information type → best achieved directness.

    ``None`` means the suite never exercised that type for that mechanism —
    a coverage gap the methodology is designed to expose (§1).
    """
    matrix: PowerMatrix = {}
    for description in descriptions:
        row = matrix.setdefault(
            description.mechanism,
            {t: None for t in ALL_INFORMATION_TYPES},
        )
        for info_type, judgement in _info_judgements(description, catalog):
            current = row[info_type]
            row[info_type] = (
                judgement if current is None else best(current, judgement)
            )
    return matrix


def constraint_kind_support(
    descriptions: Iterable[SolutionDescription],
    catalog: Mapping[str, ProblemSpec] = PROBLEM_CATALOG,
) -> KindMatrix:
    """Mechanism × constraint kind → best achieved directness."""
    matrix: KindMatrix = {}
    for description in descriptions:
        row = matrix.setdefault(
            description.mechanism,
            {kind: None for kind in ConstraintKind},
        )
        spec = catalog.get(description.problem)
        if spec is None:
            continue
        for realization in description.realizations:
            try:
                constraint = spec.constraint(realization.constraint_id)
            except KeyError:
                continue
            current = row[constraint.kind]
            row[constraint.kind] = (
                realization.directness
                if current is None
                else best(current, realization.directness)
            )
    return matrix


def modularity_summary(
    descriptions: Iterable[SolutionDescription],
) -> Dict[str, Dict[str, bool]]:
    """Mechanism → the §2 modularity judgement, aggregated conservatively
    (a requirement holds for the mechanism only if it holds in *every*
    recorded solution)."""
    summary: Dict[str, Dict[str, bool]] = {}
    for description in descriptions:
        profile = description.modularity
        row = summary.setdefault(
            description.mechanism,
            {
                "synchronization_with_resource": True,
                "resource_separable": True,
                "enforced_by_mechanism": True,
            },
        )
        row["synchronization_with_resource"] &= (
            profile.synchronization_with_resource
        )
        row["resource_separable"] &= profile.resource_separable
        row["enforced_by_mechanism"] &= profile.enforced_by_mechanism
    return summary


def gate_usage(
    descriptions: Iterable[SolutionDescription],
) -> Dict[str, int]:
    """Mechanism → number of extra synchronization procedures ("gates")
    across all its solutions.  §5.1.1: needing gates signals indirect
    expression and blurred resource/synchronization separation."""
    counts: Dict[str, int] = {}
    for description in descriptions:
        n = sum(
            1 for comp in description.components
            if comp.kind == "sync_procedure"
        )
        counts[description.mechanism] = counts.get(description.mechanism, 0) + n
    return counts
