"""Pairwise information-type analysis (§4.2, last paragraph).

"It is also possible that usage of two particular types of information will
conflict.  In this case, constraint independence will be violated only in
examples using both types of information. … the only complete method of
evaluation seems to be to check all possible pairs of the six information
types."

This module makes that check systematic:

* :func:`all_pairs` — the 15 unordered pairs of the six types;
* :func:`pair_coverage` — for each pair, which suite problems exercise both
  types together (so an evaluation knows which pairs it has actually
  probed);
* :func:`uncovered_pairs` — pairs no problem in the suite probes: the
  honest residual risk of an evaluation (the paper: analyzing types one at
  a time usually reveals conflicts, "but it is not as easy to check");
* :func:`conflicting_pairs` — pairs where a recorded solution needed a
  conflict-resolving idiom (constructs tagged ``two_stage_queue``), i.e.
  the §5.2 monitor T1×T2 case, recovered from solution descriptions.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Mapping, Set

from .catalog import PROBLEM_CATALOG
from .information import ALL_INFORMATION_TYPES, InformationType
from .problems import ProblemSpec
from .report import ascii_table
from .solution import SolutionDescription

Pair = FrozenSet[InformationType]

#: Construct tags that signal a resolved information-type conflict.
CONFLICT_MARKERS = ("two_stage_queue",)


def all_pairs() -> List[Pair]:
    """The 15 unordered pairs of information types, in canonical order."""
    return [
        frozenset(pair) for pair in combinations(ALL_INFORMATION_TYPES, 2)
    ]


def _pair_label(pair: Pair) -> str:
    a, b = sorted(pair, key=lambda t: t.short)
    return "{}x{}".format(a.short, b.short)


def pair_coverage(
    catalog: Mapping[str, ProblemSpec] = PROBLEM_CATALOG,
    suite: Iterable[str] = (),
) -> Dict[Pair, List[str]]:
    """Which problems exercise each pair (both types in the problem's
    constraint set).  Defaults to the whole catalog."""
    names = list(suite) or list(catalog)
    coverage: Dict[Pair, List[str]] = {pair: [] for pair in all_pairs()}
    for name in names:
        spec = catalog[name]
        types = spec.info_types
        for pair in coverage:
            if pair <= types:
                coverage[pair].append(name)
    return coverage


def uncovered_pairs(
    catalog: Mapping[str, ProblemSpec] = PROBLEM_CATALOG,
    suite: Iterable[str] = (),
) -> List[Pair]:
    """Pairs no suite problem probes — the residual blind spots."""
    return [
        pair for pair, problems in pair_coverage(catalog, suite).items()
        if not problems
    ]


def conflicting_pairs(
    descriptions: Iterable[SolutionDescription],
    catalog: Mapping[str, ProblemSpec] = PROBLEM_CATALOG,
) -> Dict[str, Set[Pair]]:
    """Mechanism → pairs whose combined use forced a conflict-resolving
    idiom, recovered from realization construct tags."""
    conflicts: Dict[str, Set[Pair]] = {}
    for description in descriptions:
        spec = catalog.get(description.problem)
        if spec is None:
            continue
        for realization in description.realizations:
            if not any(m in realization.constructs for m in CONFLICT_MARKERS):
                continue
            # The conflicting pair is the info the constraint uses plus the
            # types its resolution had to juggle (recorded in info_handling).
            involved = set(realization.info_handling)
            if len(involved) < 2:
                try:
                    involved |= set(
                        spec.constraint(realization.constraint_id).info_types
                    )
                except KeyError:
                    pass
            for pair in combinations(sorted(involved, key=lambda t: t.short), 2):
                conflicts.setdefault(description.mechanism, set()).add(
                    frozenset(pair)
                )
    return conflicts


def render_pair_coverage(
    coverage: Mapping[Pair, List[str]],
    conflicts: Mapping[str, Set[Pair]] = (),
    title: str = "Pairwise information-type coverage (section 4.2)",
) -> str:
    """ASCII table: pair → probing problems → mechanisms that conflicted."""
    conflict_index: Dict[Pair, List[str]] = {}
    if conflicts:
        for mechanism, pairs in conflicts.items():
            for pair in pairs:
                conflict_index.setdefault(pair, []).append(mechanism)
    rows = []
    for pair in all_pairs():
        problems = coverage.get(pair, [])
        rows.append([
            _pair_label(pair),
            ", ".join(problems) if problems else "(uncovered)",
            ", ".join(sorted(conflict_index.get(pair, []))) or "-",
        ])
    return ascii_table(
        ["pair", "probed by", "conflicts found in"], rows, title
    )
