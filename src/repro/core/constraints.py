"""Constraint taxonomy (paper §3).

A synchronization scheme is a set of constraints, each of one of two kinds:

* **exclusion** — ``if condition then exclude process A``; maintains
  consistency (a correctness property);
* **priority** — ``if condition then A has priority over B``; schedules
  access (usually an efficiency/fairness property).

Each constraint is tagged with the :class:`InformationType` values its
condition refers to.  Constraints are *specification-level* objects: problem
specs are made of them, and solutions report how they realized each one.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Iterable

from .information import InformationType


class ConstraintKind(enum.Enum):
    """The two main classes of constraints (paper §3)."""

    EXCLUSION = "exclusion"
    PRIORITY = "priority"


@dataclass(frozen=True)
class Constraint:
    """One synchronization constraint in a problem specification.

    Attributes:
        id: short stable identifier, unique within a problem (and reused
            across problems that share the constraint — sharing is what the
            ease-of-use analysis keys on, §4.2).
        kind: exclusion or priority.
        info_types: the information types the condition references.
        description: the constraint in prose, as the paper states it.
    """

    id: str
    kind: ConstraintKind
    info_types: FrozenSet[InformationType]
    description: str

    @staticmethod
    def exclusion(
        id: str, info: Iterable[InformationType], description: str
    ) -> "Constraint":
        """Build an exclusion constraint."""
        return Constraint(
            id, ConstraintKind.EXCLUSION, frozenset(info), description
        )

    @staticmethod
    def priority(
        id: str, info: Iterable[InformationType], description: str
    ) -> "Constraint":
        """Build a priority constraint."""
        return Constraint(
            id, ConstraintKind.PRIORITY, frozenset(info), description
        )

    def __str__(self) -> str:
        tags = ",".join(sorted(t.short for t in self.info_types))
        return "[{}:{}] {} ({})".format(
            self.kind.value, self.id, self.description, tags
        )
