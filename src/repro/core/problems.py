"""Problem specifications.

A :class:`ProblemSpec` is the *specification* of a synchronization problem —
its operations and constraints — independent of any mechanism.  The paper's
central move (§1, §3) is to select a problem set that covers all information
types "with a minimum of redundancy", so that an evaluation over the set is
known to be complete; :mod:`repro.core.catalog` instantiates that set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

from .constraints import Constraint, ConstraintKind
from .information import InformationType


@dataclass(frozen=True)
class ProblemSpec:
    """A mechanism-independent synchronization problem.

    Attributes:
        name: stable identifier (``readers_priority``, ``bounded_buffer``…).
        title: display title.
        operations: the abstract-type operations of the shared resource.
        constraints: the synchronization scheme as a constraint set.
        source: citation for the problem, as given in the paper.
        covers: the information types this problem was chosen to exercise
            (paper footnote 2); a subset of the union of constraint tags
            singled out as the *reason* the problem is in the suite.
    """

    name: str
    title: str
    operations: Tuple[str, ...]
    constraints: Tuple[Constraint, ...]
    source: str = ""
    covers: FrozenSet[InformationType] = frozenset()

    @property
    def info_types(self) -> FrozenSet[InformationType]:
        """Union of the information types of all constraints."""
        out = frozenset()
        for c in self.constraints:
            out |= c.info_types
        return out

    @property
    def exclusion_constraints(self) -> Tuple[Constraint, ...]:
        """The exclusion (consistency) constraints."""
        return tuple(
            c for c in self.constraints if c.kind is ConstraintKind.EXCLUSION
        )

    @property
    def priority_constraints(self) -> Tuple[Constraint, ...]:
        """The priority (scheduling) constraints."""
        return tuple(
            c for c in self.constraints if c.kind is ConstraintKind.PRIORITY
        )

    def constraint(self, constraint_id: str) -> Constraint:
        """Look up one constraint by id (raises ``KeyError`` if absent)."""
        for c in self.constraints:
            if c.id == constraint_id:
                return c
        raise KeyError(
            "problem {!r} has no constraint {!r}".format(self.name, constraint_id)
        )

    def shared_constraints(self, other: "ProblemSpec") -> Tuple[str, ...]:
        """Ids of constraints this problem shares with ``other``.

        Problem pairs with shared constraints are the probes of the
        ease-of-use analysis (§4.2): the shared constraint should be realized
        identically in solutions to both problems.
        """
        mine = {c.id for c in self.constraints}
        theirs = {c.id for c in other.constraints}
        return tuple(sorted(mine & theirs))
