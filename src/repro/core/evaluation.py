"""The evaluation engine: run the methodology end to end.

An :class:`Evaluator` collects *entries* — each a solution description plus a
verifier callable that exercises the actual implementation and returns a list
of property violations — then produces an :class:`EvaluationReport` holding:

* per-solution verification outcomes (do the solutions actually work?),
* the expressive-power matrix (§4.1),
* the constraint-kind support matrix,
* the modularity summary (§2),
* gate usage counts (§5.1.1's "synchronization procedures" signal).

Constraint-independence and modification-distance results (§4.2) are
computed by :mod:`repro.analysis` and can be attached to the report before
rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from .catalog import PROBLEM_CATALOG
from .criteria import (
    KindMatrix,
    PowerMatrix,
    constraint_kind_support,
    expressive_power,
    gate_usage,
    modularity_summary,
)
from .problems import ProblemSpec
from .report import (
    ascii_table,
    render_expressive_power,
    render_kind_support,
    render_modularity,
)
from .solution import SolutionDescription

Verifier = Callable[[], List[str]]


@dataclass
class EvaluationEntry:
    """One solution under evaluation."""

    description: SolutionDescription
    verifier: Optional[Verifier] = None
    violations: List[str] = field(default_factory=list)
    verified: Optional[bool] = None

    @property
    def key(self) -> str:
        return "{}/{}".format(
            self.description.problem, self.description.mechanism
        )


@dataclass
class EvaluationReport:
    """Everything the methodology produces for one mechanism set."""

    entries: List[EvaluationEntry]
    power: PowerMatrix
    kinds: KindMatrix
    modularity: Dict[str, Dict[str, bool]]
    gates: Dict[str, int]
    extras: Dict[str, str] = field(default_factory=dict)

    def mechanisms(self) -> List[str]:
        """Mechanisms covered, sorted."""
        return sorted({e.description.mechanism for e in self.entries})

    def failures(self) -> List[EvaluationEntry]:
        """Entries whose verifier reported violations."""
        return [e for e in self.entries if e.verified is False]

    def render(self) -> str:
        """Full human-readable report."""
        sections = []
        rows = []
        for entry in self.entries:
            status = {True: "ok", False: "FAIL", None: "unverified"}[
                entry.verified
            ]
            detail = "; ".join(entry.violations[:2])
            rows.append([entry.key, status, detail])
        sections.append(
            ascii_table(
                ["solution", "verified", "violations"],
                rows,
                "Solution verification",
            )
        )
        sections.append(render_expressive_power(self.power))
        sections.append(render_kind_support(self.kinds))
        sections.append(render_modularity(self.modularity))
        gate_rows = [
            [mech, str(count)] for mech, count in sorted(self.gates.items())
        ]
        sections.append(
            ascii_table(
                ["mechanism", "sync procedures (gates)"],
                gate_rows,
                "Gate usage (section 5.1.1 signal)",
            )
        )
        for title, body in self.extras.items():
            sections.append(title + "\n" + "=" * len(title) + "\n" + body)
        return "\n\n".join(sections)


class Evaluator:
    """Collects solutions and runs the complete methodology."""

    def __init__(
        self, catalog: Mapping[str, ProblemSpec] = PROBLEM_CATALOG
    ) -> None:
        self.catalog = catalog
        self._entries: List[EvaluationEntry] = []

    def add(
        self,
        description: SolutionDescription,
        verifier: Optional[Verifier] = None,
    ) -> None:
        """Register one solution.

        Args:
            description: the machine-readable solution structure.  It is
                validated immediately; inconsistencies raise ``ValueError``.
            verifier: zero-argument callable that runs the implementation
                and returns a list of property-violation strings (empty =
                correct).
        """
        issues = description.validate()
        if issues:
            raise ValueError(
                "invalid solution description {}/{}: {}".format(
                    description.problem, description.mechanism,
                    "; ".join(issues),
                )
            )
        self._entries.append(EvaluationEntry(description, verifier))

    def evaluate(self, run_verifiers: bool = True) -> EvaluationReport:
        """Run verifiers (optionally) and compute all matrices."""
        for entry in self._entries:
            if run_verifiers and entry.verifier is not None:
                entry.violations = list(entry.verifier())
                entry.verified = not entry.violations
        descriptions = [e.description for e in self._entries]
        return EvaluationReport(
            entries=list(self._entries),
            power=expressive_power(descriptions, self.catalog),
            kinds=constraint_kind_support(descriptions, self.catalog),
            modularity=modularity_summary(descriptions),
            gates=gate_usage(descriptions),
        )
