"""The six information types of Section 3 of the paper.

Synchronization constraints are conditional rules; the paper classifies them
by the *kind of information* their conditions reference.  This taxonomy is
the backbone of the whole methodology: the test-problem suite is chosen to
cover it, and expressive power is defined over it.
"""

from __future__ import annotations

import enum


class InformationType(enum.Enum):
    """What a constraint's condition may refer to (paper §3, items 1-6)."""

    REQUEST_TYPE = "T1"
    """The access operation requested — e.g. "readers have priority over
    writers" distinguishes requests by operation type."""

    REQUEST_TIME = "T2"
    """The time of a request relative to other events — most often used to
    grant access in arrival order (first-come-first-served)."""

    PARAMETERS = "T3"
    """Arguments passed with the request — e.g. the track number in the disk
    head scheduler, or the wake-up time in the alarm clock."""

    SYNC_STATE = "T4"
    """Synchronization state: information that exists only because the
    resource is accessed concurrently — counts and identities of processes
    currently accessing or waiting."""

    LOCAL_STATE = "T5"
    """Local state of the resource itself — present whether or not access is
    concurrent, e.g. whether a buffer is full or empty."""

    HISTORY = "T6"
    """Whether a given event has occurred — completed operations, as opposed
    to those still in progress (which are T4)."""

    @property
    def short(self) -> str:
        """The compact tag used in tables (``T1`` … ``T6``)."""
        return self.value

    @property
    def description(self) -> str:
        """One-line gloss (first sentence of the docstring)."""
        doc = _DESCRIPTIONS[self]
        return doc

    def __str__(self) -> str:
        return "{} ({})".format(self.value, self.name.lower())


_DESCRIPTIONS = {
    InformationType.REQUEST_TYPE: "the access operation requested",
    InformationType.REQUEST_TIME: "the times at which requests were made",
    InformationType.PARAMETERS: "request parameters",
    InformationType.SYNC_STATE: "the synchronization state of the resource",
    InformationType.LOCAL_STATE: "the local state of the resource",
    InformationType.HISTORY: "history information",
}

#: All six types in the paper's presentation order.
ALL_INFORMATION_TYPES = (
    InformationType.REQUEST_TYPE,
    InformationType.REQUEST_TIME,
    InformationType.PARAMETERS,
    InformationType.SYNC_STATE,
    InformationType.LOCAL_STATE,
    InformationType.HISTORY,
)
