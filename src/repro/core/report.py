"""ASCII report rendering for evaluation results.

All benches and examples print their tables through these helpers, so the
paper-style matrices look the same everywhere.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence

from .constraints import ConstraintKind
from .criteria import KindMatrix, PowerMatrix
from .information import ALL_INFORMATION_TYPES, InformationType
from .solution import Directness


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[str]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width table with a header rule.

    >>> print(ascii_table(["a", "b"], [["1", "22"]]))
    a | b
    --+---
    1 | 22
    """
    materialized = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(
        " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    )
    lines.append("-+-".join("-" * w for w in widths))
    for row in materialized:
        lines.append(
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def _cell(judgement: Optional[Directness]) -> str:
    if judgement is None:
        return "-"
    return {"direct": "direct", "indirect": "INDIRECT", "unsupported": "NONE"}[
        judgement.value
    ]


def render_expressive_power(matrix: PowerMatrix, title: str = "Expressive power (mechanism x information type)") -> str:
    """The paper's §5 expressive-power findings as a matrix."""
    headers = ["mechanism"] + [t.short for t in ALL_INFORMATION_TYPES]
    rows = []
    for mechanism in sorted(matrix):
        row = [mechanism]
        for info_type in ALL_INFORMATION_TYPES:
            row.append(_cell(matrix[mechanism].get(info_type)))
        rows.append(row)
    legend = (
        "\nT1=request type  T2=request time  T3=parameters  "
        "T4=sync state  T5=local state  T6=history"
    )
    return ascii_table(headers, rows, title) + legend


def render_kind_support(matrix: KindMatrix, title: str = "Constraint-kind support") -> str:
    """Exclusion/priority support per mechanism."""
    headers = ["mechanism", "exclusion", "priority"]
    rows = []
    for mechanism in sorted(matrix):
        rows.append(
            [
                mechanism,
                _cell(matrix[mechanism].get(ConstraintKind.EXCLUSION)),
                _cell(matrix[mechanism].get(ConstraintKind.PRIORITY)),
            ]
        )
    return ascii_table(headers, rows, title)


def render_modularity(
    summary: Mapping[str, Mapping[str, bool]],
    title: str = "Modularity requirements (section 2)",
) -> str:
    """The two §2 requirements plus enforcement, per mechanism."""
    headers = [
        "mechanism",
        "sync with resource",
        "resource separable",
        "enforced by mechanism",
    ]
    rows = []
    for mechanism in sorted(summary):
        row_data = summary[mechanism]
        rows.append(
            [
                mechanism,
                "yes" if row_data["synchronization_with_resource"] else "NO",
                "yes" if row_data["resource_separable"] else "NO",
                "yes" if row_data["enforced_by_mechanism"] else "NO (discipline)",
            ]
        )
    return ascii_table(headers, rows, title)


def render_coverage(
    coverage: Mapping[str, Iterable[InformationType]],
    title: str = "Test-problem coverage of information types (footnote 2)",
) -> str:
    """Which information types each suite problem covers."""
    headers = ["problem"] + [t.short for t in ALL_INFORMATION_TYPES]
    rows = []
    for problem, covered in coverage.items():
        covered_set = set(covered)
        rows.append(
            [problem]
            + ["x" if t in covered_set else "" for t in ALL_INFORMATION_TYPES]
        )
    return ascii_table(headers, rows, title)
