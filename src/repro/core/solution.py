"""Machine-readable solution structure.

The paper evaluates mechanisms by having a human read solutions and judge
(a) how *directly* each constraint/information type is handled and (b) how
*independent* the constraint implementations are.  To make those judgements
reproducible, every solution in this library carries a
:class:`SolutionDescription`: the inventory of its parts (paths, monitor
procedures, conditions, queues, guards, state variables, …) and, per
specification constraint, which parts realize it and through which mechanism
constructs (see DESIGN.md §2, "Substitutions").

The analysis layer (:mod:`repro.analysis`) computes directness matrices and
modification distances purely from these descriptions — no human in the loop.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .information import InformationType


class Directness(enum.Enum):
    """How straightforwardly a constraint / information type is handled
    (§4.1's expressive-power judgement, made discrete)."""

    DIRECT = "direct"
    """The mechanism has a construct for it and the solution uses it
    (e.g. condition queues for request order, crowds for sync state)."""

    INDIRECT = "indirect"
    """Expressible, but only by stepping outside the mechanism's intended
    style — extra synchronization procedures, hand-maintained counts,
    encodings (the path-expression 'gates' of §5.1.1)."""

    UNSUPPORTED = "unsupported"
    """No reasonable realization within the mechanism."""

    def __str__(self) -> str:
        return self.value

    @property
    def rank(self) -> int:
        """DIRECT(2) > INDIRECT(1) > UNSUPPORTED(0) — for aggregation."""
        return {"direct": 2, "indirect": 1, "unsupported": 0}[self.value]


def best(a: "Directness", b: "Directness") -> "Directness":
    """The more direct of two judgements."""
    return a if a.rank >= b.rank else b


def worst(a: "Directness", b: "Directness") -> "Directness":
    """The less direct of two judgements."""
    return a if a.rank <= b.rank else b


@dataclass(frozen=True)
class Component:
    """One identifiable part of a solution.

    Attributes:
        name: stable name within the solution (``path:exclusion``,
            ``proc:start_read``, ``cond:ok_to_read``, ``var:readercount``…).
        kind: vocabulary word — ``path``, ``procedure``, ``sync_procedure``,
            ``condition``, ``queue``, ``crowd``, ``guard``, ``variable``,
            ``semaphore``, ``counter``, ``priority_queue``.
        text: the component's content (path source text, pseudocode) —
            compared verbatim by the structural differ.
    """

    name: str
    kind: str
    text: str = ""


@dataclass(frozen=True)
class ConstraintRealization:
    """How one specification constraint is implemented in a solution.

    Attributes:
        constraint_id: the :class:`Constraint` id from the problem spec.
        components: names of the :class:`Component` objects that participate
            in implementing this constraint.
        constructs: the mechanism features used (free vocabulary:
            ``burst``, ``selection``, ``condition_queue``, ``priority_wait``,
            ``crowd``, ``guarantee``, ``sync_procedure``, ``guard`` …).
        directness: the §4.1 judgement for this constraint.
        info_handling: per information type used by this constraint, how the
            solution accesses it.
        notes: free-form rationale (shows up in reports).
    """

    constraint_id: str
    components: Tuple[str, ...]
    constructs: Tuple[str, ...]
    directness: Directness
    info_handling: Dict[InformationType, Directness] = field(default_factory=dict)
    notes: str = ""


@dataclass(frozen=True)
class ModularityProfile:
    """The §2 modularity judgement for one solution.

    Attributes:
        synchronization_with_resource: requirement 1 — synchronization lives
            with the resource abstraction, not at points of use.
        resource_separable: requirement 2 — the unsynchronized resource and
            the synchronizer are separable sub-abstractions.
        enforced_by_mechanism: the structure is guaranteed by the mechanism
            itself rather than by programmer discipline (the monitor/
            serializer distinction of §5.2).
        notes: rationale.
    """

    synchronization_with_resource: bool
    resource_separable: bool
    enforced_by_mechanism: bool
    notes: str = ""


@dataclass(frozen=True)
class SolutionDescription:
    """The complete machine-readable structure of one solution."""

    problem: str
    mechanism: str
    components: Tuple[Component, ...]
    realizations: Tuple[ConstraintRealization, ...]
    modularity: ModularityProfile
    notes: str = ""

    def component(self, name: str) -> Component:
        """Look up a component by name (raises ``KeyError``)."""
        for comp in self.components:
            if comp.name == name:
                return comp
        raise KeyError(
            "solution {}/{} has no component {!r}".format(
                self.problem, self.mechanism, name
            )
        )

    def realization(self, constraint_id: str) -> ConstraintRealization:
        """Look up the realization of a constraint (raises ``KeyError``)."""
        for r in self.realizations:
            if r.constraint_id == constraint_id:
                return r
        raise KeyError(
            "solution {}/{} does not realize constraint {!r}".format(
                self.problem, self.mechanism, constraint_id
            )
        )

    def realized_constraint_ids(self) -> Tuple[str, ...]:
        """Ids of all constraints this solution claims to realize."""
        return tuple(r.constraint_id for r in self.realizations)

    def components_for(self, constraint_id: str) -> Tuple[Component, ...]:
        """The component objects realizing one constraint."""
        wanted = set(self.realization(constraint_id).components)
        return tuple(c for c in self.components if c.name in wanted)

    def validate(self) -> List[str]:
        """Internal consistency check; returns a list of problems found.

        Every realization must reference only declared components, and
        component names must be unique.
        """
        issues: List[str] = []
        names = [c.name for c in self.components]
        if len(names) != len(set(names)):
            issues.append("duplicate component names")
        known = set(names)
        for r in self.realizations:
            for ref in r.components:
                if ref not in known:
                    issues.append(
                        "realization {!r} references unknown component "
                        "{!r}".format(r.constraint_id, ref)
                    )
        return issues
