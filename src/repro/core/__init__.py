"""The paper's primary contribution: the evaluation methodology (S10).

Sections of the paper map to modules as follows:

* §3 information types → :mod:`repro.core.information`
* §3 constraint taxonomy → :mod:`repro.core.constraints`
* §3/footnote 2 problem catalog → :mod:`repro.core.problems`,
  :mod:`repro.core.catalog`
* §4 criteria → :mod:`repro.core.criteria`
* §2 modularity + solution structure → :mod:`repro.core.solution`
* the engine and reports → :mod:`repro.core.evaluation`,
  :mod:`repro.core.report`
"""

from .catalog import (
    ALARM_CLOCK,
    BOUNDED_BUFFER,
    DISK_SCHEDULER,
    FCFS_RESOURCE,
    FOOTNOTE2_SUITE,
    MODIFICATION_PROBES,
    ONE_SLOT_BUFFER,
    PROBLEM_CATALOG,
    READERS_PRIORITY_DB,
    RW_FCFS_DB,
    STAGED_QUEUE,
    WRITERS_PRIORITY_DB,
    coverage_matrix,
    uncovered_types,
)
from .constraints import Constraint, ConstraintKind
from .criteria import (
    constraint_kind_support,
    expressive_power,
    gate_usage,
    modularity_summary,
)
from .evaluation import EvaluationEntry, EvaluationReport, Evaluator
from .information import ALL_INFORMATION_TYPES, InformationType
from .pairs import (
    all_pairs,
    conflicting_pairs,
    pair_coverage,
    render_pair_coverage,
    uncovered_pairs,
)
from .problems import ProblemSpec
from .report import (
    ascii_table,
    render_coverage,
    render_expressive_power,
    render_kind_support,
    render_modularity,
)
from .solution import (
    Component,
    ConstraintRealization,
    Directness,
    ModularityProfile,
    SolutionDescription,
    best,
    worst,
)

__all__ = [
    "ALARM_CLOCK",
    "ALL_INFORMATION_TYPES",
    "BOUNDED_BUFFER",
    "Component",
    "Constraint",
    "ConstraintKind",
    "ConstraintRealization",
    "DISK_SCHEDULER",
    "Directness",
    "EvaluationEntry",
    "EvaluationReport",
    "Evaluator",
    "FCFS_RESOURCE",
    "FOOTNOTE2_SUITE",
    "InformationType",
    "MODIFICATION_PROBES",
    "ModularityProfile",
    "ONE_SLOT_BUFFER",
    "PROBLEM_CATALOG",
    "ProblemSpec",
    "READERS_PRIORITY_DB",
    "RW_FCFS_DB",
    "STAGED_QUEUE",
    "SolutionDescription",
    "WRITERS_PRIORITY_DB",
    "all_pairs",
    "ascii_table",
    "conflicting_pairs",
    "pair_coverage",
    "render_pair_coverage",
    "uncovered_pairs",
    "best",
    "constraint_kind_support",
    "coverage_matrix",
    "expressive_power",
    "gate_usage",
    "modularity_summary",
    "render_coverage",
    "render_expressive_power",
    "render_kind_support",
    "render_modularity",
    "uncovered_types",
    "worst",
]
