"""The canonical test-problem catalog.

Footnote 2 of the paper fixes the suite used in the original evaluations:

    "the bounded buffer problem to represent use of local state information,
    a first come first serve scheme for request time, a readers_priority
    database [8] for request type and synchronization state, the disk
    scheduler problem and alarmclock problem [13] to make use of parameters
    passed, and the one-slot buffer [7] for history information."

Section 4.2 adds the writers-priority and FCFS readers-writers variants as
modification probes, and Section 5.2 adds the hierarchical-resource and
two-stage-queuing situations.  This module defines all of them as
:class:`ProblemSpec` values and verifies the coverage claim programmatically
(:func:`coverage_matrix`, :func:`uncovered_types`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from .constraints import Constraint
from .information import ALL_INFORMATION_TYPES, InformationType
from .problems import ProblemSpec

T1 = InformationType.REQUEST_TYPE
T2 = InformationType.REQUEST_TIME
T3 = InformationType.PARAMETERS
T4 = InformationType.SYNC_STATE
T5 = InformationType.LOCAL_STATE
T6 = InformationType.HISTORY

# ----------------------------------------------------------------------
# Shared constraint definitions.  Constraints reused across problems carry
# the SAME id — the ease-of-use analysis keys on this (§4.2).
# ----------------------------------------------------------------------

#: Readers share; a writer excludes readers and other writers.
RW_EXCLUSION = Constraint.exclusion(
    "rw_exclusion",
    {T1, T4},
    "readers may proceed concurrently; a writer excludes all other users",
)

READERS_PRIORITY = Constraint.priority(
    "readers_priority",
    {T1},
    "when both readers and writers wait, readers enter first",
)

WRITERS_PRIORITY = Constraint.priority(
    "writers_priority",
    {T1},
    "when both readers and writers wait, writers enter first",
)

ARRIVAL_ORDER = Constraint.priority(
    "arrival_order",
    {T2},
    "requests are granted in strict order of arrival",
)

BUFFER_BOUNDS = Constraint.exclusion(
    "buffer_bounds",
    {T5},
    "no get when the buffer is empty; no put when the buffer is full",
)

BUFFER_MUTEX = Constraint.exclusion(
    "buffer_mutex",
    {T4},
    "buffer operations do not overlap",
)

SLOT_ALTERNATION = Constraint.exclusion(
    "slot_alternation",
    {T6},
    "put and get strictly alternate, starting with put",
)

RESOURCE_MUTEX = Constraint.exclusion(
    "resource_mutex",
    {T4},
    "at most one process uses the resource at a time",
)

ELEVATOR_ORDER = Constraint.priority(
    "elevator_order",
    {T3},
    "pending requests are served in elevator (SCAN) order of track number",
)

DEADLINE_ORDER = Constraint.priority(
    "deadline_order",
    {T3},
    "sleeping processes wake when the clock reaches their requested time, "
    "earliest deadline first",
)

CLASS_PRIORITY = Constraint.priority(
    "class_priority",
    {T1},
    "class-A requests have priority over class-B requests",
)

FCFS_WITHIN_CLASS = Constraint.priority(
    "fcfs_within_class",
    {T2},
    "within each request class, requests are served in arrival order",
)

# ----------------------------------------------------------------------
# The problems
# ----------------------------------------------------------------------

BOUNDED_BUFFER = ProblemSpec(
    name="bounded_buffer",
    title="Bounded buffer",
    operations=("put", "get"),
    constraints=(BUFFER_BOUNDS, BUFFER_MUTEX),
    source="Dijkstra [9]; chosen for local state information",
    covers=frozenset({T5}),
)

FCFS_RESOURCE = ProblemSpec(
    name="fcfs_resource",
    title="First-come-first-served resource",
    operations=("acquire", "release"),
    constraints=(RESOURCE_MUTEX, ARRIVAL_ORDER),
    source="paper footnote 2; chosen for request time information",
    covers=frozenset({T2}),
)

READERS_PRIORITY_DB = ProblemSpec(
    name="readers_priority",
    title="Readers-priority database",
    operations=("read", "write"),
    constraints=(RW_EXCLUSION, READERS_PRIORITY),
    source="Courtois, Heymans, Parnas [8]; chosen for request type and "
    "synchronization state",
    covers=frozenset({T1, T4}),
)

WRITERS_PRIORITY_DB = ProblemSpec(
    name="writers_priority",
    title="Writers-priority database",
    operations=("read", "write"),
    constraints=(RW_EXCLUSION, WRITERS_PRIORITY),
    source="Courtois, Heymans, Parnas [8]; §4.2 modification probe",
    covers=frozenset({T1, T4}),
)

RW_FCFS_DB = ProblemSpec(
    name="rw_fcfs",
    title="Readers-writers, first-come-first-served",
    operations=("read", "write"),
    constraints=(RW_EXCLUSION, ARRIVAL_ORDER),
    source="§4.2 modification probe (same exclusion, request-time priority)",
    covers=frozenset({T1, T2, T4}),
)

DISK_SCHEDULER = ProblemSpec(
    name="disk_scheduler",
    title="Disk head scheduler",
    operations=("request", "release"),
    constraints=(RESOURCE_MUTEX, ELEVATOR_ORDER),
    source="Hoare [13]; chosen for request parameters",
    covers=frozenset({T3}),
)

ALARM_CLOCK = ProblemSpec(
    name="alarm_clock",
    title="Alarm clock",
    operations=("wakeme", "tick"),
    constraints=(DEADLINE_ORDER,),
    source="Hoare [13]; chosen for request parameters",
    covers=frozenset({T3}),
)

ONE_SLOT_BUFFER = ProblemSpec(
    name="one_slot_buffer",
    title="One-slot buffer",
    operations=("put", "get"),
    constraints=(SLOT_ALTERNATION,),
    source="Campbell, Habermann [7]; chosen for history information",
    covers=frozenset({T6}),
)

STAGED_QUEUE = ProblemSpec(
    name="staged_queue",
    title="Class priority with FCFS within class",
    operations=("acquire_a", "acquire_b", "release"),
    constraints=(RESOURCE_MUTEX, CLASS_PRIORITY, FCFS_WITHIN_CLASS),
    source="§5.2 two-stage queuing: request type and request time together",
    covers=frozenset({T1, T2}),
)

#: Every problem in the suite, in the paper's presentation order.
PROBLEM_CATALOG: Dict[str, ProblemSpec] = {
    spec.name: spec
    for spec in (
        BOUNDED_BUFFER,
        FCFS_RESOURCE,
        READERS_PRIORITY_DB,
        WRITERS_PRIORITY_DB,
        RW_FCFS_DB,
        DISK_SCHEDULER,
        ALARM_CLOCK,
        ONE_SLOT_BUFFER,
        STAGED_QUEUE,
    )
}

#: The minimal footnote-2 suite (the paper's own evaluation set).
FOOTNOTE2_SUITE: Tuple[str, ...] = (
    "bounded_buffer",
    "fcfs_resource",
    "readers_priority",
    "disk_scheduler",
    "alarm_clock",
    "one_slot_buffer",
)

#: The §4.2 modification probes: (from, to, shared constraint ids).
MODIFICATION_PROBES: Tuple[Tuple[str, str], ...] = (
    ("readers_priority", "writers_priority"),
    ("readers_priority", "rw_fcfs"),
)


def coverage_matrix(
    suite: Tuple[str, ...] = FOOTNOTE2_SUITE,
) -> Dict[str, FrozenSet[InformationType]]:
    """Which information types each suite problem covers."""
    return {name: PROBLEM_CATALOG[name].covers for name in suite}


def uncovered_types(
    suite: Tuple[str, ...] = FOOTNOTE2_SUITE,
) -> List[InformationType]:
    """Information types not covered by the suite (empty for the paper's
    footnote-2 set — the completeness claim the methodology rests on)."""
    covered: FrozenSet[InformationType] = frozenset()
    for name in suite:
        covered |= PROBLEM_CATALOG[name].covers
    return [t for t in ALL_INFORMATION_TYPES if t not in covered]
