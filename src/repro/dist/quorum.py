"""Quorum leases: time-bounded exclusive grants over a server majority.

This generalizes :mod:`repro.recover.leases` from "reclaim on observed
crash" to the partitioned setting, where crash and partition are
indistinguishable.  The mechanism:

* Each :class:`LeaseServer` hands out at most one *grant* at a time, valid
  until an expiry tick on the shared virtual clock.  A grant is only
  reissued to a different client after the previous one has expired.
* A :class:`QuorumLease` client holds the lease only while it has
  unexpired grants from a **majority** of servers, and treats the earliest
  of those expiries as its own validity horizon.

Safety argument (see DESIGN.md §12): two clients both considering
themselves holders at the same instant would each need a majority of
unexpired grants; majorities intersect, so some server would have to have
two unexpired grants outstanding at once — which the per-server rule
forbids.  A holder cut off by a partition therefore simply *expires*: it
cannot renew (no quorum reachable), stops treating the lease as valid at
its horizon, and the majority side can re-acquire only after every grant
the old holder might still trust has expired.  At no virtual-clock tick
are there two valid holders, which is exactly what the
``no-two-holders-across-partition`` oracle checks from the trace events
emitted here (``lease_grant``/``lease_deny``/``lease_acquired``/
``lease_expired``/``lease_released``).
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence

from ..recover.backoff import BackoffLike
from .protocol import Msg, Node

#: Message vocabulary.
ACQUIRE = "lease.acquire"
RELEASE = "lease.release"
GRANT = "lease.grant"
DENY = "lease.deny"


class LeaseServer:
    """The server half: one exclusive, expiring grant.

    Embed in a server process's message loop::

        handled = yield from server.handle(msg)

    Retransmitted acquires are idempotent: the current holder asking again
    is re-granted (renewal), anyone else is denied until the grant
    expires.
    """

    def __init__(self, node: Node, duration: int = 20) -> None:
        self.node = node
        self.duration = duration
        self.holder: Optional[str] = None
        self.expiry = 0

    @property
    def _now(self) -> int:
        return self.node.sched.now

    def _expired(self) -> bool:
        return self.holder is None or self._now >= self.expiry

    def handle(self, msg: Msg) -> Generator:
        """Process one message if it is lease traffic.  Returns ``True``
        when consumed, ``False`` when the caller should handle it."""
        if msg.kind == ACQUIRE:
            if self._expired() or msg.src == self.holder:
                self.holder = msg.src
                self.expiry = self._now + int(msg.payload or self.duration)
                self.node.sched.log(
                    "lease_grant", self.node.id,
                    {"holder": self.holder, "until": self.expiry})
                yield from self.node.reply(msg, GRANT, payload=self.expiry)
            else:
                self.node.sched.log(
                    "lease_deny", self.node.id,
                    {"to": msg.src, "holder": self.holder,
                     "until": self.expiry})
                yield from self.node.reply(msg, DENY, payload=self.expiry)
            return True
        if msg.kind == RELEASE:
            if msg.src == self.holder:
                self.holder = None
                self.expiry = 0
            return True
        return False


class QuorumLease:
    """The client half: acquire grants from a majority of ``servers``.

    Args:
        node: the protocol participant doing the acquiring.
        servers: lease-server node names (majority = ``len//2 + 1``).
        duration: requested grant length in virtual ticks.
        timeout / attempts / backoff: per-server request policy, passed to
            :meth:`Node.request`.
    """

    def __init__(
        self,
        node: Node,
        servers: Sequence[str],
        duration: int = 20,
        timeout: int = 8,
        attempts: int = 2,
        backoff: BackoffLike = None,
    ) -> None:
        self.node = node
        self.servers = list(servers)
        self.duration = duration
        self.timeout = timeout
        self.attempts = attempts
        self.backoff = backoff
        self.expires_at: Optional[int] = None
        self._granted: List[str] = []
        self._expiry_logged = False

    @property
    def majority(self) -> int:
        return len(self.servers) // 2 + 1

    @property
    def valid(self) -> bool:
        """True while the client may treat itself as the holder: a
        majority was granted and the earliest grant has not expired."""
        if self.expires_at is None:
            return False
        if self.node.sched.now < self.expires_at:
            return True
        if not self._expiry_logged:
            self._expiry_logged = True
            self.node.sched.log(
                "lease_expired", self.node.id,
                {"at": self.node.sched.now, "horizon": self.expires_at})
        return False

    def acquire(self) -> Generator:
        """One acquisition round.  Returns ``True`` on majority success
        (``lease_acquired`` logged with the validity horizon), ``False``
        otherwise (``lease_rejected`` logged; any minority grants are
        released so they age out no slower than they would anyway)."""
        grants: List[int] = []
        granted: List[str] = []
        for srv in self.servers:
            reply = yield from self.node.try_request(
                srv, ACQUIRE, payload=self.duration,
                timeout=self.timeout, attempts=self.attempts,
                backoff=self.backoff)
            if reply is not None and reply.kind == GRANT:
                grants.append(int(reply.payload))
                granted.append(srv)
        if len(grants) >= self.majority:
            self.expires_at = min(grants)
            self._granted = granted
            self._expiry_logged = False
            self.node.sched.log(
                "lease_acquired", self.node.id,
                {"grants": len(grants), "of": len(self.servers),
                 "until": self.expires_at})
            return True
        self.node.sched.log(
            "lease_rejected", self.node.id,
            {"grants": len(grants), "of": len(self.servers),
             "need": self.majority})
        yield from self._release_servers(granted)
        return False

    def release(self) -> Generator:
        """Give the lease up early.  Best-effort fire-and-forget: a lost
        release just means the grant ages out at its expiry."""
        if self.expires_at is not None:
            self.node.sched.log(
                "lease_released", self.node.id,
                {"at": self.node.sched.now})
        self.expires_at = None
        granted, self._granted = self._granted, []
        yield from self._release_servers(granted)

    def _release_servers(self, granted: List[str]) -> Generator:
        for srv in granted:
            yield from self.node.send(srv, RELEASE)
