"""Quorum leases: time-bounded exclusive grants over a server majority.

This generalizes :mod:`repro.recover.leases` from "reclaim on observed
crash" to the partitioned setting, where crash and partition are
indistinguishable.  The mechanism:

* Each :class:`LeaseServer` hands out at most one *grant* at a time, valid
  until an expiry tick on the shared virtual clock.  A grant is only
  reissued to a different client after the previous one has expired.
* A :class:`QuorumLease` client holds the lease only while it has
  unexpired grants from a **majority** of servers, and treats the earliest
  of those expiries as its own validity horizon.

Safety argument (see DESIGN.md §12): two clients both considering
themselves holders at the same instant would each need a majority of
unexpired grants; majorities intersect, so some server would have to have
two unexpired grants outstanding at once — which the per-server rule
forbids.  A holder cut off by a partition therefore simply *expires*: it
cannot renew (no quorum reachable), stops treating the lease as valid at
its horizon, and the majority side can re-acquire only after every grant
the old holder might still trust has expired.  At no virtual-clock tick
are there two valid holders, which is exactly what the
``no-two-holders-across-partition`` oracle checks from the trace events
emitted here (``lease_grant``/``lease_deny``/``lease_acquired``/
``lease_expired``/``lease_released``).

Two refinements for the combined-fault (crash-restart × partition) story:

* **Fencing tokens** (Aspnes; Kleppmann's lease critique): every server
  keeps a monotone ``epoch`` that advances each time a grant starts a
  *new session* (previous grant expired or absent) and stays put across
  renewals.  A majority acquisition's fencing token is the largest epoch
  among its grants; because any two majorities intersect, a later
  session's token is strictly greater than an earlier one's.  The token
  rides in the ``GRANT`` payload and is checked *at the resource*
  (:class:`~repro.resilience.fencing.FencedResource`), so a restarted or
  partitioned stale holder is rejected rather than trusted — validity is
  a volatile, clock-anchored fact that must not be resurrected from disk.
* **Durable state**: both halves accept an optional ``store`` (a
  :class:`~repro.resilience.durable.DurableNamespace`).  A server persists
  ``(holder, expiry, epoch)`` so a restarted replica cannot double-grant
  or mint a stale token; what a *client* should persist is deliberately
  its caller's decision — persisting "I am the holder" without the
  horizon is exactly the amnesia bug the resilience scenarios provoke.

**Expiry-tie semantics** (pinned, mirroring the timeout-vs-claim tie in
the channels mechanism): a grant is valid on the half-open interval
``[grant_tick, expiry)``.  At the exact tick ``now == expiry`` the grant
is *expired* — a competing acquire arriving on that tick wins, whichever
side the scheduler happens to run first, because :meth:`LeaseServer.
_expired` compares ``now >= expiry`` against the shared virtual clock
rather than racing on wakeup order.  The holder-side view agrees:
:attr:`QuorumLease.valid` is false once ``now == expires_at``.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Sequence

from ..recover.backoff import BackoffLike
from .protocol import Msg, Node

#: Message vocabulary.
ACQUIRE = "lease.acquire"
RELEASE = "lease.release"
GRANT = "lease.grant"
DENY = "lease.deny"


class LeaseServer:
    """The server half: one exclusive, expiring grant.

    Embed in a server process's message loop::

        handled = yield from server.handle(msg)

    Retransmitted acquires are idempotent: the current holder asking again
    is re-granted (renewal, same fencing epoch), anyone else is denied
    until the grant expires.  A grant is valid on ``[grant, expiry)``: at
    the exact expiry tick a competing acquire already wins (see the module
    docstring for the pinned tie semantics).

    ``store`` (optional :class:`~repro.resilience.durable.
    DurableNamespace`) persists ``(holder, expiry, epoch)`` so a restarted
    server incarnation neither double-grants nor reuses an epoch.
    """

    def __init__(self, node: Node, duration: int = 20,
                 store: Optional[Any] = None) -> None:
        self.node = node
        self.duration = duration
        self.store = store
        self.holder: Optional[str] = None
        self.expiry = 0
        self.epoch = 0
        if store is not None:
            self.holder = store.get("lease.holder")
            self.expiry = store.get("lease.expiry", 0)
            self.epoch = store.get("lease.epoch", 0)

    @property
    def _now(self) -> int:
        return self.node.sched.now

    def _expired(self) -> bool:
        # >= and not >: the expiry tick itself belongs to the challenger.
        return self.holder is None or self._now >= self.expiry

    def _persist(self) -> None:
        if self.store is not None:
            self.store.put("lease.holder", self.holder)
            self.store.put("lease.expiry", self.expiry)
            self.store.put("lease.epoch", self.epoch)

    def handle(self, msg: Msg) -> Generator:
        """Process one message if it is lease traffic.  Returns ``True``
        when consumed, ``False`` when the caller should handle it."""
        if msg.kind == ACQUIRE:
            if self._expired() or msg.src == self.holder:
                if self._expired():
                    # A new session (not a renewal): the fencing token
                    # advances so any still-live older holder is fenceable.
                    self.epoch += 1
                self.holder = msg.src
                self.expiry = self._now + int(msg.payload or self.duration)
                self._persist()
                self.node.sched.log(
                    "lease_grant", self.node.id,
                    {"holder": self.holder, "until": self.expiry,
                     "token": self.epoch})
                yield from self.node.reply(
                    msg, GRANT,
                    payload={"until": self.expiry, "token": self.epoch})
            else:
                self.node.sched.log(
                    "lease_deny", self.node.id,
                    {"to": msg.src, "holder": self.holder,
                     "until": self.expiry})
                yield from self.node.reply(msg, DENY, payload=self.expiry)
            return True
        if msg.kind == RELEASE:
            if msg.src == self.holder:
                self.holder = None
                self.expiry = 0
                self._persist()
            return True
        return False


class QuorumLease:
    """The client half: acquire grants from a majority of ``servers``.

    Args:
        node: the protocol participant doing the acquiring.
        servers: lease-server node names (majority = ``len//2 + 1``).
        duration: requested grant length in virtual ticks.
        timeout / attempts / backoff: per-server request policy, passed to
            :meth:`Node.request`.
    """

    def __init__(
        self,
        node: Node,
        servers: Sequence[str],
        duration: int = 20,
        timeout: int = 8,
        attempts: int = 2,
        backoff: BackoffLike = None,
    ) -> None:
        self.node = node
        self.servers = list(servers)
        self.duration = duration
        self.timeout = timeout
        self.attempts = attempts
        self.backoff = backoff
        self.expires_at: Optional[int] = None
        #: Fencing token of the current acquisition: the largest grant
        #: epoch among the majority.  Majorities intersect, so a later
        #: session's token is strictly greater than any earlier one's.
        self.token: Optional[int] = None
        self._granted: List[str] = []
        self._expiry_logged = False

    @property
    def majority(self) -> int:
        return len(self.servers) // 2 + 1

    @property
    def valid(self) -> bool:
        """True while the client may treat itself as the holder: a
        majority was granted and the earliest grant has not expired."""
        if self.expires_at is None:
            return False
        if self.node.sched.now < self.expires_at:
            return True
        if not self._expiry_logged:
            self._expiry_logged = True
            self.node.sched.log(
                "lease_expired", self.node.id,
                {"at": self.node.sched.now, "horizon": self.expires_at})
        return False

    def acquire(self) -> Generator:
        """One acquisition round.  Returns ``True`` on majority success
        (``lease_acquired`` logged with the validity horizon), ``False``
        otherwise (``lease_rejected`` logged; any minority grants are
        released so they age out no slower than they would anyway)."""
        grants: List[int] = []
        tokens: List[int] = []
        granted: List[str] = []
        for srv in self.servers:
            reply = yield from self.node.try_request(
                srv, ACQUIRE, payload=self.duration,
                timeout=self.timeout, attempts=self.attempts,
                backoff=self.backoff)
            if reply is not None and reply.kind == GRANT:
                grants.append(int(reply.payload["until"]))
                tokens.append(int(reply.payload["token"]))
                granted.append(srv)
        if len(grants) >= self.majority:
            self.expires_at = min(grants)
            self.token = max(tokens)
            self._granted = granted
            self._expiry_logged = False
            self.node.sched.log(
                "lease_acquired", self.node.id,
                {"grants": len(grants), "of": len(self.servers),
                 "until": self.expires_at, "token": self.token})
            return True
        self.node.sched.log(
            "lease_rejected", self.node.id,
            {"grants": len(grants), "of": len(self.servers),
             "need": self.majority})
        yield from self._release_servers(granted)
        return False

    def release(self) -> Generator:
        """Give the lease up early.  Best-effort fire-and-forget: a lost
        release just means the grant ages out at its expiry."""
        if self.expires_at is not None:
            self.node.sched.log(
                "lease_released", self.node.id,
                {"at": self.node.sched.now})
        self.expires_at = None
        self.token = None
        granted, self._granted = self._granted, []
        yield from self._release_servers(granted)

    def _release_servers(self, granted: List[str]) -> Generator:
        for srv in granted:
            yield from self.node.send(srv, RELEASE)
