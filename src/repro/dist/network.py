"""The network: per-node mailboxes with NetPlan interposition.

A :class:`Network` turns the channels mechanism into a message-passing
substrate: every *node* (named process group) owns one :class:`NetChannel`
inbox — a buffered :class:`~repro.mechanisms.channels.Channel` whose
``send`` is interposed by a :class:`~repro.dist.netplan.NetPlan`.  Sends
never block (the mailbox is unbounded, delivery is the network's job);
receives are the ordinary channel receive, ``timeout=`` included, so the
protocol runtime's retry/backoff machinery applies unchanged.

Fault application is entirely trace-visible:

=================  =====================================================
event kind         meaning
=================  =====================================================
``msg_send``       a process handed a message to the network
``msg_deliver``    the network deposited it in the destination inbox
``msg_drop``       the plan discarded it (detail says why: a link rule
                   or an active ``partition``)
``msg_dup``        a duplicate copy was deposited
``msg_delay``      delivery was deferred (detail carries the due tick)
``msg_hold``       a reorder rule holds it until the next link message
``net_partition``  a scripted partition became active
``net_heal``       a scripted partition healed
=================  =====================================================

Delayed deliveries and partition announcements are driven by a daemon
*pump* process that sleeps on the virtual clock — everything stays a
deterministic function of the (policy, plan) pair, and the heal tick is a
real trace event the MTTR analysis in :mod:`repro.obs.recovery` anchors
on.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..mechanisms.channels import Channel
from ..runtime.process import ProcessState, SimProcess
from ..runtime.scheduler import Scheduler
from .netplan import DELAY, DELIVER, DROP, DUPLICATE, NetPlan, REORDER

#: Mailboxes are modelled as unbounded: delivery discipline (including
#: loss) belongs to the plan, not to buffer backpressure.
_UNBOUNDED = 1 << 30


class NetChannel(Channel):
    """One node's inbox.  ``send`` consults the network's plan; ``receive``
    is the plain buffered-channel receive (with ``timeout=`` support).

    Constructed through :meth:`Network.node`, never directly.
    """

    def __init__(self, network: "Network", node: str) -> None:
        super().__init__(network.sched, name="inbox.{}".format(node),
                         capacity=_UNBOUNDED, peer_fault="ignore")
        self._network = network
        self.node = node

    def send(self, value: Any, timeout: Optional[int] = None) -> Generator:
        """Hand ``value`` to the network addressed to this inbox's node.

        Never blocks (``timeout`` is accepted for interface compatibility
        and ignored); yields one checkpoint so preemptive exploration can
        branch around the send.
        """
        self._network._transmit(self, value)
        yield from self._sched.checkpoint()

    def crash_reclaim(self, proc: SimProcess) -> Optional[str]:
        """A node's inbox never quarantines (``peer_fault="ignore"``):
        crash means silence, detected by timeouts — so reclamation only
        drops the corpse from the user set."""
        self._users.discard(proc.pid)
        return None

    def drain(self) -> int:
        """Discard every queued-but-undelivered message; returns how many
        were dropped.  The rejoin *quarantine* discipline: a restarted
        node's first incarnation may have left half-consumed conversation
        in its inbox, and replaying it to the fresh incarnation would hand
        volatile protocol state across the restart boundary."""
        dropped = len(self._buffer)
        if dropped:
            self._buffer.clear()
        return dropped


class Network:
    """Per-node mailboxes, a sender→node map, and the fault interposer.

    Args:
        sched: owning scheduler.
        plan: the :class:`NetPlan` to interpose (default: a clean network).
        name: label used for the pump process and trace events.
        latency: baseline per-hop delivery latency in virtual ticks.  The
            default 0 delivers within the sender's step (handy for unit
            tests); the scenarios use ``latency=1`` so protocol exchanges
            consume virtual time and a partition can cut a conversation
            mid-flight.  A message whose delivery tick lands inside a
            partition is lost at the boundary.

    Message accounting (``sent`` / ``delivered`` / ``dropped`` /
    ``duplicated`` / ``delayed``) is kept as plain counters so benches can
    report message overhead without re-scanning the trace.
    """

    def __init__(self, sched: Scheduler, plan: Optional[NetPlan] = None,
                 name: str = "net", latency: int = 0) -> None:
        self.sched = sched
        self.plan = plan or NetPlan()
        self.name = name
        self.latency = latency
        self.plan.begin()
        self._endpoints: Dict[str, NetChannel] = {}
        self._groups: Dict[str, str] = {}          # process name -> node
        self._in_flight: list = []                 # heap of (due, seq, chan, value, link)
        self._held: Dict[Tuple[str, str], List[Tuple[NetChannel, Any]]] = {}
        self._seq = 0
        self._pump: Optional[SimProcess] = None
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        #: node -> peak inbox depth ever observed right after a deposit —
        #: the backlog a slow or partitioned-off node accumulates.
        self.inbox_peak: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def node(self, node_id: str) -> NetChannel:
        """The inbox of ``node_id`` (created on first use)."""
        chan = self._endpoints.get(node_id)
        if chan is None:
            chan = NetChannel(self, node_id)
            self._endpoints[node_id] = chan
        return chan

    def assign(self, pname: str, node_id: str) -> None:
        """Place process ``pname`` in node ``node_id`` — the identity the
        plan's ``src`` matching uses.  Unassigned processes are their own
        node (process name == node name)."""
        self._groups[pname] = node_id

    def group_of(self, pname: str) -> str:
        return self._groups.get(pname, pname)

    def _current_group(self) -> str:
        me = self.sched.current
        return self.group_of(me.name) if me is not None else "<sched>"

    def start(self) -> None:
        """Spawn the pump daemon.  Needed whenever the plan delays
        messages or schedules partitions/heals; harmless otherwise.
        Idempotent."""
        if self._pump is None:
            self._pump = self.sched.spawn(
                self._pump_body, name="{}.pump".format(self.name),
                daemon=True,
            )

    # ------------------------------------------------------------------
    # The send path (called from NetChannel.send)
    # ------------------------------------------------------------------
    def _transmit(self, chan: NetChannel, value: Any) -> None:
        src = self._current_group()
        dst = chan.node
        link = "{}->{}".format(src, dst)
        now = self.sched.now
        self.sent += 1
        self.sched.log("msg_send", link, value)
        action, arg = self.plan.verdict(src, dst, now)
        if action == DROP:
            reason = ("partition" if self.plan.partitioned(src, dst, now)
                      else "drop rule")
            self.dropped += 1
            self.sched.log("msg_drop", link, reason)
            return
        if action == DELAY:
            self.delayed += 1
            due = now + arg
            self.sched.log("msg_delay", link, due)
            self._schedule(due, chan, value, link)
            return
        if action == REORDER:
            self.sched.log("msg_hold", link, value)
            self._held.setdefault((src, dst), []).append((chan, value))
            return
        if self.latency > 0:
            self._schedule(now + self.latency, chan, value, link)
            if action == DUPLICATE:
                self.duplicated += 1
                self.sched.log("msg_dup", link, value)
                self._schedule(now + self.latency, chan, value, link)
            return
        self._deliver(chan, value, link)
        if action == DUPLICATE:
            self.duplicated += 1
            self.sched.log("msg_dup", link, value)
            self._deliver(chan, value, link)
        self._flush_held(src, dst)

    def _deliver(self, chan: NetChannel, value: Any, link: str) -> None:
        self.delivered += 1
        self.sched.log("msg_deliver", link, value)
        chan._deposit(value)
        depth = chan.buffered
        if depth > self.inbox_peak.get(chan.node, 0):
            self.inbox_peak[chan.node] = depth
        self.sched.probe("inbox", chan.node, depth)

    def _flush_held(self, src: str, dst: str) -> None:
        """Release reorder-held messages on a link right after a younger
        message got through — the pairwise swap the reorder rule models."""
        held = self._held.pop((src, dst), None)
        if not held:
            return
        for chan, value in held:
            self._deliver(chan, value, "{}->{}".format(src, dst))

    # ------------------------------------------------------------------
    # Delayed delivery + partition announcements (the pump)
    # ------------------------------------------------------------------
    def _schedule(self, due: int, chan: NetChannel, value: Any,
                  link: str) -> None:
        self._seq += 1
        heapq.heappush(self._in_flight, (due, self._seq, chan, value, link))
        self.start()
        self._kick()

    def _kick(self) -> None:
        pump = self._pump
        if pump is not None and pump.state is ProcessState.BLOCKED:
            self.sched.unpark(pump)

    def _announce_due(self, now: int) -> None:
        for p in self.plan.partitions:
            if not p.announced and p.at <= now:
                p.announced = True
                self.sched.log("net_partition", self.name, p.describe())
            if (p.heal_at is not None and not p.healed
                    and p.heal_at <= now):
                p.healed = True
                self.sched.log("net_heal", self.name, p.describe())

    def _next_due(self, now: int) -> Optional[int]:
        dues = []
        if self._in_flight:
            dues.append(self._in_flight[0][0])
        for tick in self.plan.schedule_ticks():
            if tick > now:
                dues.append(tick)
                break
        return min(dues) if dues else None

    def _pump_body(self) -> Generator:
        sched = self.sched
        while True:
            now = sched.now
            self._announce_due(now)
            while self._in_flight and self._in_flight[0][0] <= now:
                __, __, chan, value, link = heapq.heappop(self._in_flight)
                src, __, dst = link.partition("->")
                if self.plan.partitioned(src, dst, now):
                    # The partition closed while the message was in
                    # flight: it is lost at the boundary.
                    self.dropped += 1
                    sched.log("msg_drop", link, "partition")
                    continue
                self._deliver(chan, value, link)
                self._flush_held(src, dst)
            due = self._next_due(now)
            if due is None:
                yield from sched.park(
                    "net_pump", self.name,
                    resource="network {}".format(self.name),
                )
            else:
                yield from sched.sleep(due - now)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Message-overhead counters for benches and reports.  All values
        are ints except ``inbox_peak``, a per-node gauge dict — aggregators
        sum the counters and max-merge the gauges."""
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
            "inbox_peak": dict(self.inbox_peak),
        }
