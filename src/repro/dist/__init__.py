"""Distributed resilience layer: message networks over channels.

Builds a deterministic message-passing substrate on the channels
mechanism — per-node mailboxes interposed by a :class:`NetPlan` (the
message-level sibling of :class:`~repro.runtime.faults.FaultPlan`) — plus
the protocol runtime (stamped messages, dedup, timeout/retry) and quorum
leases that the partition-tolerant scenarios in
:mod:`repro.problems.distributed` are written against.
"""

from .netplan import (DELAY, DELIVER, DROP, DUPLICATE, NetFault, NetPlan,
                      PartitionRule, REORDER)
from .network import NetChannel, Network
from .protocol import Msg, Node
from .quorum import ACQUIRE, DENY, GRANT, LeaseServer, QuorumLease, RELEASE

__all__ = [
    "DELIVER", "DROP", "DUPLICATE", "DELAY", "REORDER",
    "NetFault", "NetPlan", "PartitionRule",
    "Network", "NetChannel",
    "Msg", "Node",
    "LeaseServer", "QuorumLease", "ACQUIRE", "RELEASE", "GRANT", "DENY",
]
