"""NetPlan: the message-level fault plan.

:class:`~repro.runtime.faults.FaultPlan` scripts *process* faults (kills,
delayed wakeups, dropped signals).  A :class:`NetPlan` scripts *network*
faults against the message layer the dist package builds over buffered
channels: per-link drops, duplicates, delays, reorders, and full or
partial **partitions** between named process groups, each with an optional
heal schedule.  Like its process-level sibling it is a deterministic,
replayable script: rules are declared up front with builder methods,
consulted at every send, and reset by :meth:`begin` so one plan instance
can be reused across explored runs.

Every verdict the plan hands out is logged by the network as a first-class
trace event (``msg_drop``, ``msg_dup``, ``msg_delay``, ``msg_hold``,
``net_partition``, ``net_heal``), so the causal/obs layer can attribute
message loss and the partition-recovery MTTR analysis in
:mod:`repro.obs.recovery` can anchor on the exact heal tick.

Addressing is by *node* (process group): the :class:`~repro.dist.network.
Network` maps each sending process to its node, and a rule's ``src`` /
``dst`` may be a node name or the wildcard ``"*"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

#: Verdict actions a send can receive, in the order they are applied.
DELIVER = "deliver"
DROP = "drop"
DUPLICATE = "dup"
DELAY = "delay"
REORDER = "reorder"


@dataclass
class NetFault:
    """One scripted link fault.  Built via the :class:`NetPlan` builder
    methods rather than directly."""

    action: str                 # "drop" | "dup" | "delay" | "reorder"
    src: str                    # sending node, or "*"
    dst: str                    # receiving node, or "*"
    nth: int = 1                # fire on the nth matching message (1-based)
    ticks: int = 0              # delay amount (delay only)
    fired: bool = False

    def matches(self, src: str, dst: str) -> bool:
        return (self.src in ("*", src)) and (self.dst in ("*", dst))

    def describe(self) -> str:
        link = "{}->{}".format(self.src, self.dst)
        if self.action == DROP:
            return "drop message #{} on {}".format(self.nth, link)
        if self.action == DUPLICATE:
            return "duplicate message #{} on {}".format(self.nth, link)
        if self.action == DELAY:
            return "delay message #{} on {} by {} ticks".format(
                self.nth, link, self.ticks)
        return "reorder message #{} on {}".format(self.nth, link)

    def to_dict(self) -> Dict[str, Any]:
        """Portable form (runtime state — ``fired`` — excluded)."""
        out: Dict[str, Any] = {
            "action": self.action, "src": self.src, "dst": self.dst,
            "nth": self.nth,
        }
        if self.action == DELAY:
            out["ticks"] = self.ticks
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "NetFault":
        return cls(
            action=data["action"], src=data["src"], dst=data["dst"],
            nth=int(data.get("nth", 1)), ticks=int(data.get("ticks", 0)),
        )


@dataclass
class PartitionRule:
    """A (possibly partial) partition between two sides, with an optional
    heal tick.  While active, messages crossing sides — either direction —
    are dropped and logged with reason ``partition``."""

    side_a: FrozenSet[str]
    side_b: Optional[FrozenSet[str]]   # None = everything not in side_a
    at: int = 0
    heal_at: Optional[int] = None
    announced: bool = False            # "net_partition" event emitted
    healed: bool = False               # "net_heal" event emitted

    def active(self, now: int) -> bool:
        if now < self.at:
            return False
        return self.heal_at is None or now < self.heal_at

    def _side_of(self, node: str) -> Optional[str]:
        if node in self.side_a:
            return "a"
        if self.side_b is None:
            return "b"
        if node in self.side_b:
            return "b"
        return None

    def blocks(self, src: str, dst: str, now: int) -> bool:
        if not self.active(now):
            return False
        a, b = self._side_of(src), self._side_of(dst)
        return a is not None and b is not None and a != b

    def describe(self) -> str:
        left = ",".join(sorted(self.side_a))
        right = ("rest" if self.side_b is None
                 else ",".join(sorted(self.side_b)))
        healed = ("never heals" if self.heal_at is None
                  else "heals at t={}".format(self.heal_at))
        return "partition {{{}}} | {{{}}} at t={} ({})".format(
            left, right, self.at, healed)

    def to_dict(self) -> Dict[str, Any]:
        """Portable form (announce/heal runtime flags excluded).  Sides are
        sorted lists so equal rules serialize identically."""
        return {
            "side_a": sorted(self.side_a),
            "side_b": None if self.side_b is None else sorted(self.side_b),
            "at": self.at,
            "heal_at": self.heal_at,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PartitionRule":
        side_b = data.get("side_b")
        return cls(
            side_a=frozenset(data["side_a"]),
            side_b=None if side_b is None else frozenset(side_b),
            at=int(data.get("at", 0)),
            heal_at=data.get("heal_at"),
        )


class NetPlan:
    """A deterministic script of network faults, consulted at every send.

    Build with the chaining methods and hand to a
    :class:`~repro.dist.network.Network`::

        plan = (NetPlan()
                .drop("c0", "s1", nth=2)
                .partition(["s0", "s1"], ["s2", "c1"], at=10, heal_at=30))

    One instance may be reused across runs (the partition explorer does):
    :meth:`begin` resets fired-flags, per-rule counters, and partition
    announcement state before each run.
    """

    def __init__(self) -> None:
        self.faults: List[NetFault] = []
        self.partitions: List[PartitionRule] = []
        self._rule_counts: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def drop(self, src: str, dst: str, nth: int = 1) -> "NetPlan":
        """The ``nth`` message from ``src`` to ``dst`` vanishes in flight."""
        return self._rule(DROP, src, dst, nth)

    def duplicate(self, src: str, dst: str, nth: int = 1) -> "NetPlan":
        """The ``nth`` message on the link is delivered twice."""
        return self._rule(DUPLICATE, src, dst, nth)

    def delay(self, src: str, dst: str, ticks: int,
              nth: int = 1) -> "NetPlan":
        """The ``nth`` message is delivered ``ticks`` units of virtual time
        late (later traffic may overtake it)."""
        if ticks <= 0:
            raise ValueError("delay must be positive")
        return self._rule(DELAY, src, dst, nth, ticks=ticks)

    def reorder(self, src: str, dst: str, nth: int = 1) -> "NetPlan":
        """The ``nth`` message is held back until the *next* message on the
        same link is delivered, then released right after it — a minimal
        pairwise reordering."""
        return self._rule(REORDER, src, dst, nth)

    def _rule(self, action: str, src: str, dst: str, nth: int,
              ticks: int = 0) -> "NetPlan":
        if nth < 1:
            raise ValueError("nth is 1-based")
        self.faults.append(NetFault(action, src, dst, nth=nth, ticks=ticks))
        return self

    def partition(
        self,
        side_a: Sequence[str],
        side_b: Optional[Sequence[str]] = None,
        at: int = 0,
        heal_at: Optional[int] = None,
    ) -> "NetPlan":
        """Partition ``side_a`` from ``side_b`` (default: everything else)
        starting at virtual time ``at``; ``heal_at`` removes it (``None``
        = the partition never heals)."""
        if heal_at is not None and heal_at <= at:
            raise ValueError("heal_at must come after at")
        self.partitions.append(PartitionRule(
            side_a=frozenset(side_a),
            side_b=None if side_b is None else frozenset(side_b),
            at=at, heal_at=heal_at,
        ))
        return self

    def isolate(self, node: str, at: int = 0,
                heal_at: Optional[int] = None) -> "NetPlan":
        """Convenience: partition one node away from every other node."""
        return self.partition([node], None, at=at, heal_at=heal_at)

    # ------------------------------------------------------------------
    # Runtime hooks (called by the network)
    # ------------------------------------------------------------------
    def begin(self) -> None:
        """Reset per-run state so the plan can be replayed."""
        for f in self.faults:
            f.fired = False
        for p in self.partitions:
            p.announced = False
            p.healed = False
        self._rule_counts = {}

    def verdict(self, src: str, dst: str,
                now: int) -> Tuple[str, Optional[int]]:
        """The fate of one message sent ``src -> dst`` at ``now``.

        Returns ``(action, arg)``: ``("drop", None)`` (a partition drop is
        reported as a drop — the network distinguishes the reason via
        :meth:`partitioned`), ``("dup", None)``, ``("delay", ticks)``,
        ``("reorder", None)``, or ``("deliver", None)``.  Partitions take
        precedence; link rules fire at most once each, counted over the
        messages matching that rule's own pattern.
        """
        if self.partitioned(src, dst, now):
            return DROP, None
        chosen: Tuple[str, Optional[int]] = (DELIVER, None)
        for idx, fault in enumerate(self.faults):
            if not fault.matches(src, dst):
                continue
            count = self._rule_counts.get(idx, 0) + 1
            self._rule_counts[idx] = count
            if fault.fired or count != fault.nth:
                continue
            fault.fired = True
            if chosen[0] == DELIVER:
                chosen = (fault.action,
                          fault.ticks if fault.action == DELAY else None)
        return chosen

    def partitioned(self, src: str, dst: str, now: int) -> bool:
        """True when an active partition separates ``src`` from ``dst``."""
        return any(p.blocks(src, dst, now) for p in self.partitions)

    def schedule_ticks(self) -> List[int]:
        """Every tick at which the network's visible topology changes
        (partition starts and heals), ascending — the network pump sleeps
        toward these to emit ``net_partition`` / ``net_heal`` events on
        cue even when no traffic flows."""
        ticks = set()
        for p in self.partitions:
            ticks.add(p.at)
            if p.heal_at is not None:
                ticks.add(p.heal_at)
        return sorted(ticks)

    def describe(self) -> List[str]:
        """Human-readable rendering of every scripted fault and
        partition."""
        return ([f.describe() for f in self.faults]
                + [p.describe() for p in self.partitions])

    # ------------------------------------------------------------------
    # Serialization (run store / witness persistence)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-portable form of the *script* (no runtime state): a plan
        round-trips through ``NetPlan.from_dict(plan.to_dict())`` into an
        exactly-replayable equal script — what lets minimized combined
        witnesses be persisted and replayed."""
        return {
            "faults": [f.to_dict() for f in self.faults],
            "partitions": [p.to_dict() for p in self.partitions],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "NetPlan":
        plan = cls()
        plan.faults = [
            NetFault.from_dict(f) for f in data.get("faults", [])]
        plan.partitions = [
            PartitionRule.from_dict(p) for p in data.get("partitions", [])]
        return plan

    def __repr__(self) -> str:
        return "<NetPlan [{}]>".format("; ".join(self.describe()))
