"""Protocol runtime: stamped messages, dedup, timeout/retry request-reply.

The network (:mod:`repro.dist.network`) gives at-most-once, unordered-ish
delivery under a :class:`~repro.dist.netplan.NetPlan`; this module layers
the machinery real distributed protocols assume on top of it:

* :class:`Msg` — a stamped message: ``(src, seq)`` is the dedup key,
  ``term`` carries a protocol epoch, ``reply_to`` threads request/reply.
* :class:`Node` — one protocol participant: an inbox, a monotone sequence
  stamp, **sequence-number dedup** of network-duplicated copies (logged as
  ``msg_dedup``), and a pending buffer so replies awaited out of band
  never swallow unrelated traffic.
* :meth:`Node.request` — per-message timeout/retry built on the recovery
  runtime's deterministic :class:`~repro.recover.backoff.BackoffPolicy`
  family (:func:`~repro.recover.backoff.retry_with_backoff`): each retry
  is a *fresh* transmission answered by an idempotent handler, while the
  dedup layer suppresses copies the network itself duplicated.

Everything stays deterministic on the virtual clock: timeouts are virtual
ticks, backoff is a pure function of the attempt number, and there is no
randomness anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Optional, Sequence, Set, Tuple

from ..runtime.errors import WaitTimeout
from ..recover.backoff import BackoffLike, retry_with_backoff
from .network import Network

#: A request identity: (requesting node, sequence stamp).  Stable across
#: retransmissions of the same logical request.
ReqId = Tuple[str, int]


@dataclass(frozen=True)
class Msg:
    """One protocol message.

    Attributes:
        src: sending node.
        dst: receiving node.
        kind: protocol vocabulary word (``acquire``, ``grant``, ``vote``…).
        seq: per-sender monotone stamp; ``(src, seq)`` dedups duplicates.
        term: protocol epoch (election term, lease generation); 0 when the
            protocol has no epochs.
        payload: free-form content.
        reply_to: the :data:`ReqId` this message answers, if any.
    """

    src: str
    dst: str
    kind: str
    seq: int
    term: int = 0
    payload: Any = None
    reply_to: Optional[ReqId] = None

    def describe(self) -> str:
        base = "{} {}->{} #{}".format(self.kind, self.src, self.dst,
                                      self.seq)
        if self.term:
            base += " t{}".format(self.term)
        return base


class Node:
    """One protocol participant bound to a network node.

    Args:
        network: the message substrate.
        node_id: this participant's node name (also its inbox address).
        peers: the other nodes it talks to (used by :meth:`broadcast`).
        store: optional :class:`~repro.resilience.durable.
            DurableNamespace`.  When given, the sequence stamp is
            *durable*: a restarted incarnation resumes stamping past its
            predecessor's last stamp, so peers' ``(src, seq)`` dedup keys
            never collide across a restart.  The dedup set and pending
            buffer stay volatile — in-flight protocol state dies with the
            process, which is the restart semantics the resilience layer
            studies.

    The owning process should be assigned to ``node_id`` via
    :meth:`Network.assign` (done automatically by :meth:`bind`).
    """

    def __init__(self, network: Network, node_id: str,
                 peers: Sequence[str] = (),
                 store: Optional[Any] = None) -> None:
        self.net = network
        self.id = node_id
        self.peers = [p for p in peers if p != node_id]
        self.inbox = network.node(node_id)
        self.store = store
        self._seq = 0 if store is None else int(store.get("node.seq", 0))
        self._seen: Set[Tuple[str, int]] = set()
        self._pending: List[Msg] = []
        self.duplicates = 0

    def bind(self, pname: str) -> "Node":
        """Register ``pname`` as living on this node (plan ``src``/``dst``
        matching and partition sides use node names)."""
        self.net.assign(pname, self.id)
        return self

    @property
    def sched(self):
        return self.net.sched

    def stamp(self) -> int:
        """A fresh per-sender sequence number (persisted when a durable
        store is attached, so stamps stay monotone across restarts)."""
        self._seq += 1
        if self.store is not None:
            self.store.put("node.seq", self._seq)
        return self._seq

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(
        self,
        dst: str,
        kind: str,
        payload: Any = None,
        term: int = 0,
        seq: Optional[int] = None,
        reply_to: Optional[ReqId] = None,
    ) -> Generator:
        """Fire-and-forget one message (never blocks; the network may
        still drop/delay/duplicate it).  Returns the :class:`Msg` sent."""
        msg = Msg(self.id, dst, kind, seq if seq is not None
                  else self.stamp(), term, payload, reply_to)
        yield from self.net.node(dst).send(msg)
        return msg

    def broadcast(self, kind: str, payload: Any = None,
                  term: int = 0) -> Generator:
        """Send one logical message to every peer (one shared stamp, so a
        duplicated copy dedups no matter which link doubled it)."""
        seq = self.stamp()
        for dst in self.peers:
            yield from self.send(dst, kind, payload, term=term, seq=seq)
        return seq

    def reply(self, to: Msg, kind: str, payload: Any = None,
              term: int = 0) -> Generator:
        """Answer ``to``, threading its ``reply_to`` (or its ``(src,
        seq)`` identity when it carried none)."""
        req_id = to.reply_to or (to.src, to.seq)
        yield from self.send(to.src, kind, payload, term=term,
                             reply_to=req_id)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def _recv_fresh(self, timeout: Optional[int]) -> Generator:
        """One not-seen-before message straight from the inbox.  Network
        duplicates are dropped here (``msg_dedup``), which is exactly the
        sequence-number dedup guarantee: a duplicated grant or vote is
        counted once."""
        while True:
            msg = yield from self.inbox.receive(timeout=timeout)
            key = (msg.src, msg.seq)
            if key in self._seen:
                self.duplicates += 1
                self.sched.log("msg_dedup", self.id, msg.describe())
                continue
            self._seen.add(key)
            return msg

    def receive(self, timeout: Optional[int] = None) -> Generator:
        """The next message for this node: buffered traffic first (set
        aside while a :meth:`request` was awaiting its reply), then fresh
        deduped inbox messages.  ``timeout`` bounds the wait in virtual
        time and raises :class:`WaitTimeout` on expiry."""
        if self._pending:
            return self._pending.pop(0)
        msg = yield from self._recv_fresh(timeout)
        return msg

    # ------------------------------------------------------------------
    # Request / reply with retry
    # ------------------------------------------------------------------
    def request(
        self,
        dst: str,
        kind: str,
        payload: Any = None,
        term: int = 0,
        timeout: int = 8,
        attempts: int = 3,
        backoff: BackoffLike = None,
    ) -> Generator:
        """Send ``kind`` to ``dst`` and wait for the matching reply.

        The request identity ``(self.id, stamp)`` stays fixed across
        retries, so responders can recognise a retransmission; each retry
        is a fresh message (new ``seq``) answered by an idempotent
        handler.  Unrelated messages arriving while waiting are buffered
        for :meth:`receive`.  Exhausting ``attempts`` re-raises the last
        :class:`WaitTimeout`.
        """
        req_id: ReqId = (self.id, self.stamp())

        def attempt(i: int) -> Generator:
            yield from self.send(dst, kind, payload, term=term,
                                 reply_to=req_id)
            while True:
                msg = yield from self._recv_fresh(timeout)
                if msg.reply_to == req_id:
                    return msg
                self._pending.append(msg)

        reply = yield from retry_with_backoff(
            attempt, attempts=attempts, backoff=backoff, sched=self.sched)
        return reply

    def try_request(self, *args, **kwargs) -> Generator:
        """:meth:`request`, but returning ``None`` instead of raising when
        every attempt times out — the shape quorum collection wants."""
        try:
            reply = yield from self.request(*args, **kwargs)
            return reply
        except WaitTimeout:
            return None
