"""Deterministic supervision: respawn crashed processes under the scheduler.

An Erlang-style supervision tree, flattened to one level and made fully
deterministic: the :class:`Supervisor` is itself a (non-daemon) simulated
process that sleeps until a child dies, reclaims whatever the corpse held
(through a :class:`~repro.recover.leases.LeaseManager`), and respawns the
child under the *same name* after a deterministic tick-based backoff.

Restart decisions follow a :class:`RestartPolicy`:

* strategy ``"one_for_one"`` — only the dead child is restarted;
* strategy ``"escalate"``    — once the restart budget is exhausted the
  supervisor kills every remaining child and gives up (failure travels up,
  as it would to a parent supervisor);
* **max-restart intensity** — at most ``max_restarts`` restarts within a
  sliding ``window`` of virtual time (``None`` = the whole run); past the
  budget, one-for-one supervisors *give up* on further restarts (logged as
  ``restart_giveup`` — the run can still end well for the survivors, which
  the recovery classifier calls *degraded*).

Death detection needs no polling: child wrappers register a scheduler crash
cleanup that records the death and wakes the supervisor if it is parked.
Restarts are ordinary ``spawn`` calls, so a restarted incarnation is a
brand-new process (fresh pid) reusing the old name — fault-plan kills fire
once, so a scripted crash never re-kills the replacement.

Everything is replayable: deaths, backoff, and respawns are functions of the
(policy, fault plan) pair, which is what lets the chaos layer explore and
classify *recovery* the same way it explores failure.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional, Tuple

from ..runtime.process import ProcessState, SimProcess
from ..runtime.scheduler import Scheduler
from .backoff import BackoffPolicy, FixedBackoff
from .leases import LeaseManager

ONE_FOR_ONE = "one_for_one"
ESCALATE = "escalate"


class RestartPolicy:
    """How a supervisor reacts to child deaths.

    Args:
        strategy: ``"one_for_one"`` (restart the dead child only) or
            ``"escalate"`` (on budget exhaustion, kill all children and
            stop supervising).
        max_restarts: restart-intensity budget (total restarts allowed
            within ``window``).
        window: sliding window of virtual time the budget applies to;
            ``None`` counts restarts over the whole run.
        backoff: deterministic delay before each respawn, as a function of
            how often *that child* has already been restarted.
    """

    def __init__(
        self,
        strategy: str = ONE_FOR_ONE,
        max_restarts: int = 3,
        window: Optional[int] = None,
        backoff: Optional[BackoffPolicy] = None,
    ) -> None:
        if strategy not in (ONE_FOR_ONE, ESCALATE):
            raise ValueError("unknown strategy {!r}".format(strategy))
        if max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        self.strategy = strategy
        self.max_restarts = max_restarts
        self.window = window
        self.backoff = backoff or FixedBackoff(1)


class _ChildSpec:
    """Book-keeping for one supervised child."""

    __slots__ = ("name", "factory", "proc", "state", "restarts",
                 "incarnations")

    def __init__(self, name: str,
                 factory: Callable[[], Generator]) -> None:
        self.name = name
        self.factory = factory
        self.proc: Optional[SimProcess] = None
        self.state = "running"        # running | done | given_up
        self.restarts = 0             # respawns performed so far
        self.incarnations = 1


class Supervisor:
    """Respawns killed children deterministically.

    Usage::

        sup = Supervisor(sched, RestartPolicy(max_restarts=4),
                         leases=leases)
        sup.child("P0", worker)        # worker: zero-arg generator function
        sup.child("P1", worker)
        sup.start()
        sched.run(on_deadlock="return", on_error="record")

    The supervisor runs as a *non-daemon* process named ``name``: it exits
    once every child is done (or given up) and no restart is pending, so a
    run under supervision terminates exactly when recovery has nothing left
    to do.  Killing the supervisor itself (fault plans may) silently
    disables recovery — the fault-plan search in
    :mod:`repro.recover.search` exploits precisely that single point of
    failure.
    """

    def __init__(
        self,
        sched: Scheduler,
        policy: Optional[RestartPolicy] = None,
        name: str = "sup",
        leases: Optional[LeaseManager] = None,
    ) -> None:
        self._sched = sched
        self.policy = policy or RestartPolicy()
        self.name = name
        self.leases = leases
        self._children: List[_ChildSpec] = []
        self._by_proc: Dict[int, _ChildSpec] = {}   # pid -> spec
        self._proc: Optional[SimProcess] = None
        self._pending_deaths: List[Tuple[_ChildSpec, SimProcess]] = []
        self._pending_restarts: List[Tuple[int, _ChildSpec]] = []  # (due, spec)
        self._restart_stamps: List[int] = []        # times of past restarts
        self._escalated = False
        self.giveups = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def child(self, name: str,
              factory: Callable[[], Generator]) -> "_ChildSpec":
        """Declare a supervised child: ``factory()`` must return a fresh
        generator each time it is called (it is re-invoked on restart)."""
        if self._proc is not None:
            raise RuntimeError("cannot add children after start()")
        spec = _ChildSpec(name, factory)
        self._children.append(spec)
        return spec

    def start(self) -> SimProcess:
        """Spawn every child plus the supervisor process; returns the
        supervisor's process handle."""
        if self._proc is None and not self._children:
            raise RuntimeError("supervisor has no children")
        for spec in self._children:
            self._spawn_child(spec)
        self._proc = self._sched.spawn(self._body, name=self.name)
        return self._proc

    # ------------------------------------------------------------------
    # Child lifecycle plumbing
    # ------------------------------------------------------------------
    def _spawn_child(self, spec: _ChildSpec) -> SimProcess:
        def wrapped(spec=spec):
            result = yield from spec.factory()
            self._on_child_done(spec)
            return result

        proc = self._sched.spawn(wrapped, name=spec.name)
        spec.proc = proc
        spec.state = "running"
        self._by_proc[proc.pid] = spec
        self._sched.register_cleanup(
            ("supervised", id(self)), self._on_child_death, proc=proc
        )
        return proc

    def _on_child_done(self, spec: _ChildSpec) -> None:
        spec.state = "done"
        self._kick()

    def _on_child_death(self, proc: SimProcess) -> None:
        """Crash cleanup registered on every child incarnation: record the
        death for the supervisor loop and wake it."""
        if self._escalated:
            return
        spec = self._by_proc.get(proc.pid)
        if spec is None or spec.proc is not proc:
            return  # a stale incarnation; already superseded
        self._pending_deaths.append((spec, proc))
        self._kick()

    def _kick(self) -> None:
        """Wake the supervisor if it is parked or sleeping."""
        proc = self._proc
        if proc is not None and proc.state is ProcessState.BLOCKED:
            self._sched.unpark(proc)

    # ------------------------------------------------------------------
    # The supervisor loop
    # ------------------------------------------------------------------
    def _body(self) -> Generator:
        sched = self._sched
        while True:
            self._drain_deaths()
            self._fire_due_restarts()
            if self._escalated or self._settled():
                break
            due = self._next_due()
            if due is not None:
                yield from sched.sleep(due - sched.now)
            else:
                yield from sched.park(
                    "supervise", self.name,
                    resource="supervisor {}".format(self.name),
                )
        return self.report()

    def _drain_deaths(self) -> None:
        while self._pending_deaths:
            spec, corpse = self._pending_deaths.pop(0)
            if self.leases is not None:
                self.leases.reclaim(corpse)
            if spec.state != "running" or self._escalated:
                continue
            if not self._budget_left():
                if self.policy.strategy == ESCALATE:
                    self._escalate(spec)
                else:
                    spec.state = "given_up"
                    self.giveups += 1
                    self._sched.log(
                        "restart_giveup", spec.name,
                        "restart budget exhausted", proc=corpse,
                    )
                continue
            self._restart_stamps.append(self._sched.now)
            delay = self.policy.backoff.delay(spec.restarts)
            self._pending_restarts.append((self._sched.now + delay, spec))

    def _budget_left(self) -> bool:
        window = self.policy.window
        if window is not None:
            cutoff = self._sched.now - window
            self._restart_stamps = [
                t for t in self._restart_stamps if t > cutoff
            ]
        return len(self._restart_stamps) < self.policy.max_restarts

    def _fire_due_restarts(self) -> None:
        now = self._sched.now
        still_pending = []
        for due, spec in self._pending_restarts:
            if due > now:
                still_pending.append((due, spec))
                continue
            spec.restarts += 1
            spec.incarnations += 1
            proc = self._spawn_child(spec)
            self._sched.log(
                "restart", spec.name,
                "incarnation:{}".format(spec.incarnations), proc=proc,
            )
        self._pending_restarts = still_pending

    def _escalate(self, spec: _ChildSpec) -> None:
        """Budget exhausted under the escalate strategy: take the whole
        tree down (what handing the failure to a parent supervisor would
        do) and stop supervising."""
        self._escalated = True
        self._sched.log("escalate", self.name, spec.name)
        self._pending_restarts = []
        for child in self._children:
            proc = child.proc
            if (proc is not None and proc.alive
                    and proc is not self._sched.current):
                self._sched.kill(
                    proc, why="escalation by {}".format(self.name)
                )

    def _settled(self) -> bool:
        if self._pending_deaths or self._pending_restarts:
            return False
        return all(
            spec.state in ("done", "given_up") for spec in self._children
        )

    def _next_due(self) -> Optional[int]:
        if not self._pending_restarts:
            return None
        return min(due for due, __ in self._pending_restarts)

    # ------------------------------------------------------------------
    def report(self) -> Dict[str, object]:
        """Summary of supervision activity (also the supervisor process's
        return value, so it lands in ``RunResult.results``)."""
        return {
            "children": {
                spec.name: {
                    "state": spec.state,
                    "restarts": spec.restarts,
                    "incarnations": spec.incarnations,
                }
                for spec in self._children
            },
            "restarts": sum(s.restarts for s in self._children),
            "giveups": self.giveups,
            "escalated": self._escalated,
        }
