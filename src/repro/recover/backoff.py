"""Deterministic backoff policies and the bounded-retry combinator.

Recovery pacing must be as replayable as everything else in the runtime, so
backoff here is a pure function of the attempt number — no wall clocks, no
jitter.  A :class:`BackoffPolicy` maps ``attempt`` (0-based count of failures
so far) to a delay in *virtual-time ticks*; the supervisor uses it to space
restarts, and :func:`retry_with_backoff` uses it to space retries of timed
blocking calls (``WaitTimeout`` → sleep → try again, within a bounded
budget).

This module is the canonical home of the retry helper that used to live in
:mod:`repro.runtime.faults`; ``repro.runtime.retrying`` remains as a
deprecated shim delegating here.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional, Union

from ..runtime.errors import WaitTimeout


class BackoffPolicy:
    """Maps a 0-based attempt number to a delay in virtual-time ticks."""

    def delay(self, attempt: int) -> int:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class NoBackoff(BackoffPolicy):
    """Retry / restart immediately (delay 0)."""

    def delay(self, attempt: int) -> int:
        return 0

    def describe(self) -> str:
        return "none"


class FixedBackoff(BackoffPolicy):
    """A constant delay between attempts."""

    def __init__(self, ticks: int = 1) -> None:
        if ticks < 0:
            raise ValueError("backoff ticks must be >= 0")
        self.ticks = ticks

    def delay(self, attempt: int) -> int:
        return self.ticks

    def describe(self) -> str:
        return "fixed({})".format(self.ticks)


class ExponentialBackoff(BackoffPolicy):
    """``base * factor**attempt``, capped — deterministic exponential
    backoff (no jitter: replayability beats thundering-herd avoidance in a
    single-scheduler world)."""

    def __init__(self, base: int = 1, factor: int = 2,
                 cap: int = 64) -> None:
        if base < 1:
            raise ValueError("base must be >= 1")
        if factor < 1:
            raise ValueError("factor must be >= 1")
        self.base = base
        self.factor = factor
        self.cap = cap

    def delay(self, attempt: int) -> int:
        return min(self.base * self.factor ** attempt, self.cap)

    def describe(self) -> str:
        return "exponential(base={}, factor={}, cap={})".format(
            self.base, self.factor, self.cap
        )


#: A backoff argument: a policy object, a legacy ``attempt -> ticks``
#: callable, or ``None`` (no delay between attempts).
BackoffLike = Optional[Union[BackoffPolicy, Callable[[int], int]]]


def _delay_of(backoff: BackoffLike, attempt: int) -> int:
    if backoff is None:
        return 0
    if isinstance(backoff, BackoffPolicy):
        return backoff.delay(attempt)
    return backoff(attempt)


def retry_with_backoff(
    attempt: Callable[[int], Generator],
    attempts: int = 3,
    backoff: BackoffLike = None,
    sched=None,
) -> Generator:
    """Bounded retry around a timed blocking call, with deterministic
    backoff between tries.

    ``attempt(i)`` must return a generator performing the timed operation
    for try number ``i`` (0-based); a :class:`WaitTimeout` triggers the next
    try.  ``backoff`` (a :class:`BackoffPolicy` or a plain ``i -> ticks``
    callable) gives the virtual sleep separating tries — ``sched`` is
    required for a nonzero delay.  Exhausting ``attempts`` re-raises the
    last timeout.

    Example::

        value = yield from retry_with_backoff(
            lambda i: chan.receive(timeout=5),
            attempts=3, backoff=ExponentialBackoff(), sched=sched)
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    last: Optional[WaitTimeout] = None
    for i in range(attempts):
        try:
            result = yield from attempt(i)
            return result
        except WaitTimeout as exc:
            last = exc
            if i + 1 < attempts:
                ticks = _delay_of(backoff, i)
                if ticks > 0 and sched is not None:
                    yield from sched.sleep(ticks)
    raise last
