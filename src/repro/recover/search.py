"""Fault-plan search: find and minimize crash sets that defeat recovery.

The chaos layer (:mod:`repro.verify.chaos`) explores schedules around *one*
injected kill.  This module searches the other axis: *which set of kills* —
up to ``max_kills`` of them, aimed at workers **and** the supervisor itself
— drives a supervised system into a wedge or an exclusion violation that
recovery cannot repair.  Found plans are then ddmin-minimized (same
chunk-halving algorithm as :mod:`repro.explore.minimize`, applied to the
kill set instead of the decision string), yielding the minimal crash set
that defeats recovery — e.g. ``{kill sup, kill P0 inside the region}``:
neither kill alone wedges a supervised semaphore, both together do.

Each candidate plan can optionally be explored over several schedules via
the exploration engine (``schedules_per_plan > 1``): a plan counts as
defeating recovery if *any* explored schedule ends badly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..explore.engine import ExplorationEngine
from ..runtime.faults import FaultPlan
from ..runtime.policies import ScriptedPolicy
from ..runtime.trace import RunResult

#: Same shape as the chaos builders: (policy, fault plan) -> RunResult.
Builder = Callable[[ScriptedPolicy, Optional[FaultPlan]], RunResult]
#: Maps a finished run to a classification label (e.g. "wedged").
Classifier = Callable[[RunResult], str]


@dataclass(frozen=True)
class KillSpec:
    """One kill coordinate: ``process`` at its ``step``-th step."""

    process: str
    step: int

    def describe(self) -> str:
        return "kill {} at step {}".format(self.process, self.step)


def plan_for(kills: Sequence[KillSpec]) -> FaultPlan:
    """Build a :class:`FaultPlan` scripting every kill in ``kills``."""
    plan = FaultPlan()
    for kill in kills:
        plan.kill(kill.process, at_step=kill.step)
    return plan


@dataclass
class FaultSearchResult:
    """Outcome of :func:`search_fault_plans`."""

    tried: int = 0
    #: Every defeating plan found: (kill set, classification label).
    defeating: List[Tuple[Tuple[KillSpec, ...], str]] = field(
        default_factory=list
    )
    #: ddmin-minimized kill set of the first defeating plan (None when
    #: recovery survived everything tried).
    witness: Optional[Tuple[KillSpec, ...]] = None
    witness_label: Optional[str] = None
    minimize_tests: int = 0

    def describe(self) -> str:
        if self.witness is None:
            return "no fault plan defeated recovery ({} tried)".format(
                self.tried
            )
        return "minimal crash set ({}): {}".format(
            self.witness_label,
            "; ".join(k.describe() for k in self.witness),
        )


def _plan_defeats(
    build: Builder,
    classify: Classifier,
    kills: Sequence[KillSpec],
    bad_labels: Sequence[str],
    schedules_per_plan: int,
) -> Optional[str]:
    """The classification a plan earns, or ``None`` if it never ends badly."""
    plan = plan_for(kills)
    if schedules_per_plan <= 1:
        label = classify(build(ScriptedPolicy([]), plan))
        return label if label in bad_labels else None
    found: List[str] = []

    def run_one(policy: ScriptedPolicy) -> RunResult:
        return build(policy, plan)

    def check(run: RunResult) -> List[str]:
        label = classify(run)
        if label in bad_labels and not found:
            found.append(label)
        return []

    ExplorationEngine(
        run_one, max_runs=schedules_per_plan, max_depth=60,
    ).explore(check)
    return found[0] if found else None


def search_fault_plans(
    build: Builder,
    classify: Classifier,
    victims: Sequence[str],
    bad_labels: Sequence[str] = ("wedged", "violated"),
    max_kills: int = 2,
    budget: int = 200,
    schedules_per_plan: int = 1,
    minimize: bool = True,
) -> FaultSearchResult:
    """Search kill sets over ``victims``' fault points; minimize the first
    one that defeats recovery.

    Fault points come from a fault-free baseline run (one per step each
    victim takes, as in :func:`repro.verify.chaos.enumerate_fault_points`).
    Candidate plans are every combination of 1..``max_kills`` points aimed
    at *distinct* processes, enumerated deterministically (singletons
    first), up to ``budget`` plans.
    """
    baseline = build(ScriptedPolicy([]), None)
    points: List[KillSpec] = []
    for victim in victims:
        steps = baseline.proc_steps.get(victim, 0)
        points.extend(KillSpec(victim, s) for s in range(steps))
    result = FaultSearchResult()
    for size in range(1, max_kills + 1):
        for combo in itertools.combinations(points, size):
            if len({k.process for k in combo}) != len(combo):
                # One kill per process: re-killing restarted incarnations
                # only pays off past the restart budget, which needs more
                # kills than max_kills allows here.
                continue
            if result.tried >= budget:
                break
            result.tried += 1
            label = _plan_defeats(
                build, classify, combo, bad_labels, schedules_per_plan
            )
            if label is not None:
                result.defeating.append((combo, label))
        if result.tried >= budget:
            break
    if result.defeating and minimize:
        kills, label = result.defeating[0]
        witness, tests = minimize_fault_set(
            build, classify, kills, bad_labels,
            schedules_per_plan=schedules_per_plan,
        )
        result.witness = witness
        result.witness_label = label
        result.minimize_tests = tests
    return result


def minimize_fault_set(
    build: Builder,
    classify: Classifier,
    kills: Sequence[KillSpec],
    bad_labels: Sequence[str] = ("wedged", "violated"),
    schedules_per_plan: int = 1,
) -> Tuple[Tuple[KillSpec, ...], int]:
    """ddmin over the kill set: returns (1-minimal kill set, tests run).

    1-minimal: removing any single remaining kill makes the bad outcome
    disappear — every kill in the witness is load-bearing.
    """
    tests = 0

    def still_bad(subset: Sequence[KillSpec]) -> bool:
        nonlocal tests
        if not subset:
            return False
        tests += 1
        return _plan_defeats(
            build, classify, subset, bad_labels, schedules_per_plan
        ) is not None

    current = list(kills)
    chunks = 2
    while len(current) >= 2:
        size = max(1, len(current) // chunks)
        reduced = False
        for start in range(0, len(current), size):
            candidate = current[:start] + current[start + size:]
            if still_bad(candidate):
                current = candidate
                chunks = max(chunks - 1, 2)
                reduced = True
                break
        if not reduced:
            if size == 1:
                break
            chunks = min(chunks * 2, len(current))
    return tuple(current), tests
