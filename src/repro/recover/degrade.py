"""Graceful degradation: relax priority constraints, never exclusion.

The paper's central split (§3–4) is between *exclusion constraints*
(correctness — which executions may overlap) and *priority constraints*
(scheduling — who is served first).  That split is exactly the degradation
contract under repeated failure:

* **exclusion is hard** — no recovery action may ever let two processes
  into a critical region together; the chaos/recovery oracles keep checking
  it across every restart boundary;
* **priority is soft** — once crashes keep coming, priority-ordered service
  (priority waits, priority queues, non-FIFO wake policies) may fall back
  to plain arrival order.  FIFO needs no cross-crash bookkeeping, so it is
  the ordering that survives an arbitrary crash history.

A mechanism opts in by exposing ``degrade() -> Optional[str]``: relax any
priority machinery it has and describe what changed (``None``/empty when it
has nothing to relax — exclusion-only mechanisms like CCRs simply have no
soft constraints).  The :class:`Degrader` counts crashes and flips every
guarded mechanism once the threshold is crossed, logging a ``degrade``
trace event per relaxation so the recovery classifier can tell a degraded
run from a fully recovered one.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple


class Degrader:
    """Crash counter that triggers priority relaxation past a threshold.

    Args:
        sched: owning scheduler (for trace logging).
        threshold: number of crashes after which guarded mechanisms are
            degraded (each mechanism at most once).
    """

    def __init__(self, sched, threshold: int = 2) -> None:
        if threshold < 1:
            raise ValueError("degradation threshold must be >= 1")
        self._sched = sched
        self.threshold = threshold
        self.crashes = 0
        self.degraded = False
        self.relaxed: List[Tuple[str, str]] = []

    def note_crash(self, mechanisms: Sequence[Any]) -> List[Tuple[str, str]]:
        """Record one crash; once the threshold is reached, degrade every
        mechanism in ``mechanisms`` that supports it.  Returns the
        ``(label, what-was-relaxed)`` pairs of this call."""
        self.crashes += 1
        if self.degraded or self.crashes < self.threshold:
            return []
        self.degraded = True
        relaxed: List[Tuple[str, str]] = []
        for mech in mechanisms:
            hook = getattr(mech, "degrade", None)
            if hook is None:
                continue
            what = hook()
            if what:
                label = getattr(mech, "name", type(mech).__name__)
                self._sched.log("degrade", label, what)
                relaxed.append((label, what))
        self.relaxed.extend(relaxed)
        return relaxed
