"""Lease-based crash reclamation.

Every hold the runtime tracks (``Scheduler.note_hold``) is treated as a
*lease*: valid only while the holder is alive.  When a process dies, the
:class:`LeaseManager` walks the mechanisms it guards and invokes their
``crash_reclaim(proc)`` hook, which revokes whatever the corpse still held
and repairs the mechanism so waiters unwedge:

==================  ====================================================
mechanism           reclamation action
==================  ====================================================
Semaphore           lost permits returned (granted to waiters or banked)
Mutex               lock handed to the next waiter (robust semantics)
Monitor             possession released, dead waiters dequeued
Serializer          possession released, dead entries dequeued
Path expressions    no-op: per-invocation cleanups already roll the
                    counter network back / forward (self-recovering)
CCR                 region released, dead waiters dequeued
Channel             quarantine lifted: the *broken* flag is reset so the
                    restarted peers can rendezvous again
==================  ====================================================

Most mechanisms are already fault-containing via their registered crash
cleanups, so their hooks are defensive no-ops in the common path; the hooks
exist so recovery is *uniform* — the supervisor reclaims through one
interface regardless of mechanism, and the raw semaphore (the paper's one
genuinely wedging primitive) is made whole the same way.

Each reclamation is logged as a ``reclaim`` trace event, which is what the
MTTR analysis in :mod:`repro.obs.recovery` and the recovery classifier in
:mod:`repro.verify.chaos` read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from ..runtime.process import ProcessState, SimProcess
from .degrade import Degrader


@dataclass(frozen=True)
class ReclaimAction:
    """One successful reclamation: ``mechanism`` recovered something from
    dead process ``process`` (``outcome`` says what)."""

    mechanism: str
    process: str
    outcome: str

    def describe(self) -> str:
        return "{}: {} from {}".format(self.mechanism, self.outcome,
                                       self.process)


class LeaseManager:
    """Registry of mechanisms whose holds are reclaimed on holder death.

    Args:
        sched: owning scheduler.
        degrade_after: when set, after this many crashes every guarded
            mechanism that supports it is degraded (priority constraints
            relaxed to FIFO; exclusion untouched — see
            :mod:`repro.recover.degrade`).
    """

    def __init__(self, sched, degrade_after: Optional[int] = None) -> None:
        self._sched = sched
        self._guarded: List[Any] = []
        self.actions: List[ReclaimAction] = []
        self._degrader = (
            Degrader(sched, degrade_after) if degrade_after else None
        )
        self._counted: set = set()  # pids already counted as crashes

    @property
    def guarded(self) -> List[Any]:
        """The mechanisms under lease management (registration order)."""
        return list(self._guarded)

    @property
    def degraded(self) -> bool:
        """True once the degradation threshold has been crossed."""
        return self._degrader is not None and self._degrader.degraded

    def guard(self, mechanism: Any) -> Any:
        """Put ``mechanism`` under lease management; returns it, so
        construction reads ``sem = leases.guard(Semaphore(...))``."""
        if not hasattr(mechanism, "crash_reclaim"):
            raise TypeError(
                "{!r} has no crash_reclaim hook".format(mechanism)
            )
        self._guarded.append(mechanism)
        return mechanism

    def reclaim(self, proc: SimProcess) -> List[ReclaimAction]:
        """Reclaim everything ``proc`` (dead) still holds across every
        guarded mechanism.  Idempotent: hooks are no-ops when there is
        nothing left to revoke."""
        actions: List[ReclaimAction] = []
        for mech in self._guarded:
            outcome = mech.crash_reclaim(proc)
            if not outcome:
                continue
            label = getattr(mech, "name", type(mech).__name__)
            self._sched.log(
                "reclaim", label,
                "{}:{}".format(outcome, proc.name), proc=proc,
            )
            actions.append(ReclaimAction(label, proc.name, outcome))
        if self._degrader is not None and proc.pid not in self._counted:
            self._counted.add(proc.pid)
            self._degrader.note_crash(self._guarded)
        self.actions.extend(actions)
        return actions

    def sweep(self) -> List[ReclaimAction]:
        """Reclaim from *every* dead process — standalone use (no
        supervisor driving per-death reclamation)."""
        actions: List[ReclaimAction] = []
        for proc in self._sched.processes:
            if proc.state is ProcessState.FAILED:
                actions.extend(self.reclaim(proc))
        return actions
