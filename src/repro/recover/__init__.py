"""Recovery runtime (S11): supervision, lease reclamation, fault search.

Turns the fault layer's crash *tolerance* into crash *recovery*:

* :class:`Supervisor` / :class:`RestartPolicy` — deterministic respawning
  of killed processes (one-for-one or escalate, restart intensity,
  tick-based backoff);
* :class:`LeaseManager` — per-mechanism ``crash_reclaim`` hooks revoke a
  corpse's holds so waiters unwedge (all six mechanisms);
* :class:`BackoffPolicy` family and :func:`retry_with_backoff` — bounded
  retry around timed blocking calls (canonical home of the old
  ``repro.runtime.retrying``);
* :class:`Degrader` — graceful degradation: relax priority constraints
  under repeated failure, never exclusion (the paper's §3–4 split);
* :func:`search_fault_plans` / :func:`minimize_fault_set` — search kill
  sets that defeat recovery and ddmin them to a minimal crash witness.
"""

from .backoff import (
    BackoffPolicy,
    ExponentialBackoff,
    FixedBackoff,
    NoBackoff,
    retry_with_backoff,
)
from .degrade import Degrader
from .leases import LeaseManager, ReclaimAction
from .search import (
    FaultSearchResult,
    KillSpec,
    minimize_fault_set,
    plan_for,
    search_fault_plans,
)
from .supervisor import ESCALATE, ONE_FOR_ONE, RestartPolicy, Supervisor

__all__ = [
    "BackoffPolicy",
    "Degrader",
    "ESCALATE",
    "ExponentialBackoff",
    "FaultSearchResult",
    "FixedBackoff",
    "KillSpec",
    "LeaseManager",
    "NoBackoff",
    "ONE_FOR_ONE",
    "ReclaimAction",
    "RestartPolicy",
    "Supervisor",
    "minimize_fault_set",
    "plan_for",
    "retry_with_backoff",
    "search_fault_plans",
]
