"""Recovery verification: supervised chaos scenarios and their oracles.

The chaos layer (:mod:`repro.verify.chaos`) asks *what a mechanism does*
when a participant dies: contain, propagate, or deadlock.  This module asks
the follow-up question the recovery runtime (:mod:`repro.recover`) exists
to answer: *can the system get back to a good state afterwards?*  Each
scenario wraps one mechanism's workers in a :class:`~repro.recover.Supervisor`
with a :class:`~repro.recover.LeaseManager` guarding the mechanism, then
explores kill schedules exactly like the chaos explorer and classifies
every run:

* **recovered** — every process that died was restarted and its incarnation
  ran to completion; no restart budget was exhausted and no degradation
  was triggered.  The system healed completely.
* **degraded** — the run completed without wedging or safety violations,
  but recovery was partial: a restart budget ran out (``restart_giveup``),
  the supervisor escalated, a degradation hook relaxed priority semantics
  (``degrade``), or some corpse was never re-run to completion.
* **wedged** — survivors blocked forever (deadlock), or the step budget ran
  out with nothing runnable (a wedge churning behind timers).  Recovery
  failed at liveness.
* **violated** — a safety oracle fired (e.g. two processes inside one
  critical region).  Recovery failed at safety — the worst outcome: a
  reclaim or restart *forged* state instead of restoring it.
* **missed** — no victim actually died in this schedule; the run does not
  count toward the verdict.

The safety oracle here must hold *across restart boundaries*:
:func:`exclusion_oracle` checks interval overlap of ``cs``-enter/exit
events (closing a dead owner's interval at its death event), because the
chaos layer's entered-at-most-once check would misfire the moment a
restarted incarnation legitimately re-enters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core import ascii_table
from ..recover import FixedBackoff, LeaseManager, RestartPolicy, Supervisor
from ..runtime.faults import FaultPlan
from ..runtime.policies import ScriptedPolicy
from ..runtime.scheduler import Scheduler
from ..runtime.trace import RunResult
from .chaos import ChaosBuilder, Checker, FaultPoint, enumerate_fault_points
from ..explore.engine import ExplorationEngine

RECOVERED = "recovered"
DEGRADED = "degraded"
WEDGED = "wedged"
VIOLATED = "violated"
MISSED = "missed"

#: Events whose presence means recovery was at best partial.
_PARTIAL_KINDS = ("restart_giveup", "escalate", "degrade")


# ----------------------------------------------------------------------
# Oracles
# ----------------------------------------------------------------------
def exclusion_oracle(obj: str) -> Checker:
    """A mutual-exclusion checker that survives restarts.

    Workers bracket their critical region with ``log("cs", obj, "enter")``
    / ``log("cs", obj, "exit")``.  The oracle scans the trace once keeping
    the set of *open* intervals keyed by pid; a second concurrent open is a
    violation.  A process that dies inside the region never logs its exit —
    its ``killed``/``failed`` event closes the interval instead (the
    corpse is no longer *in* the region; whether its possession was safely
    reclaimed is exactly what the overlap check then verifies against the
    next entrant).
    """

    def check(run: RunResult) -> List[str]:
        open_by_pid: Dict[int, str] = {}
        messages: List[str] = []
        for ev in run.trace:
            if ev.kind in ("killed", "failed"):
                for pid in [
                    pid for pid, name in open_by_pid.items()
                    if pid == ev.pid or name == ev.obj
                ]:
                    del open_by_pid[pid]
                continue
            if ev.kind != "cs" or ev.obj != obj:
                continue
            if ev.detail == "enter":
                if open_by_pid and ev.pid not in open_by_pid:
                    inside = ", ".join(sorted(open_by_pid.values()))
                    messages.append(
                        "{} entered {} while {} inside".format(
                            ev.pname, obj, inside
                        )
                    )
                open_by_pid[ev.pid] = ev.pname
            elif ev.detail == "exit":
                open_by_pid.pop(ev.pid, None)
        return messages

    return check


def classify_recovery_run(
    run: RunResult,
    victims: Sequence[str],
    check: Optional[Checker] = None,
) -> Tuple[str, List[str]]:
    """Classify one supervised faulted run; returns (label, violations).

    Precedence (worst first): violated > wedged > degraded > recovered —
    a safety violation outranks everything because it means recovery
    *forged* state rather than restoring it.
    """
    failures = run.failed()
    if not any(v in failures for v in victims):
        return MISSED, []
    messages = list(check(run)) if check is not None else []
    if messages:
        return VIOLATED, messages
    if run.deadlocked or (run.step_limited and not run.ready):
        return WEDGED, []
    if run.step_limited:
        # Still runnable at the budget: nothing wedged, but the system
        # never demonstrably healed — partial by definition.
        return DEGRADED, []
    for kind in _PARTIAL_KINDS:
        if len(run.trace.filter(kind=kind)) > 0:
            return DEGRADED, []
    # Full recovery: every corpse's name later ran to completion.
    for name in failures:
        last_death = max(
            ev.seq for ev in run.trace
            if ev.kind in ("killed", "failed") and ev.obj == name
        )
        if not any(
            ev.seq > last_death
            for ev in run.trace.filter(kind="exit", obj=name)
        ):
            return DEGRADED, []
    return RECOVERED, []


# ----------------------------------------------------------------------
# Exploration (chaos machinery, recovery classification)
# ----------------------------------------------------------------------
@dataclass
class RecoveryOutcome:
    """Aggregate over every explored schedule with one fault injected."""

    point: FaultPoint
    runs: int = 0
    missed: int = 0
    recovered: int = 0
    degraded: int = 0
    wedged: int = 0
    violated: int = 0
    violations: List[str] = field(default_factory=list)


@dataclass
class RecoveryResult:
    """Outcome of :func:`recovery_explore` for one supervised system."""

    name: str
    victim: str
    outcomes: List[RecoveryOutcome] = field(default_factory=list)

    def _total(self, attr: str) -> int:
        return sum(getattr(o, attr) for o in self.outcomes)

    @property
    def runs(self) -> int:
        return self._total("runs")

    @property
    def recovered(self) -> int:
        return self._total("recovered")

    @property
    def degraded(self) -> int:
        return self._total("degraded")

    @property
    def wedged(self) -> int:
        return self._total("wedged")

    @property
    def violated(self) -> int:
        return self._total("violated")

    @property
    def violations(self) -> List[str]:
        out: List[str] = []
        for o in self.outcomes:
            out.extend(o.violations)
        return out

    @property
    def classification(self) -> str:
        """Worst observed behaviour (violated > wedged > degraded >
        recovered) — one bad schedule is enough to earn the worse label."""
        if self.violated:
            return VIOLATED
        if self.wedged:
            return WEDGED
        if self.degraded:
            return DEGRADED
        return RECOVERED


def recovery_explore(
    name: str,
    build: ChaosBuilder,
    victim: str,
    check: Optional[Checker] = None,
    max_runs_per_point: int = 25,
    max_depth: int = 60,
    max_points: Optional[int] = None,
) -> RecoveryResult:
    """Inject a kill at every reachable fault point of ``victim`` and
    explore schedules, classifying each run with
    :func:`classify_recovery_run` (the supervised analogue of
    :func:`~repro.verify.chaos.chaos_explore`)."""
    points = enumerate_fault_points(build, victim)
    if max_points is not None:
        points = points[:max_points]
    result = RecoveryResult(name=name, victim=victim)
    for point in points:
        plan = FaultPlan().kill(point.process, at_step=point.step)
        outcome = RecoveryOutcome(point=point)

        def run_one(policy: ScriptedPolicy) -> RunResult:
            return build(policy, plan)

        def tally(run: RunResult) -> List[str]:
            outcome.runs += 1
            label, messages = classify_recovery_run(run, (victim,), check)
            if label == MISSED:
                outcome.missed += 1
            elif label == RECOVERED:
                outcome.recovered += 1
            elif label == DEGRADED:
                outcome.degraded += 1
            elif label == WEDGED:
                outcome.wedged += 1
            else:
                outcome.violated += 1
                outcome.violations.extend(messages)
            return []

        ExplorationEngine(
            run_one, max_runs=max_runs_per_point, max_depth=max_depth,
        ).explore(tally)
        result.outcomes.append(outcome)
    return result


# ----------------------------------------------------------------------
# Supervised per-mechanism scenarios
# ----------------------------------------------------------------------
def _supervised(setup, degrade_after: Optional[int] = None,
                max_restarts: int = 4) -> ChaosBuilder:
    """Wrap a scenario ``setup(sched, leases, sup)`` (which guards its
    mechanisms and declares children) in the standard supervised harness."""

    def build(policy, plan):
        sched = Scheduler(policy=policy, preemptive=True, fault_plan=plan)
        leases = LeaseManager(sched, degrade_after=degrade_after)
        sup = Supervisor(
            sched,
            RestartPolicy(max_restarts=max_restarts, backoff=FixedBackoff(1)),
            name="sup",
            leases=leases,
        )
        setup(sched, leases, sup)
        sup.start()
        return sched.run(on_deadlock="return", on_error="record",
                         on_steplimit="return")

    return build


def _cs_worker(sched, obj, acquire, release):
    """The standard supervised worker: acquire, bracket the critical
    region with cs-enter/exit events, release."""

    def worker():
        yield from acquire()
        sched.log("cs", obj, "enter")
        yield from sched.checkpoint()
        sched.log("cs", obj, "exit")
        release_gen = release()
        if release_gen is not None:
            yield from release_gen

    return worker


def _sem_recovery(degrade_after: Optional[int] = None) -> ChaosBuilder:
    """Raw semaphore (no crash_release): the mechanism that *needs* the
    recovery runtime — lease reclamation revokes the corpse's permit."""
    from ..runtime.primitives import Semaphore

    def setup(sched, leases, sup):
        # LIFO wake policy so degradation has a priority constraint to
        # relax (the default is already the degraded target, FIFO).
        sem = Semaphore(sched, initial=1, name="s", crash_release=False,
                        wake_policy="lifo")
        leases.guard(sem)

        def worker():
            yield from sem.p()
            sched.log("cs", "s", "enter")
            yield from sched.checkpoint()
            sched.log("cs", "s", "exit")
            sem.v()

        for i in range(3):
            sup.child("P{}".format(i), worker)

    return _supervised(setup, degrade_after=degrade_after)


def _mutex_recovery() -> ChaosBuilder:
    from ..runtime.primitives import Mutex

    def setup(sched, leases, sup):
        lock = Mutex(sched, name="m")
        leases.guard(lock)

        def worker():
            yield from lock.acquire()
            sched.log("cs", "m", "enter")
            yield from sched.checkpoint()
            sched.log("cs", "m", "exit")
            lock.release()

        for i in range(3):
            sup.child("P{}".format(i), worker)

    return _supervised(setup)


def _monitor_recovery() -> ChaosBuilder:
    from ..mechanisms.monitor import Monitor

    def setup(sched, leases, sup):
        mon = Monitor(sched, name="mon")
        leases.guard(mon)

        def worker():
            yield from mon.enter()
            sched.log("cs", "mon", "enter")
            yield from sched.checkpoint()
            sched.log("cs", "mon", "exit")
            mon.exit()

        for i in range(3):
            sup.child("P{}".format(i), worker)

    return _supervised(setup)


def _serializer_recovery() -> ChaosBuilder:
    from ..mechanisms.serializer import Serializer

    def setup(sched, leases, sup):
        ser = Serializer(sched, name="ser")
        leases.guard(ser)
        q = ser.queue("q")
        crowd = ser.crowd("c")

        def worker():
            yield from ser.enter()
            yield from ser.enqueue(q, guarantee=lambda: crowd.empty)
            yield from ser.join_crowd(crowd)
            sched.log("cs", "ser", "enter")
            yield from sched.checkpoint()
            sched.log("cs", "ser", "exit")
            yield from ser.leave_crowd(crowd)
            ser.exit()

        for i in range(3):
            sup.child("P{}".format(i), worker)

    return _supervised(setup)


def _ccr_recovery() -> ChaosBuilder:
    from ..mechanisms.ccr import SharedRegion

    def setup(sched, leases, sup):
        cell = SharedRegion(sched, {"entries": 0}, name="v")
        leases.guard(cell)

        def worker():
            yield from cell.enter()
            cell.vars["entries"] += 1
            sched.log("cs", "v", "enter")
            yield from sched.checkpoint()
            sched.log("cs", "v", "exit")
            cell.leave()

        for i in range(3):
            sup.child("P{}".format(i), worker)

    return _supervised(setup)


def _pathexpr_recovery() -> ChaosBuilder:
    from ..mechanisms.pathexpr import PathResource

    def setup(sched, leases, sup):
        res = PathResource(sched, "path work end", name="r")
        leases.guard(res)

        def body(r):
            sched.log("cs", "r.work", "enter")
            yield from sched.checkpoint()
            sched.log("cs", "r.work", "exit")

        res.define("work", body)

        def worker():
            yield from res.invoke("work")

        for i in range(3):
            sup.child("P{}".format(i), worker)

    return _supervised(setup)


def _channel_recovery() -> ChaosBuilder:
    """Supervised rendezvous pair.  A kill breaks the channel and fails the
    partner with PeerFailed; lease reclamation lifts the quarantine and the
    supervisor restarts the dead side(s).  One-for-one restart cannot heal a
    rendezvous whose partner already exited, so both sides bound their wait
    (``timeout=`` + :func:`~repro.recover.retry_with_backoff`) and abandon
    the exchange after the retry budget — logged as a ``degrade`` event so
    the run classifies *degraded*, the honest verdict for a dropped
    message."""
    from ..mechanisms.channels import Channel
    from ..recover import retry_with_backoff
    from ..runtime.errors import WaitTimeout

    def setup(sched, leases, sup):
        chan = Channel(sched, name="a")
        leases.guard(chan)

        def endpoint(op):
            def body():
                try:
                    yield from retry_with_backoff(
                        lambda __: op(timeout=4),
                        attempts=2,
                        backoff=FixedBackoff(1),
                        sched=sched,
                    )
                except WaitTimeout:
                    sched.log("degrade", "a", "rendezvous abandoned")
                    return
                sched.log("cs", "a", "enter")
                sched.log("cs", "a", "exit")

            return body

        sup.child("P0", endpoint(lambda timeout: chan.send("msg",
                                                           timeout=timeout)))
        sup.child("P1", endpoint(lambda timeout: chan.receive(
            timeout=timeout)))

    return _supervised(setup, max_restarts=6)


#: (row name, builder factory, victim, oracle key, acceptable labels)
RECOVERY_SCENARIOS = [
    ("semaphore", lambda: _sem_recovery(), "P0", "s",
     (RECOVERED,)),
    ("semaphore+degrade", lambda: _sem_recovery(degrade_after=1), "P0", "s",
     (DEGRADED,)),
    ("mutex", _mutex_recovery, "P0", "m", (RECOVERED,)),
    ("monitor", _monitor_recovery, "P0", "mon", (RECOVERED,)),
    ("serializer", _serializer_recovery, "P0", "ser", (RECOVERED,)),
    ("ccr", _ccr_recovery, "P0", "v", (RECOVERED,)),
    ("pathexpr", _pathexpr_recovery, "P0", "r.work", (RECOVERED,)),
    ("channel", _channel_recovery, "P0", "a", (RECOVERED, DEGRADED)),
]


def expected_recovery() -> dict:
    """Scenario name -> tuple of acceptable classifications (asserted by
    the recovery regression tests and ``bench_recovery``)."""
    return {name: labels for name, __, __, __, labels in RECOVERY_SCENARIOS}


def mttr_fingerprints() -> Dict[str, dict]:
    """Deterministic per-scenario recovery fingerprint.

    One FIFO (``ScriptedPolicy([])``) run per scenario with a kill at the
    victim's *last* fault point — the deepest coordinate, which for every
    lock-shaped scenario lands inside the critical region, the interesting
    place to die.  The fingerprint folds the run's trace through
    :func:`repro.obs.recovery.compute_recovery_metrics`; because the clock
    is virtual, every number (including MTTR) is exactly reproducible and
    safe to assert in benchmarks.
    """
    from ..obs.recovery import compute_recovery_metrics

    out: Dict[str, dict] = {}
    for name, factory, victim, obj, __ in RECOVERY_SCENARIOS:
        build = factory()
        points = enumerate_fault_points(build, victim)
        point = points[-1]
        plan = FaultPlan().kill(point.process, at_step=point.step)
        run = build(ScriptedPolicy([]), plan)
        metrics = compute_recovery_metrics(run)
        label, __ = classify_recovery_run(
            run, (victim,), exclusion_oracle(obj)
        )
        out[name] = {
            "kill": point.describe(),
            "classification": label,
            "deaths": metrics.deaths,
            "restarts": metrics.restarts,
            "recoveries": metrics.recoveries,
            "recovery_rate": round(metrics.recovery_rate, 4),
            "mttr": None if metrics.mttr is None else round(metrics.mttr, 4),
            "max_ttr": metrics.max_ttr,
            "reclaims": metrics.reclaims,
            "giveups": metrics.giveups,
            "escalations": metrics.escalations,
            "degradations": metrics.degradations,
        }
    return out


def minimal_defeat_witness(budget: int = 200, schedules_per_plan: int = 1):
    """Search for a minimal crash set that defeats supervised-semaphore
    recovery, ddmin-minimized (:func:`repro.recover.search_fault_plans`).

    Recovery of the raw semaphore is *incomplete* in a precise sense: it
    depends on the supervisor being alive to reclaim and restart.  Either
    kill alone is harmless (the supervisor dying orphans nobody mid-region;
    a worker dying gets reclaimed and restarted) — but killing the
    supervisor *and then* a permit holder loses the permit with nobody left
    to revoke it, and the survivors wedge.  The expected witness is
    therefore exactly 2 faults.
    """
    from ..recover import search_fault_plans

    build = _sem_recovery()
    workers = ("P0", "P1", "P2")

    def classify(run: RunResult) -> str:
        label, __ = classify_recovery_run(
            run, workers, exclusion_oracle("s")
        )
        return label

    return search_fault_plans(
        build,
        classify,
        victims=("sup",) + workers,
        bad_labels=(WEDGED, VIOLATED),
        max_kills=2,
        budget=budget,
        schedules_per_plan=schedules_per_plan,
    )


def recovery_report(fast: bool = False) -> Tuple[List[RecoveryResult], str]:
    """Run every supervised recovery scenario; return (results, table).

    ``fast`` trims the schedule budget per fault point (CI smoke tier);
    the full sweep is what ``python -m repro recover`` shows.
    """
    budget = 6 if fast else 25
    max_points = 4 if fast else None
    results = []
    for name, factory, victim, obj, __ in RECOVERY_SCENARIOS:
        results.append(recovery_explore(
            name,
            factory(),
            victim,
            check=exclusion_oracle(obj),
            max_runs_per_point=budget,
            max_points=max_points,
        ))
    rows = []
    for res in results:
        rows.append([
            res.name,
            str(len(res.outcomes)),
            str(res.runs),
            str(res.recovered),
            str(res.degraded),
            str(res.wedged),
            str(res.violated),
            res.classification,
        ])
    table = ascii_table(
        ["scenario", "fault points", "runs", "recovered", "degraded",
         "wedged", "violated", "classification"],
        rows,
        title="Recovery under supervision (one kill per point, schedules "
              "explored per point)",
    )
    return results, table
