"""Partition oracles and the partition-tolerance report.

Safety oracles over the dist layer's trace vocabulary:

* :func:`check_lease_exclusion` — **no-two-holders-across-partition**: the
  validity intervals reconstructed from ``lease_acquired`` /
  ``lease_released`` / horizon ticks never overlap across holders, no
  matter what the network did.
* :func:`check_at_most_one_leader` — **at-most-one-leader-per-term**: no
  term carries two ``leader_elected`` events from different nodes.
* :func:`check_mutex_intervals` — classic mutual exclusion over
  ``cs_enter``/``cs_exit`` pairs in trace order (for scenarios without a
  fencing horizon, e.g. Lamport mutex).
* :func:`check_progress_after_heal` — the liveness half: once every
  scripted partition healed, some resumption event must follow.

:func:`partition_report` composes them with the exploration engine: every
scenario × :class:`~repro.dist.netplan.NetPlan` schedule is explored over
interleavings, each run classified as **split-brain** (safety violated),
**wedged** (safe but stuck: deadlocked, step-limited, or no post-heal
progress), or **partition-tolerant** — precedence in that order, one bad
schedule is enough.  The expected table mirrors
:mod:`repro.verify.chaos`: Lamport mutex *wedges* under an unhealed
partition (safe but not live — the textbook trade), while the quorum
scenarios stay tolerant because a majority side keeps the service up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core import ascii_table
from ..dist import NetPlan
from ..runtime.errors import StepLimitExceeded
from ..runtime.faults import FaultPlan
from ..runtime.policies import ScriptedPolicy
from ..runtime.trace import RunResult, Trace
from ..explore.engine import ExplorationEngine

# The scenario builders are imported lazily (inside the predicates and
# the scenario table): problems.distributed reaches back here through
# the resilience layer, and a module-level import would cycle.

#: A dist builder: fresh system under (policy, netplan, fault plan).
DistBuilder = Callable[
    [ScriptedPolicy, Optional[NetPlan], Optional[FaultPlan]], RunResult]
Checker = Callable[[RunResult], List[str]]

SPLIT_BRAIN = "split-brain"
WEDGED = "wedged"
TOLERANT = "partition-tolerant"


# ----------------------------------------------------------------------
# Safety oracles
# ----------------------------------------------------------------------
def _lease_intervals(trace: Trace) -> List[Tuple[int, int, str]]:
    """Holder validity intervals ``[start, end)`` from the lease events:
    start at ``lease_acquired``, end at the earlier of the validity
    horizon and an explicit ``lease_released``."""
    intervals: List[Tuple[int, int, str]] = []
    events = [ev for ev in trace
              if ev.kind in ("lease_acquired", "lease_released")]
    open_by_holder: Dict[str, Tuple[int, int]] = {}

    def close(holder: str, upto: Optional[int] = None) -> None:
        start, horizon = open_by_holder.pop(holder)
        end = horizon if upto is None else min(upto, horizon)
        intervals.append((start, end, holder))

    for ev in events:
        if ev.kind == "lease_acquired":
            if ev.obj in open_by_holder:
                close(ev.obj)          # re-acquire extends as a new interval
            open_by_holder[ev.obj] = (ev.time, int(ev.detail["until"]))
        else:
            if ev.obj in open_by_holder:
                close(ev.obj, upto=ev.time)
    for holder in sorted(open_by_holder):
        close(holder)
    return sorted(intervals)


def check_lease_exclusion(run: RunResult) -> List[str]:
    """No two holders' validity intervals may overlap — at every virtual
    tick at most one client may believe it holds the quorum lease."""
    intervals = _lease_intervals(run.trace)
    messages: List[str] = []
    for (s1, e1, h1), (s2, e2, h2) in zip(intervals, intervals[1:]):
        if h1 != h2 and s2 < e1:
            messages.append(
                "two lease holders at once: {} valid [{}, {}) and {} "
                "valid [{}, {})".format(h1, s1, e1, h2, s2, e2))
    return messages


def check_fencing(run: RunResult) -> List[str]:
    """Fencing tokens must be respected at the resource: once the
    resource has accepted a write with token ``t``, accepting a write
    with a *smaller* token from a different actor means a stale session
    touched the data after its successor — the split-brain signature of
    the crash-restart-under-partition scenarios.  Judged over
    ``fence_accept`` events (rejections are the mechanism *working*)."""
    messages: List[str] = []
    highest = 0
    highest_by: Optional[str] = None
    for ev in run.trace.filter(kind="fence_accept"):
        token = int(ev.detail["token"])
        if token < highest and ev.obj != highest_by:
            messages.append(
                "fencing violated: {} wrote with stale token {} after "
                "{} wrote with token {} (seq {})".format(
                    ev.obj, token, highest_by, highest, ev.seq))
        if token > highest:
            highest, highest_by = token, ev.obj
    return messages


def check_at_most_one_leader(run: RunResult) -> List[str]:
    """No term may crown two leaders."""
    by_term: Dict[int, List[str]] = {}
    for ev in run.trace.filter(kind="leader_elected"):
        term = int(ev.detail["term"])
        nodes = by_term.setdefault(term, [])
        if ev.obj not in nodes:
            nodes.append(ev.obj)
    return [
        "term {} has {} leaders: {}".format(term, len(nodes),
                                            ", ".join(nodes))
        for term, nodes in sorted(by_term.items()) if len(nodes) > 1
    ]


def check_mutex_intervals(run: RunResult) -> List[str]:
    """Classic mutual exclusion: between a ``cs_enter`` and its matching
    ``cs_exit``/``cs_abort`` (same obj), no other obj may enter."""
    messages: List[str] = []
    inside: Optional[str] = None
    since: int = 0
    for ev in run.trace.filter(kind="cs_enter|cs_exit|cs_abort"):
        if ev.kind == "cs_enter":
            if inside is not None and inside != ev.obj:
                messages.append(
                    "mutual exclusion violated: {} entered at seq {} "
                    "while {} was inside (since seq {})".format(
                        ev.obj, ev.seq, inside, since))
            else:
                inside, since = ev.obj, ev.seq
        elif inside == ev.obj:
            inside = None
    return messages


def make_progress_after_heal(
    plan: NetPlan,
    progress_kinds: Tuple[str, ...] = ("cs_exit", "leader_elected",
                                       "lease_acquired"),
) -> Checker:
    """Liveness oracle bound to one plan: after the *last* heal tick, some
    ``progress_kinds`` event must occur — the evidence that the side cut
    off by the partition reintegrated.  Pass the kinds that constitute
    recovery for the scenario at hand (a stranded client re-acquiring, a
    stale leader stepping down, a blocked requester finally finishing);
    an empty tuple disables the oracle.  Plans with no healing partition
    never fire (an unhealed partition is allowed to wedge — that is the
    classification's job to report, not a safety bug)."""
    heal_ticks = [p.heal_at for p in plan.partitions
                  if p.heal_at is not None]

    def check(run: RunResult) -> List[str]:
        if (not progress_kinds or not heal_ticks
                or len(heal_ticks) != len(plan.partitions)):
            return []
        last_heal = max(heal_ticks)
        for ev in run.trace:
            if ev.kind in progress_kinds and ev.time >= last_heal:
                return []
        return ["no progress after heal at t={} (expected one of {})"
                .format(last_heal, "/".join(progress_kinds))]

    return check


# ----------------------------------------------------------------------
# Scenario success predicates (the liveness half of classification)
# ----------------------------------------------------------------------
# A scenario run can reach its deadline and "complete" without achieving
# anything, so deadlock detection alone cannot spot a wedge: each scenario
# defines what *getting the job done* means in terms of process results.

def lamport_succeeded(run: RunResult) -> bool:
    """Every node completed its critical-section pass."""
    from ..problems.distributed import LAMPORT_NODES

    return all(
        isinstance(run.results.get(n), dict)
        and run.results[n].get("exited")
        for n in LAMPORT_NODES
    )


def quorum_lock_succeeded(run: RunResult) -> bool:
    """Some client completed a fenced hold (the lock stayed usable)."""
    from ..problems.distributed import LOCK_CLIENTS

    return any(
        isinstance(run.results.get(c), dict)
        and run.results[c].get("locked")
        for c in LOCK_CLIENTS
    )


def election_succeeded(run: RunResult) -> bool:
    """A leader was elected and someone still leads at the end."""
    from ..problems.distributed import ELECTION_NODES

    if run.trace.first(kind="leader_elected") is None:
        return False
    return any(
        isinstance(run.results.get(n), dict)
        and run.results[n].get("leader")
        for n in ELECTION_NODES
    )


# ----------------------------------------------------------------------
# Scenario × plan exploration
# ----------------------------------------------------------------------
@dataclass
class PlanOutcome:
    """Aggregate over explored schedules for one (scenario, plan) cell."""

    plan_name: str
    plan: NetPlan
    expected: str
    runs: int = 0
    split_brain: int = 0
    wedged: int = 0
    tolerant: int = 0
    violations: List[str] = field(default_factory=list)
    failover_samples: List[int] = field(default_factory=list)
    post_heal_samples: List[int] = field(default_factory=list)
    message_stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def classification(self) -> str:
        if self.split_brain:
            return SPLIT_BRAIN
        if self.wedged:
            return WEDGED
        return TOLERANT

    @property
    def mttr_failover(self) -> Optional[float]:
        if not self.failover_samples:
            return None
        return sum(self.failover_samples) / float(
            len(self.failover_samples))

    @property
    def mttr_post_heal(self) -> Optional[float]:
        if not self.post_heal_samples:
            return None
        return sum(self.post_heal_samples) / float(
            len(self.post_heal_samples))


@dataclass
class PartitionScenarioResult:
    """Every plan cell of one scenario."""

    name: str
    outcomes: List[PlanOutcome] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return sum(o.runs for o in self.outcomes)

    @property
    def violations(self) -> List[str]:
        out: List[str] = []
        for o in self.outcomes:
            out.extend(o.violations)
        return out

    @property
    def surprises(self) -> List[str]:
        """Cells whose classification differs from the predicted one."""
        return [
            "{} under {}: expected {}, observed {}".format(
                self.name, o.plan_name, o.expected, o.classification)
            for o in self.outcomes if o.classification != o.expected
        ]

    @property
    def mttr_failover(self) -> Optional[float]:
        """Scenario-level failover MTTR: mean over every plan cell's
        samples (not a mean of means — cells contribute their weight)."""
        samples = [s for o in self.outcomes for s in o.failover_samples]
        if not samples:
            return None
        return sum(samples) / float(len(samples))

    @property
    def mttr_post_heal(self) -> Optional[float]:
        """Scenario-level post-heal MTTR over every plan cell's samples."""
        samples = [s for o in self.outcomes for s in o.post_heal_samples]
        if not samples:
            return None
        return sum(samples) / float(len(samples))


def explore_partition_scenario(
    name: str,
    build: DistBuilder,
    plans: List["PlanCell"],
    safety: Checker,
    success: Callable[[RunResult], bool],
    max_runs_per_plan: int = 6,
    max_depth: int = 40,
) -> PartitionScenarioResult:
    """Explore one scenario under every plan; classify every run.

    One :class:`NetPlan` instance is reused across explored runs — the
    network's ``begin()`` resets its fired/announced state each run, the
    same replay contract :class:`~repro.runtime.faults.FaultPlan` has.
    """
    from ..obs.recovery import compute_partition_mttr

    result = PartitionScenarioResult(name=name)
    for plan_name, plan, expected, heal_kinds in plans:
        outcome = PlanOutcome(plan_name=plan_name, plan=plan,
                              expected=expected)
        progress = make_progress_after_heal(plan,
                                            progress_kinds=heal_kinds)

        def run_one(policy: ScriptedPolicy) -> RunResult:
            try:
                return build(policy, plan, None)
            except StepLimitExceeded as exc:
                trace = Trace()
                for ev in exc.recent_events or []:
                    trace.append(ev)
                return RunResult(trace=trace, step_limited=True,
                                 ready=list(exc.ready or []))

        def tally(run: RunResult) -> List[str]:
            outcome.runs += 1
            unsafe = safety(run)
            if unsafe:
                outcome.split_brain += 1
                outcome.violations.extend(unsafe)
            elif (run.deadlocked or run.step_limited
                  or not success(run) or progress(run)):
                outcome.wedged += 1
            else:
                outcome.tolerant += 1
            mttr = compute_partition_mttr(run)
            for span in mttr.spans:
                if span.ticks_to_failover is not None:
                    outcome.failover_samples.append(span.ticks_to_failover)
                if span.ticks_to_post_heal is not None:
                    outcome.post_heal_samples.append(
                        span.ticks_to_post_heal)
            net = getattr(run, "network_stats", None)
            if net:
                for key, val in net.items():
                    if isinstance(val, dict):
                        # Gauge dicts (per-node inbox_peak): max-merge so
                        # the plan reports the worst backlog any run saw.
                        gauges = outcome.message_stats.setdefault(key, {})
                        for node, peak in val.items():
                            if peak > gauges.get(node, 0):
                                gauges[node] = peak
                    else:
                        outcome.message_stats[key] = (
                            outcome.message_stats.get(key, 0) + val)
            return []

        ExplorationEngine(
            run_one, max_runs=max_runs_per_plan, max_depth=max_depth,
        ).explore(tally)
        result.outcomes.append(outcome)
    return result


# ----------------------------------------------------------------------
# The standard scenario × plan table
# ----------------------------------------------------------------------
#: Plan cell: (label, plan, expected classification, post-heal evidence —
#: the event kinds whose appearance after the heal tick proves the cut
#: side reintegrated; empty = nothing to prove).
PlanCell = Tuple[str, NetPlan, str, Tuple[str, ...]]


def _lamport_plans() -> List[PlanCell]:
    return [
        ("clean", NetPlan(), TOLERANT, ()),
        ("lossy", NetPlan().drop("*", "*", nth=2).duplicate("*", "*", nth=5)
                           .delay("n0", "n1", ticks=4, nth=3),
         TOLERANT, ()),
        # All three requesters are stuck until the heal, so recovery means
        # the critical-section passes finally complete.
        ("partition-heal",
         NetPlan().isolate("n0", at=1, heal_at=40), TOLERANT, ("cs_exit",)),
        # Safe but not live: requesters never assemble the full ack set.
        ("partition-forever", NetPlan().isolate("n0", at=1), WEDGED, ()),
    ]


def _quorum_lock_plans() -> List[PlanCell]:
    return [
        ("clean", NetPlan(), TOLERANT, ()),
        ("lossy", NetPlan().drop("*", "*", nth=2).duplicate("*", "*", nth=4),
         TOLERANT, ()),
        # c0 is cut off mid-acquisition; c1 takes the lock on the majority
        # side, and the stranded c0 must re-acquire after the heal.
        ("partition-heal",
         NetPlan().isolate("c0", at=2, heal_at=60), TOLERANT,
         ("lease_acquired",)),
        # The majority side still reclaims the lock once any grants the
        # stranded client held expire — tolerant without ever healing.
        ("partition-forever", NetPlan().isolate("c0", at=2), TOLERANT, ()),
    ]


def _election_plans() -> List[PlanCell]:
    return [
        ("clean", NetPlan(), TOLERANT, ()),
        ("lossy", NetPlan().drop("*", "*", nth=3).duplicate("*", "*", nth=6),
         TOLERANT, ()),
        # Post-heal reconvergence: either one more election or the stale
        # minority leader stepping down to the higher term.
        ("partition-heal",
         NetPlan().isolate("n0", at=20, heal_at=70), TOLERANT,
         ("leader_elected", "leader_stepdown")),
        # The majority elects a higher-term leader and keeps beating.
        ("partition-forever", NetPlan().isolate("n0", at=20), TOLERANT, ()),
    ]


def partition_scenarios() -> List[Tuple]:
    """(scenario name, builder, safety oracle, success predicate,
    plan-set factory) — built per call so the builder import stays
    lazy (see the module-top import note)."""
    from ..problems.distributed import (build_lamport_mutex,
                                        build_leader_election,
                                        build_quorum_lock)

    return [
        ("lamport_mutex", build_lamport_mutex, check_mutex_intervals,
         lamport_succeeded, _lamport_plans),
        ("quorum_lock", build_quorum_lock, check_lease_exclusion,
         quorum_lock_succeeded, _quorum_lock_plans),
        ("leader_election", build_leader_election, check_at_most_one_leader,
         election_succeeded, _election_plans),
    ]


def partition_report(
    fast: bool = False,
) -> Tuple[List[PartitionScenarioResult], str]:
    """Run every scenario × plan cell; return (results, rendered table)."""
    budget = 2 if fast else 6
    results = []
    for name, build, safety, success, plan_factory in partition_scenarios():
        results.append(explore_partition_scenario(
            name, build, plan_factory(), safety, success,
            max_runs_per_plan=budget,
        ))
    rows = []
    for res in results:
        for o in res.outcomes:
            rows.append([
                res.name,
                o.plan_name,
                str(o.runs),
                str(o.split_brain),
                str(o.wedged),
                str(o.tolerant),
                ("-" if o.mttr_failover is None
                 else "{:.1f}".format(o.mttr_failover)),
                ("-" if o.mttr_post_heal is None
                 else "{:.1f}".format(o.mttr_post_heal)),
                o.classification,
            ])
    table = ascii_table(
        ["scenario", "net plan", "runs", "split-brain", "wedged",
         "tolerant", "failover mttr", "post-heal mttr", "classification"],
        rows,
        title="Partition tolerance by scenario (schedules explored per "
              "plan; mttr in virtual ticks)",
    )
    return results, table


def expected_partition_classifications() -> Dict[Tuple[str, str], str]:
    """(scenario, plan) -> predicted classification, for the regression
    tests."""
    out: Dict[Tuple[str, str], str] = {}
    for name, __, __, __, plan_factory in partition_scenarios():
        for plan_name, __, expected, __ in plan_factory():
            out[(name, plan_name)] = expected
    return out
