"""Verification layer (S9): trace oracles, the schedule explorer, and
chaos (fault-injection) exploration.

The schedule-space search engine itself lives in :mod:`repro.explore`
(pruning, parallel frontier, minimization, detectors);
:class:`ScheduleExplorer` here is its naive-DFS compatibility face."""

from ..explore.detectors import (
    ConflictingAccessChecker,
    LostWakeupChecker,
    compose_checkers,
)
from .chaos import (
    ChaosResult,
    FaultPoint,
    PointOutcome,
    chaos_explore,
    classify_run,
    enumerate_fault_points,
    robustness_report,
)
from .explorer import ExplorationResult, ScheduleExplorer
from .recovery import (
    RecoveryOutcome,
    RecoveryResult,
    classify_recovery_run,
    exclusion_oracle,
    expected_recovery,
    minimal_defeat_witness,
    mttr_fingerprints,
    recovery_explore,
    recovery_report,
)
from .liveness import (
    Wait,
    WaitSummary,
    check_bounded_waiting,
    class_wait_summary,
    starvation_report,
    unserved_requests,
    waiting_times,
)
from .oracles import (
    check_alarm_wakeups,
    check_alternation,
    check_class_priority_two_stage,
    check_fcfs,
    check_mutual_exclusion,
    check_no_overtake,
    check_readers_priority_strict,
    check_scan_order,
    check_single_occupancy,
    check_writers_priority_strict,
)
from .registry import (
    Oracle,
    OracleSpec,
    SYNTH_RW_BATTERY,
    battery,
    oracle,
    oracle_names,
    register_oracle,
)

__all__ = [
    "Oracle",
    "OracleSpec",
    "SYNTH_RW_BATTERY",
    "battery",
    "oracle",
    "oracle_names",
    "register_oracle",
    "ConflictingAccessChecker",
    "LostWakeupChecker",
    "compose_checkers",
    "ChaosResult",
    "ExplorationResult",
    "FaultPoint",
    "PointOutcome",
    "chaos_explore",
    "classify_run",
    "enumerate_fault_points",
    "robustness_report",
    "RecoveryOutcome",
    "RecoveryResult",
    "classify_recovery_run",
    "exclusion_oracle",
    "expected_recovery",
    "minimal_defeat_witness",
    "mttr_fingerprints",
    "recovery_explore",
    "recovery_report",
    "Wait",
    "WaitSummary",
    "check_bounded_waiting",
    "class_wait_summary",
    "starvation_report",
    "unserved_requests",
    "waiting_times",
    "ScheduleExplorer",
    "check_alarm_wakeups",
    "check_alternation",
    "check_class_priority_two_stage",
    "check_fcfs",
    "check_mutual_exclusion",
    "check_no_overtake",
    "check_readers_priority_strict",
    "check_scan_order",
    "check_single_occupancy",
    "check_writers_priority_strict",
]
