"""The oracle registry: every correctness check as a named, importable
callable over a :class:`~repro.runtime.trace.RunResult`.

Until PR 8 the problem-level checkers lived as private closures inside
:mod:`repro.explore.targets`; synthesis (:mod:`repro.synth`) needs the same
checks, and duplicating them would let the two drift.  This module is the
single home: each oracle is registered under a stable name, exploration
targets resolve their battery by name, and the synthesis engine's
replayable oracle cache keys its logged verdicts on the same names — so a
cached verdict is meaningful exactly as long as the named battery is.

An *oracle* here is ``Callable[[RunResult], List[str]]``: empty list means
the property held on that run.  Batteries (:func:`battery`) compose several
oracles into one callable, preserving message order, so a target's whole
check is still a single checker in the engine's eyes.

Conventions: oracles never raise on pathological runs (deadlocks and
recorded errors are *data* — ``on_deadlock="return"`` / ``on_error="record"``
runs flow through them); per-run detector state must live inside the call,
never at module level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..runtime.trace import RunResult
from ..explore.detectors import ConflictingAccessChecker, LostWakeupChecker
from .oracles import (
    check_alarm_wakeups,
    check_alternation,
    check_class_priority_two_stage,
    check_fcfs,
    check_mutual_exclusion,
    check_readers_priority_strict,
    check_single_occupancy,
)

Oracle = Callable[[RunResult], List[str]]


@dataclass(frozen=True)
class OracleSpec:
    """One registered oracle: a stable name, the paper property it encodes,
    and the callable itself."""

    name: str
    description: str
    check: Oracle

    def __call__(self, run: RunResult) -> List[str]:
        return self.check(run)


_REGISTRY: Dict[str, OracleSpec] = {}


def register_oracle(name: str, description: str) -> Callable[[Oracle], Oracle]:
    """Decorator: register ``fn`` under ``name``.

    Raises:
        ValueError: the name is already taken (oracle names are an API —
            cached verdicts and exploration targets refer to them).
    """

    def deco(fn: Oracle) -> Oracle:
        if name in _REGISTRY:
            raise ValueError("oracle {!r} already registered".format(name))
        _REGISTRY[name] = OracleSpec(name, description, fn)
        return fn

    return deco


def oracle(name: str) -> OracleSpec:
    """Resolve one oracle by name.

    Raises:
        KeyError: unknown name; the message lists what exists.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            "unknown oracle {!r}; registered: {}".format(
                name, ", ".join(sorted(_REGISTRY))
            )
        )


def oracle_names() -> List[str]:
    """Every registered oracle name, sorted."""
    return sorted(_REGISTRY)


def battery(*names: str) -> Oracle:
    """Compose named oracles into one checker (message order follows the
    given name order).  The composition resolves names eagerly, so a typo
    fails at battery-construction time, not mid-exploration."""
    specs: Tuple[OracleSpec, ...] = tuple(oracle(n) for n in names)

    def check(run: RunResult) -> List[str]:
        messages: List[str] = []
        for spec in specs:
            messages.extend(spec.check(run))
        return messages

    return check


# ----------------------------------------------------------------------
# Registered oracles.  The first block is the exploration-target battery
# (moved verbatim from repro.explore.targets); the second is the synthesis
# additions (exclusion + progress, needed to reject unsafe and wedged
# candidates rather than only priority-breaking ones).
# ----------------------------------------------------------------------
_lost_wakeup = LostWakeupChecker()
_db_races = ConflictingAccessChecker("db", writes=["write"], reads=["read"])


@register_oracle("lost_wakeup", "no process parks forever while its wakeup "
                 "condition already held (mechanism-level detector)")
def check_lost_wakeup_oracle(run: RunResult) -> List[str]:
    return _lost_wakeup(run)


@register_oracle("readers_priority_races", "db access conflicts plus lost "
                 "wakeups on the readers/writers workload")
def check_readers_priority_oracle(run: RunResult) -> List[str]:
    messages = _db_races(run)
    messages += _lost_wakeup(run)
    return messages


@register_oracle("footnote3_strict", "the Courtois-Heymans-Parnas strict "
                 "readers-priority condition on the db resource (the "
                 "footnote-3 oracle, E5)")
def check_footnote3_oracle(run: RunResult) -> List[str]:
    return list(check_readers_priority_strict(run.trace, "db"))


@register_oracle("rw_exclusion", "writers exclusive, readers shared, on the "
                 "db resource")
def check_rw_exclusion_oracle(run: RunResult) -> List[str]:
    return list(check_mutual_exclusion(
        run.trace, "db", exclusive_ops=["write"], shared_ops=["read"]))


@register_oracle("all_served", "progress: the run neither deadlocks nor "
                 "strands a requested operation without completion")
def check_all_served_oracle(run: RunResult) -> List[str]:
    messages: List[str] = []
    if run.deadlocked:
        messages.append("progress: run deadlocked with {} process(es) "
                        "blocked".format(len(run.blocked or ())))
    requested: Dict[Tuple[int, str], int] = {}
    ended: Dict[Tuple[int, str], int] = {}
    for ev in run.trace.filter(kind="request"):
        key = (ev.pid, ev.obj)
        requested[key] = requested.get(key, 0) + 1
    for ev in run.trace.filter(kind="op_end"):
        key = (ev.pid, ev.obj)
        ended[key] = ended.get(key, 0) + 1
    for (pid, obj), count in sorted(requested.items()):
        done = ended.get((pid, obj), 0)
        if done < count:
            messages.append(
                "progress: {} request(s) of {} by pid {} never "
                "completed".format(count - done, obj, pid))
    return messages


@register_oracle("bounded_buffer_integrity", "both produced items are "
                 "consumed exactly once, plus lost wakeups")
def check_bounded_buffer_oracle(run: RunResult) -> List[str]:
    messages: List[str] = []
    consumed = run.results.get("consumed", [])
    if not run.deadlocked and sorted(consumed) != [0, 1]:
        messages.append(
            "buffer integrity: consumed {!r}, expected a permutation of "
            "[0, 1]".format(consumed)
        )
    messages += _lost_wakeup(run)
    return messages


@register_oracle("one_slot_alternation", "put/get strictly alternate and "
                 "both items flow through, plus lost wakeups")
def check_one_slot_oracle(run: RunResult) -> List[str]:
    messages = list(check_alternation(run.trace, "slot"))
    consumed = run.results.get("consumed", [])
    if not run.deadlocked and sorted(consumed) != [0, 1]:
        messages.append(
            "slot integrity: consumed {!r}, expected a permutation of "
            "[0, 1]".format(consumed)
        )
    messages += _lost_wakeup(run)
    return messages


@register_oracle("fcfs_resource", "arrival-order service and single "
                 "occupancy on the res resource, plus lost wakeups")
def check_fcfs_resource_oracle(run: RunResult) -> List[str]:
    messages = list(check_fcfs(run.trace, "res", ["use"]))
    messages += check_single_occupancy(run.trace, "res", ["use"])
    messages += _lost_wakeup(run)
    return messages


@register_oracle("alarm_clock", "wakeups land exactly on their deadlines "
                 "and in deadline order, plus lost wakeups")
def check_alarm_clock_oracle(run: RunResult) -> List[str]:
    messages = list(check_alarm_wakeups(run.trace, "alarm"))
    wakes = run.results.get("wakes", [])
    if not run.deadlocked and wakes != sorted(wakes):
        messages.append(
            "wake order {!r} not by deadline".format(wakes)
        )
    messages += _lost_wakeup(run)
    return messages


@register_oracle("staged_queue_priority", "class priority with FCFS inside "
                 "each class and single occupancy, plus lost wakeups")
def check_staged_queue_oracle(run: RunResult) -> List[str]:
    messages = list(check_class_priority_two_stage(
        run.trace, "res", high_op="acquire_a", low_op="acquire_b"
    ))
    messages += check_single_occupancy(run.trace, "res",
                                       ["acquire_a", "acquire_b"])
    messages += _lost_wakeup(run)
    return messages


#: The battery synthesis verifies repair candidates against: safety
#: (exclusion), the paper's priority condition, and progress — a candidate
#: must be *correct*, not merely non-anomalous.
SYNTH_RW_BATTERY = ("rw_exclusion", "footnote3_strict", "all_served")
