"""Chaos exploration: fault injection composed with schedule exploration.

The explorer (:mod:`repro.verify.explorer`) enumerates *schedules*; a
:class:`~repro.runtime.faults.FaultPlan` injects *crashes*.  This module
composes the two: for every reachable fault point — each (victim, step)
coordinate observed in a fault-free baseline run — it re-explores the
schedule space with a kill injected there, and classifies what the
mechanism under test did about it:

* **fault-containing** — every run completes; the only casualty is the
  injected victim; no safety oracle fires.  The mechanism's crash cleanup
  (release possession, dequeue the dead, repair the semaphore network) kept
  survivors whole.
* **fault-propagating** — some survivor also died (e.g. a channel partner
  woken with :class:`PeerFailed`) or a safety property was violated.  The
  failure travelled, visibly.
* **fault-deadlocking** — some run ends with survivors blocked forever
  (``RunResult.deadlocked``); the wait-for graph names the dead process
  holding what they wait for.  The classic example: a raw semaphore permit
  lost with its holder.
* **step-limited** — the run hit the step budget while still runnable:
  survivors were making progress but never finished inside the budget
  (livelock territory).  A budget cutoff with *nothing* runnable is not
  progress at all — it is a wedge churning behind timers, and classifies
  as fault-deadlocking.

:func:`robustness_report` runs one representative scenario per mechanism
(all six of the paper's evaluation subjects plus the robust-semaphore
variant) and renders the containment table shown by
``python -m repro robustness``.  The *recovery* layer
(:mod:`repro.verify.recovery`) reuses this machinery with supervised
scenarios and its own outcome labels (``recovered``/``degraded``/…).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..core import ascii_table
from ..runtime.errors import StepLimitExceeded
from ..runtime.faults import FaultPlan
from ..runtime.policies import ScriptedPolicy
from ..runtime.scheduler import Scheduler
from ..runtime.trace import RunResult, Trace
from ..explore.engine import ExplorationEngine

#: A builder runs one *fresh* system under (policy, fault plan) and returns
#: the result; it must use ``on_deadlock="return"`` / ``on_error="record"``
#: (and ideally ``on_steplimit="return"`` — the explorer tolerates a raised
#: :class:`StepLimitExceeded`, but the synthetic result it reconstructs
#: carries only the diagnostic tail of the trace).
ChaosBuilder = Callable[[ScriptedPolicy, Optional[FaultPlan]], RunResult]
Checker = Callable[[RunResult], List[str]]

CONTAINING = "fault-containing"
PROPAGATING = "fault-propagating"
DEADLOCKING = "fault-deadlocking"
STEP_LIMITED = "step-limited"


@dataclass(frozen=True)
class FaultPoint:
    """One kill coordinate: victim ``process`` at its ``step``-th step."""

    process: str
    step: int

    def describe(self) -> str:
        return "kill {} at step {}".format(self.process, self.step)


@dataclass
class PointOutcome:
    """Aggregate over every explored schedule with one fault injected."""

    point: FaultPoint
    runs: int = 0
    missed: int = 0  # schedules where the victim finished before the kill
    contained: int = 0
    propagated: int = 0
    deadlocked: int = 0
    step_limited: int = 0  # budget cutoffs while still runnable (livelock)
    violations: List[str] = field(default_factory=list)


@dataclass
class ChaosResult:
    """Outcome of :func:`chaos_explore` for one system under test."""

    name: str
    victim: str
    outcomes: List[PointOutcome] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return sum(o.runs for o in self.outcomes)

    @property
    def contained(self) -> int:
        return sum(o.contained for o in self.outcomes)

    @property
    def propagated(self) -> int:
        return sum(o.propagated for o in self.outcomes)

    @property
    def deadlocked(self) -> int:
        return sum(o.deadlocked for o in self.outcomes)

    @property
    def step_limited(self) -> int:
        return sum(o.step_limited for o in self.outcomes)

    @property
    def violations(self) -> List[str]:
        out: List[str] = []
        for o in self.outcomes:
            out.extend(o.violations)
        return out

    @property
    def classification(self) -> str:
        """Worst observed behaviour, precedence deadlocking > propagating >
        step-limited > containing — one bad schedule is enough to earn the
        worse label."""
        if self.deadlocked:
            return DEADLOCKING
        if self.propagated or self.violations:
            return PROPAGATING
        if self.step_limited:
            return STEP_LIMITED
        return CONTAINING


def classify_run(
    run: RunResult, victim: str, check: Optional[Checker] = None
) -> Tuple[str, List[str]]:
    """Classify one faulted run; returns (label, oracle violations).

    ``"missed"`` means the kill never fired in this schedule (the victim
    finished first) — the run does not count toward the verdict.

    A step-budget cutoff is *not* one label: with processes still runnable
    the system was making progress (``step-limited``, livelock territory);
    with nothing runnable it was churning timers behind a wedge, which is
    indistinguishable from deadlock for every survivor and classifies as
    such.  Checked first — a truncated run proves nothing about misses or
    containment.
    """
    if run.step_limited:
        if not run.ready:
            return DEADLOCKING, []
        return STEP_LIMITED, []
    failures = run.failed()
    if victim not in failures:
        return "missed", []
    if run.deadlocked:
        return DEADLOCKING, []
    extra = [name for name in failures if name != victim]
    messages = list(check(run)) if check is not None else []
    if extra or messages:
        return PROPAGATING, messages
    # Not deadlocked and nobody else died: every surviving non-daemon ran
    # to completion (the scheduler cannot end otherwise).
    return CONTAINING, []


def enumerate_fault_points(
    build: ChaosBuilder, victim: str
) -> List[FaultPoint]:
    """Fault points for ``victim``: one per step it takes in a fault-free
    baseline run (the coordinate space ``RunResult.proc_steps`` records)."""
    baseline = build(ScriptedPolicy([]), None)
    steps = baseline.proc_steps.get(victim, 0)
    return [FaultPoint(victim, s) for s in range(steps)]


def chaos_explore(
    name: str,
    build: ChaosBuilder,
    victim: str,
    check: Optional[Checker] = None,
    max_runs_per_point: int = 25,
    max_depth: int = 40,
    max_points: Optional[int] = None,
    prune: bool = False,
) -> ChaosResult:
    """Inject a kill at every reachable fault point; explore schedules.

    For each :class:`FaultPoint` a fresh :class:`FaultPlan` kills ``victim``
    at that step, and the exploration engine (budget
    ``max_runs_per_point``) varies the interleaving around the crash.  Every
    run is classified via :func:`classify_run` and aggregated.  ``prune``
    enables canonical-fingerprint equivalence pruning
    (:mod:`repro.explore`): per-point coverage goes further on the same
    budget, at the cost of per-run classification counts no longer being
    comparable with unpruned runs (equivalent schedules collapse).
    """
    points = enumerate_fault_points(build, victim)
    if max_points is not None:
        points = points[:max_points]
    result = ChaosResult(name=name, victim=victim)
    for point in points:
        plan = FaultPlan().kill(point.process, at_step=point.step)
        outcome = PointOutcome(point=point)

        def run_one(policy: ScriptedPolicy) -> RunResult:
            try:
                return build(policy, plan)
            except StepLimitExceeded as exc:
                # Builder used on_steplimit="raise": reconstruct a result
                # from the exception's diagnostics so the run still counts.
                trace = Trace()
                for ev in exc.recent_events or []:
                    trace.append(ev)
                return RunResult(
                    trace=trace, step_limited=True,
                    ready=list(exc.ready or []),
                )

        def tally(run: RunResult) -> List[str]:
            outcome.runs += 1
            label, messages = classify_run(run, victim, check)
            if label == "missed":
                outcome.missed += 1
            elif label == DEADLOCKING:
                outcome.deadlocked += 1
            elif label == PROPAGATING:
                outcome.propagated += 1
                outcome.violations.extend(messages)
            elif label == STEP_LIMITED:
                outcome.step_limited += 1
            else:
                outcome.contained += 1
            return []  # classification is aggregated, not a "violation"

        ExplorationEngine(
            run_one, max_runs=max_runs_per_point, max_depth=max_depth,
            prune=prune,
        ).explore(tally)
        result.outcomes.append(outcome)
    return result


# ----------------------------------------------------------------------
# Representative per-mechanism scenarios (the robustness report)
# ----------------------------------------------------------------------
def _sem_scenario(crash_release: bool) -> ChaosBuilder:
    """N processes use Semaphore(1) as a lock around a critical region."""
    from ..runtime.primitives import Semaphore

    def build(policy, plan):
        sched = Scheduler(policy=policy, preemptive=True, fault_plan=plan)
        sem = Semaphore(
            sched, initial=1, name="s", crash_release=crash_release
        )

        def worker():
            yield from sem.p()
            sched.log("cs", "s")
            yield from sched.checkpoint()
            sem.v()

        for i in range(3):
            sched.spawn(worker, name="P{}".format(i))
        return sched.run(on_deadlock="return", on_error="record",
                         on_steplimit="return")

    return build


def _mutex_scenario() -> ChaosBuilder:
    from ..runtime.primitives import Mutex

    def build(policy, plan):
        sched = Scheduler(policy=policy, preemptive=True, fault_plan=plan)
        lock = Mutex(sched, name="m")

        def worker():
            yield from lock.acquire()
            sched.log("cs", "m")
            yield from sched.checkpoint()
            lock.release()

        for i in range(3):
            sched.spawn(worker, name="P{}".format(i))
        return sched.run(on_deadlock="return", on_error="record",
                         on_steplimit="return")

    return build


def _monitor_scenario() -> ChaosBuilder:
    from ..mechanisms.monitor import Monitor

    def build(policy, plan):
        sched = Scheduler(policy=policy, preemptive=True, fault_plan=plan)
        mon = Monitor(sched, name="mon")

        def worker():
            yield from mon.enter()
            sched.log("cs", "mon")
            yield from sched.checkpoint()
            mon.exit()

        for i in range(3):
            sched.spawn(worker, name="P{}".format(i))
        return sched.run(on_deadlock="return", on_error="record",
                         on_steplimit="return")

    return build


def _serializer_scenario() -> ChaosBuilder:
    from ..mechanisms.serializer import Serializer

    def build(policy, plan):
        sched = Scheduler(policy=policy, preemptive=True, fault_plan=plan)
        ser = Serializer(sched, name="ser")
        q = ser.queue("q")
        crowd = ser.crowd("c")

        def worker():
            yield from ser.enter()
            yield from ser.enqueue(q, guarantee=lambda: crowd.empty)
            yield from ser.join_crowd(crowd)
            sched.log("cs", "ser")
            yield from sched.checkpoint()
            yield from ser.leave_crowd(crowd)
            ser.exit()

        for i in range(3):
            sched.spawn(worker, name="P{}".format(i))
        return sched.run(on_deadlock="return", on_error="record",
                         on_steplimit="return")

    return build


def _pathexpr_scenario() -> ChaosBuilder:
    from ..mechanisms.pathexpr import PathResource

    def build(policy, plan):
        sched = Scheduler(policy=policy, preemptive=True, fault_plan=plan)
        res = PathResource(sched, "path work end", name="r")

        def body(r):
            sched.log("cs", "r.work")
            yield from sched.checkpoint()

        res.define("work", body)

        def worker():
            yield from res.invoke("work")

        for i in range(3):
            sched.spawn(worker, name="P{}".format(i))
        return sched.run(on_deadlock="return", on_error="record",
                         on_steplimit="return")

    return build


def _ccr_scenario() -> ChaosBuilder:
    from ..mechanisms.ccr import SharedRegion

    def build(policy, plan):
        sched = Scheduler(policy=policy, preemptive=True, fault_plan=plan)
        cell = SharedRegion(sched, {"entries": 0}, name="v")

        def worker():
            # Unconditional region (guard None): pure mutual exclusion.  A
            # guard over crash-corrupted shared state would re-introduce an
            # application-level wedge no mechanism can contain.
            yield from cell.enter()
            cell.vars["entries"] += 1
            sched.log("cs", "v")
            yield from sched.checkpoint()
            cell.leave()

        for i in range(3):
            sched.spawn(worker, name="P{}".format(i))
        return sched.run(on_deadlock="return", on_error="record",
                         on_steplimit="return")

    return build


def _channel_scenario() -> ChaosBuilder:
    """Two rendezvous pairs; killing one peer must not wedge its partner —
    the partner is *told* (PeerFailed) instead, i.e. the fault propagates."""
    from ..mechanisms.channels import Channel

    def build(policy, plan):
        sched = Scheduler(policy=policy, preemptive=True, fault_plan=plan)
        chan_a = Channel(sched, name="a")
        chan_b = Channel(sched, name="b")

        def sender(chan):
            def body():
                yield from chan.send("msg")
                sched.log("cs", chan.name)
            return body

        def receiver(chan):
            def body():
                yield from chan.receive()
                sched.log("cs", chan.name)
            return body

        chan_a.link(sched.spawn(sender(chan_a), name="P0"))
        chan_a.link(sched.spawn(receiver(chan_a), name="P1"))
        chan_b.link(sched.spawn(sender(chan_b), name="P2"))
        chan_b.link(sched.spawn(receiver(chan_b), name="P3"))
        return sched.run(on_deadlock="return", on_error="record",
                         on_steplimit="return")

    return build


def _cs_exclusion_check(run: RunResult) -> List[str]:
    """No two ``cs`` log events may be adjacent without an intervening
    possession change — approximated here as: survivors all reached the
    critical section at most once (each worker does one pass)."""
    seen: dict = {}
    for ev in run.trace.filter(kind="cs"):
        seen[ev.pname] = seen.get(ev.pname, 0) + 1
    return [
        "{} entered the critical region {} times".format(name, count)
        for name, count in seen.items()
        if count > 1
    ]


#: (row name, builder factory, victim, oracle, expected classification)
SCENARIOS = [
    ("semaphore", lambda: _sem_scenario(False), "P0",
     _cs_exclusion_check, DEADLOCKING),
    ("semaphore+crash_release", lambda: _sem_scenario(True), "P0",
     _cs_exclusion_check, CONTAINING),
    ("mutex", _mutex_scenario, "P0", _cs_exclusion_check, CONTAINING),
    ("monitor", _monitor_scenario, "P0", _cs_exclusion_check, CONTAINING),
    ("serializer", _serializer_scenario, "P0", _cs_exclusion_check,
     CONTAINING),
    ("ccr", _ccr_scenario, "P0", _cs_exclusion_check, CONTAINING),
    ("pathexpr", _pathexpr_scenario, "P0", _cs_exclusion_check, CONTAINING),
    ("channel", _channel_scenario, "P0", None, PROPAGATING),
]


def robustness_report(
    fast: bool = False,
) -> Tuple[List[ChaosResult], str]:
    """Run every per-mechanism chaos scenario; return (results, table).

    ``fast`` trims the schedule budget per fault point (for CI tier-1);
    the full sweep is what ``python -m repro robustness`` shows.
    """
    budget = 6 if fast else 25
    max_points = 4 if fast else None
    results = []
    for name, factory, victim, check, __ in SCENARIOS:
        results.append(chaos_explore(
            name,
            factory(),
            victim,
            check=check,
            max_runs_per_point=budget,
            max_points=max_points,
        ))
    rows = []
    for res in results:
        rows.append([
            res.name,
            str(len(res.outcomes)),
            str(res.runs),
            str(res.contained),
            str(res.propagated),
            str(res.deadlocked),
            str(res.step_limited),
            res.classification,
        ])
    table = ascii_table(
        ["mechanism", "fault points", "runs", "contained", "propagated",
         "deadlocked", "step-limited", "classification"],
        rows,
        title="Fault containment by mechanism (one kill per point, "
              "schedules explored per point)",
    )
    return results, table


def expected_classifications() -> dict:
    """Scenario name -> the classification the fault model predicts
    (asserted by the chaos regression tests)."""
    return {name: expected for name, __, __, __, expected in SCENARIOS}
