"""Liveness analysis: waiting-time measurement and starvation detection.

The paper's specifications speak about liveness qualitatively ("This
specification allows writers to starve", §5.1.1).  This module quantifies
it from traces:

* :func:`waiting_times` — per completed operation, the ``request`` →
  ``op_start`` gap in event-sequence units;
* :func:`class_wait_summary` — min/mean/max per operation class;
* :func:`check_bounded_waiting` — flags operations that waited longer than
  a bound (a bounded-bypass oracle);
* :func:`starvation_report` — requests that *never* got served in a run
  (the concrete form of "allows starvation").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from ..runtime.trace import Trace


@dataclass(frozen=True)
class Wait:
    """One completed request's wait."""

    pname: str
    obj: str
    request_seq: int
    start_seq: int

    @property
    def duration(self) -> int:
        """Wait length in event-sequence units."""
        return self.start_seq - self.request_seq


def waiting_times(
    trace: Trace, resource: str, ops: Iterable[str]
) -> List[Wait]:
    """Pair each request with its op_start (per process, per op, in order)
    and return the waits of the *served* requests."""
    objects = {"{}.{}".format(resource, op) for op in ops}
    pending: Dict[Tuple[int, str], List[int]] = {}
    waits: List[Wait] = []
    for ev in trace:
        if ev.obj not in objects:
            continue
        key = (ev.pid, ev.obj)
        if ev.kind == "request":
            pending.setdefault(key, []).append(ev.seq)
        elif ev.kind == "op_start" and pending.get(key):
            request_seq = pending[key].pop(0)
            waits.append(Wait(ev.pname, ev.obj, request_seq, ev.seq))
    return waits


def unserved_requests(
    trace: Trace, resource: str, ops: Iterable[str]
) -> List[Tuple[str, str, int]]:
    """Requests still waiting at the end of the run:
    (process, operation, request seq)."""
    objects = {"{}.{}".format(resource, op) for op in ops}
    pending: Dict[Tuple[int, str], List[Tuple[str, int]]] = {}
    for ev in trace:
        if ev.obj not in objects:
            continue
        key = (ev.pid, ev.obj)
        if ev.kind == "request":
            pending.setdefault(key, []).append((ev.pname, ev.seq))
        elif ev.kind == "op_start" and pending.get(key):
            pending[key].pop(0)
    out: List[Tuple[str, str, int]] = []
    for (__, obj), entries in pending.items():
        for pname, seq in entries:
            out.append((pname, obj, seq))
    return sorted(out, key=lambda item: item[2])


@dataclass
class WaitSummary:
    """Aggregate waiting statistics for one operation class."""

    obj: str
    served: int
    min_wait: int
    mean_wait: float
    max_wait: int
    unserved: int = 0

    def row(self) -> List[str]:
        """Table row for report rendering."""
        return [
            self.obj,
            str(self.served),
            str(self.min_wait),
            "{:.1f}".format(self.mean_wait),
            str(self.max_wait),
            str(self.unserved),
        ]


def class_wait_summary(
    trace: Trace, resource: str, ops: Iterable[str]
) -> Dict[str, WaitSummary]:
    """Per-operation waiting statistics, including unserved counts."""
    ops = list(ops)
    waits = waiting_times(trace, resource, ops)
    starved = unserved_requests(trace, resource, ops)
    summaries: Dict[str, WaitSummary] = {}
    for op in ops:
        obj = "{}.{}".format(resource, op)
        durations = [w.duration for w in waits if w.obj == obj]
        unserved = sum(1 for __, o, __s in starved if o == obj)
        if durations:
            summaries[op] = WaitSummary(
                obj=obj,
                served=len(durations),
                min_wait=min(durations),
                mean_wait=sum(durations) / len(durations),
                max_wait=max(durations),
                unserved=unserved,
            )
        else:
            summaries[op] = WaitSummary(obj, 0, 0, 0.0, 0, unserved)
    return summaries


def check_bounded_waiting(
    trace: Trace, resource: str, ops: Iterable[str], bound: int
) -> List[str]:
    """Oracle: no served request waited more than ``bound`` sequence units,
    and no request went unserved."""
    violations: List[str] = []
    for wait in waiting_times(trace, resource, ops):
        if wait.duration > bound:
            violations.append(
                "{} waited {} (> bound {}) for {}".format(
                    wait.pname, wait.duration, bound, wait.obj
                )
            )
    for pname, obj, seq in unserved_requests(trace, resource, ops):
        violations.append(
            "{} never served for {} (requested seq {})".format(
                pname, obj, seq
            )
        )
    return violations


def starvation_report(
    trace: Trace, resource: str, ops: Iterable[str]
) -> str:
    """Human-readable starvation/waiting summary."""
    summaries = class_wait_summary(trace, resource, ops)
    lines = ["{:<14} {:>6} {:>6} {:>8} {:>6} {:>8}".format(
        "operation", "served", "min", "mean", "max", "unserved"
    )]
    for op in sorted(summaries):
        s = summaries[op]
        lines.append("{:<14} {:>6} {:>6} {:>8.1f} {:>6} {:>8}".format(
            s.obj, s.served, s.min_wait, s.mean_wait, s.max_wait, s.unserved
        ))
    return "\n".join(lines)
