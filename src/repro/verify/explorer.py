"""Bounded stateless schedule exploration.

Because all nondeterminism flows through the scheduling policy, a run is a
pure function of its decision string.  The explorer enumerates decision
strings depth-first: run with a prefix (defaulting to choice 0 afterwards),
read back how many alternatives existed at each step, and queue every
first-deviation sibling.  Each distinct schedule is visited exactly once.

This is a stateless-model-checking style search (bounded by ``max_runs`` and
``max_depth``), sufficient to *find* the paper's footnote-3 anomaly
automatically (experiment E5) and to validate safety properties across many
interleavings in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..runtime.policies import ScriptedPolicy
from ..runtime.trace import RunResult

BuildAndRun = Callable[[ScriptedPolicy], RunResult]
Checker = Callable[[RunResult], List[str]]


@dataclass
class ExplorationResult:
    """Outcome of a schedule-space search.

    Attributes:
        runs: number of schedules executed.
        violations: list of (decision string, violation messages).
        exhausted: True when the whole (depth-bounded) space was covered
            before hitting ``max_runs``.
        witness: decisions of the first violating schedule, if any.
    """

    runs: int = 0
    violations: List[Tuple[Tuple[int, ...], List[str]]] = field(
        default_factory=list
    )
    exhausted: bool = True

    @property
    def witness(self) -> Optional[Tuple[int, ...]]:
        if self.violations:
            return self.violations[0][0]
        return None

    @property
    def ok(self) -> bool:
        """True when no schedule violated the property."""
        return not self.violations


class ScheduleExplorer:
    """Enumerate schedules of a system under test.

    Args:
        build_and_run: builds a *fresh* system with the given policy and
            runs it to completion, returning the :class:`RunResult`.  It
            must not share mutable state across calls.
        max_runs: schedule budget.
        max_depth: decisions beyond this depth are not branched on
            (choice 0 is taken), bounding the tree width at depth.
    """

    def __init__(
        self,
        build_and_run: BuildAndRun,
        max_runs: int = 2000,
        max_depth: int = 60,
    ) -> None:
        self._build_and_run = build_and_run
        self.max_runs = max_runs
        self.max_depth = max_depth

    def explore(
        self,
        check: Checker,
        stop_at_first: bool = False,
    ) -> ExplorationResult:
        """Search for schedules where ``check`` reports violations.

        Args:
            check: maps a run result to violation messages (empty = ok).
            stop_at_first: return as soon as one violating schedule is found
                (used when hunting for a witness, e.g. experiment E5).
        """
        result = ExplorationResult()
        stack: List[List[int]] = [[]]
        while stack:
            if result.runs >= self.max_runs:
                result.exhausted = False
                break
            prefix = stack.pop()
            policy = ScriptedPolicy(prefix)
            run = self._build_and_run(policy)
            result.runs += 1
            messages = check(run)
            if messages:
                result.violations.append((tuple(policy.taken), messages))
                if stop_at_first:
                    result.exhausted = False
                    return result
            branch_log = policy.branch_log
            horizon = min(len(branch_log), self.max_depth)
            for position in range(len(prefix), horizon):
                for choice in range(1, branch_log[position]):
                    stack.append(prefix + [0] * (position - len(prefix)) + [choice])
        return result

    def find_schedule(self, predicate: Checker) -> Optional[Tuple[int, ...]]:
        """Return the decision string of the first schedule satisfying
        ``predicate`` (non-empty result = found), or ``None``."""
        found = self.explore(predicate, stop_at_first=True)
        return found.witness
