"""Bounded stateless schedule exploration — compatibility shim.

The search engine moved to :mod:`repro.explore` (DESIGN.md §9), which adds
canonical-fingerprint equivalence pruning, a deterministic parallel
frontier, witness minimization, and pluggable detectors.  This module
keeps the original entry point alive: :class:`ScheduleExplorer` is the
engine with pruning **off** — the exact naive first-deviation DFS this
file used to implement, schedule for schedule — so existing callers and
tests see identical enumeration order and counts.

New code should use :class:`repro.explore.ExplorationEngine` (serial,
``prune=True`` where the system registers its shared user state) or
:func:`repro.explore.explore_parallel` (named targets, many workers).
"""

from __future__ import annotations

from ..explore.engine import (
    BuildAndRun,
    Checker,
    ExplorationEngine,
    ExplorationResult,
)

__all__ = [
    "BuildAndRun",
    "Checker",
    "ExplorationResult",
    "ScheduleExplorer",
]


class ScheduleExplorer(ExplorationEngine):
    """Enumerate schedules of a system under test (naive, unpruned).

    Args:
        build_and_run: builds a *fresh* system with the given policy and
            runs it to completion, returning the :class:`RunResult`.  It
            must not share mutable state across calls.
        max_runs: schedule budget.
        max_depth: decisions beyond this depth are not branched on
            (choice 0 is taken), bounding the tree width at depth.
    """

    def __init__(
        self,
        build_and_run: BuildAndRun,
        max_runs: int = 2000,
        max_depth: int = 60,
    ) -> None:
        super().__init__(build_and_run, max_runs=max_runs,
                         max_depth=max_depth, prune=False)
