"""Trace oracles: machine-checkable forms of the paper's correctness claims.

Every oracle takes a :class:`~repro.runtime.trace.Trace` and returns a list
of violation strings (empty = property holds).  They rely on the uniform
event vocabulary: ``request`` (operation asked for), ``op_start`` /
``op_end`` (operation executing), plus problem-specific ``serve`` /
``wakeme`` / ``wake`` events.

Two readers/writers priority oracles are provided deliberately (see
DESIGN.md E5 discussion):

* :func:`check_no_overtake` — arrival-order based, robust under any
  schedule; suited to randomized property tests.
* :func:`check_readers_priority_strict` — the Courtois–Heymans–Parnas
  condition itself ("no writer starts while a read request is pending"),
  used on *scripted* schedules where request/queue timing is controlled.
  This is the oracle that exposes the paper's footnote-3 anomaly in the
  Figure-1 path-expression solution.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..runtime.trace import Event, Trace


def _full(resource: str, op: str) -> str:
    return "{}.{}".format(resource, op)


# ----------------------------------------------------------------------
# Exclusion
# ----------------------------------------------------------------------
def check_mutual_exclusion(
    trace: Trace,
    resource: str,
    exclusive_ops: Iterable[str],
    shared_ops: Iterable[str] = (),
) -> List[str]:
    """``rw_exclusion``-style safety: an exclusive op overlaps nothing;
    shared ops may overlap each other but not exclusive ops."""
    exclusive = {_full(resource, op) for op in exclusive_ops}
    shared = {_full(resource, op) for op in shared_ops}
    watched = exclusive | shared
    active_exclusive: Set[Tuple[int, str]] = set()
    active_shared: Set[Tuple[int, str]] = set()
    violations: List[str] = []
    for ev in trace.filter(kind="op_start|op_end",
                           predicate=lambda ev: ev.obj in watched):
        key = (ev.pid, ev.obj)
        if ev.kind == "op_start":
            if ev.obj in exclusive:
                if active_exclusive or active_shared:
                    violations.append(
                        "seq {}: exclusive {} by {} started while {} active".format(
                            ev.seq,
                            ev.obj,
                            ev.pname,
                            sorted(o for __, o in active_exclusive | active_shared),
                        )
                    )
                active_exclusive.add(key)
            else:
                if active_exclusive:
                    violations.append(
                        "seq {}: shared {} by {} started during exclusive {}".format(
                            ev.seq,
                            ev.obj,
                            ev.pname,
                            sorted(o for __, o in active_exclusive),
                        )
                    )
                active_shared.add(key)
        else:
            active_exclusive.discard(key)
            active_shared.discard(key)
    return violations


def check_single_occupancy(
    trace: Trace, resource: str, ops: Iterable[str]
) -> List[str]:
    """``resource_mutex``: at most one of the given ops in progress at once."""
    return check_mutual_exclusion(trace, resource, exclusive_ops=ops)


# ----------------------------------------------------------------------
# Ordering / priority
# ----------------------------------------------------------------------
def _paired_requests_and_starts(
    trace: Trace, objects: Set[str]
) -> Tuple[Iterable[Event], Iterable[Event]]:
    requests = trace.filter(kind="request",
                            predicate=lambda ev: ev.obj in objects)
    starts = trace.filter(kind="op_start",
                          predicate=lambda ev: ev.obj in objects)
    return requests, starts


def check_fcfs(
    trace: Trace, resource: str, ops: Iterable[str]
) -> List[str]:
    """``arrival_order``: operations start in the order they were requested.

    Requests and starts are matched per (process, operation) occurrence
    count, so a process may issue several requests.
    """
    objects = {_full(resource, op) for op in ops}
    requests, starts = _paired_requests_and_starts(trace, objects)
    # k-th request of (pid, obj) corresponds to k-th start of (pid, obj).
    start_iters: Dict[Tuple[int, str], List[Event]] = {}
    for ev in starts:
        start_iters.setdefault((ev.pid, ev.obj), []).append(ev)
    violations: List[str] = []
    matched: List[Tuple[Event, Event]] = []
    occurrence: Dict[Tuple[int, str], int] = {}
    for req in requests:
        key = (req.pid, req.obj)
        index = occurrence.get(key, 0)
        occurrence[key] = index + 1
        own_starts = start_iters.get(key, [])
        if index >= len(own_starts):
            continue  # request never served (blocked at end of run)
        matched.append((req, own_starts[index]))
    # FCFS: sorting by request seq must give starts already in seq order.
    matched.sort(key=lambda pair: pair[0].seq)
    last_start = -1
    for req, start in matched:
        if start.seq < last_start:
            violations.append(
                "seq {}: {} by {} requested earlier but started later "
                "(FCFS violated)".format(req.seq, req.obj, req.pname)
            )
        last_start = max(last_start, start.seq)
    return violations


def _class_events(
    trace: Trace, resource: str, op: str
) -> Tuple[Iterable[Event], Dict[Tuple[int, int], Event]]:
    """Requests of one op plus a map from (pid, occurrence) to start."""
    obj = _full(resource, op)
    requests = trace.filter(kind="request", obj=obj)
    starts: Dict[Tuple[int, int], Event] = {}
    counts: Dict[int, int] = {}
    for ev in trace.filter(kind="op_start", obj=obj):
        index = counts.get(ev.pid, 0)
        counts[ev.pid] = index + 1
        starts[(ev.pid, index)] = ev
    return requests, starts


def check_no_overtake(
    trace: Trace,
    resource: str,
    preferred_op: str,
    deferred_op: str,
) -> List[str]:
    """Weak priority: no ``deferred_op`` that was *requested after* a
    ``preferred_op`` request may start before it.

    Schedule-robust: holds for every correct priority solution regardless of
    entry-queue races, so it is the oracle used under randomized schedules.
    """
    preferred_requests, preferred_starts = _class_events(
        trace, resource, preferred_op
    )
    deferred_requests, deferred_starts = _class_events(
        trace, resource, deferred_op
    )
    violations: List[str] = []
    pref: List[Tuple[Event, Optional[Event]]] = []
    occ: Dict[int, int] = {}
    for req in preferred_requests:
        index = occ.get(req.pid, 0)
        occ[req.pid] = index + 1
        pref.append((req, preferred_starts.get((req.pid, index))))
    occ = {}
    for req in deferred_requests:
        index = occ.get(req.pid, 0)
        occ[req.pid] = index + 1
        start = deferred_starts.get((req.pid, index))
        if start is None:
            continue
        for p_req, p_start in pref:
            if p_req.seq < req.seq and (
                p_start is None or p_start.seq > start.seq
            ):
                violations.append(
                    "seq {}: {} by {} (requested seq {}) started before "
                    "earlier-requested {} by {} (seq {})".format(
                        start.seq,
                        req.obj,
                        req.pname,
                        req.seq,
                        p_req.obj,
                        p_req.pname,
                        p_req.seq,
                    )
                )
    return violations


def check_readers_priority_strict(
    trace: Trace,
    resource: str,
    read_op: str = "read",
    write_op: str = "write",
) -> List[str]:
    """The Courtois–Heymans–Parnas readers-priority condition: a write may
    start only when **no read request is pending** (requested but not yet
    started).  Exposes the footnote-3 anomaly on scripted schedules."""
    return _strict_priority(trace, resource, read_op, write_op)


def check_writers_priority_strict(
    trace: Trace,
    resource: str,
    read_op: str = "read",
    write_op: str = "write",
) -> List[str]:
    """Mirror image: a read may start only when no write request is pending."""
    return _strict_priority(trace, resource, write_op, read_op)


def _strict_priority(
    trace: Trace, resource: str, preferred_op: str, deferred_op: str
) -> List[str]:
    preferred_obj = _full(resource, preferred_op)
    deferred_obj = _full(resource, deferred_op)
    pending: Dict[Tuple[int, str], List[int]] = {}
    violations: List[str] = []
    for ev in trace.filter(
        kind="request|op_start",
        predicate=lambda ev: ev.obj in (preferred_obj, deferred_obj),
    ):
        if ev.obj == preferred_obj:
            key = (ev.pid, ev.obj)
            if ev.kind == "request":
                pending.setdefault(key, []).append(ev.seq)
            elif ev.kind == "op_start" and pending.get(key):
                pending[key].pop(0)
        elif ev.obj == deferred_obj and ev.kind == "op_start":
            waiting = [
                seq for seqs in pending.values() for seq in seqs if seq < ev.seq
            ]
            if waiting:
                violations.append(
                    "seq {}: {} by {} started while {} request(s) "
                    "pending since seq {}".format(
                        ev.seq,
                        ev.obj,
                        ev.pname,
                        preferred_op,
                        min(waiting),
                    )
                )
    return violations


def check_alternation(
    trace: Trace,
    resource: str,
    first_op: str = "put",
    second_op: str = "get",
) -> List[str]:
    """``slot_alternation``: starts strictly alternate first/second/first…"""
    objects = {_full(resource, first_op): first_op, _full(resource, second_op): second_op}
    expected = first_op
    violations: List[str] = []
    for ev in trace.filter(kind="op_start",
                           predicate=lambda ev: ev.obj in objects):
        op = objects[ev.obj]
        if op != expected:
            violations.append(
                "seq {}: expected {} but {} started (alternation broken)".format(
                    ev.seq, expected, op
                )
            )
            # resynchronize to keep reports readable
            expected = op
        expected = second_op if expected == first_op else first_op
    return violations


# ----------------------------------------------------------------------
# Parameter-based disciplines
# ----------------------------------------------------------------------
def check_scan_order(
    trace: Trace,
    resource: str = "disk",
    start_track: int = 0,
    ascending: bool = True,
) -> List[str]:
    """Elevator discipline: every ``serve`` event must pick, from the
    requests pending at that moment, the nearest track in the current sweep
    direction (reversing at the extremes).

    Requests are ``request`` events whose detail carries the track (either
    the bare int or an args tuple); services are ``serve`` events with the
    track in ``detail``.
    """

    def track_of(ev: Event) -> int:
        detail = ev.detail
        if isinstance(detail, tuple):
            detail = detail[0]
        return int(detail)

    pending: List[int] = []
    head = start_track
    direction_up = ascending
    violations: List[str] = []
    # Only the bare-resource parameter stream counts: "<resource>.<op>"
    # request events are the generic op-pairing stream and would double-
    # count tracks.
    for ev in trace.filter(obj=resource):
        if ev.kind == "request" and ev.detail is not None:
            pending.append(track_of(ev))
        elif ev.kind == "serve":
            served = track_of(ev)
            if served not in pending:
                violations.append(
                    "seq {}: served track {} never requested".format(
                        ev.seq, served
                    )
                )
                continue
            ahead = sorted(t for t in pending if t >= head)
            behind = sorted((t for t in pending if t <= head), reverse=True)
            if direction_up:
                expected = ahead[0] if ahead else (behind[0] if behind else None)
                if not ahead:
                    direction_up = False
            else:
                expected = behind[0] if behind else (ahead[0] if ahead else None)
                if not behind:
                    direction_up = True
            if expected is not None and served != expected:
                violations.append(
                    "seq {}: served track {} but elevator order expects {} "
                    "(head={}, pending={})".format(
                        ev.seq, served, expected, head, sorted(pending)
                    )
                )
            pending.remove(served)
            head = served
    return violations


def check_alarm_wakeups(
    trace: Trace, resource: str = "alarm"
) -> List[str]:
    """Alarm-clock discipline: every ``wake`` happens exactly when the
    virtual clock reaches request time + requested delay (ticker period 1).

    Requests are ``wakeme`` events with the delay in ``detail``; completions
    are ``wake`` events from the same process.
    """
    deadlines: Dict[int, List[int]] = {}
    violations: List[str] = []
    for ev in trace.filter(kind="wakeme|wake", obj=resource):
        if ev.kind == "wakeme":
            delay = ev.detail if not isinstance(ev.detail, tuple) else ev.detail[0]
            deadlines.setdefault(ev.pid, []).append(ev.time + int(delay))
        elif ev.kind == "wake":
            queue = deadlines.get(ev.pid)
            if not queue:
                violations.append(
                    "seq {}: {} woke without a wakeme".format(ev.seq, ev.pname)
                )
                continue
            deadline = queue.pop(0)
            if ev.time < deadline:
                violations.append(
                    "seq {}: {} woke at t={} before its deadline t={}".format(
                        ev.seq, ev.pname, ev.time, deadline
                    )
                )
            elif ev.time > deadline:
                violations.append(
                    "seq {}: {} woke at t={} after its deadline t={} "
                    "(missed ticks)".format(ev.seq, ev.pname, ev.time, deadline)
                )
    return violations


def check_class_priority_two_stage(
    trace: Trace,
    resource: str,
    high_op: str,
    low_op: str,
) -> List[str]:
    """The E8 (staged queue) discipline: among *pending* requests when the
    resource is granted, any high-class request beats every low-class one,
    and FCFS holds within each class.

    Grants are ``op_start`` events of either op; pendings are ``request``
    events not yet started.
    """
    high_obj = _full(resource, high_op)
    low_obj = _full(resource, low_op)
    pending: List[Event] = []
    violations: List[str] = []
    for ev in trace.filter(
        kind="request|op_start",
        predicate=lambda ev: ev.obj in (high_obj, low_obj),
    ):
        if ev.kind == "request":
            pending.append(ev)
        else:
            # Find the matching pending request (same pid+obj, oldest).
            match = None
            for req in pending:
                if req.pid == ev.pid and req.obj == ev.obj:
                    match = req
                    break
            if match is None:
                continue
            if ev.obj == low_obj:
                highs = [r for r in pending if r.obj == high_obj]
                if highs:
                    violations.append(
                        "seq {}: low-class {} served while high-class "
                        "pending since seq {}".format(
                            ev.seq, ev.pname, min(r.seq for r in highs)
                        )
                    )
            same_class_earlier = [
                r for r in pending if r.obj == ev.obj and r.seq < match.seq
            ]
            if same_class_earlier:
                violations.append(
                    "seq {}: {} served out of FCFS order within its class".format(
                        ev.seq, ev.pname
                    )
                )
            pending.remove(match)
    return violations
