"""The combined-fault resilience report: crash × partition, at scale.

Extends the partition report along the axis the ROADMAP names: every
cell here combines a :class:`FaultPlan` (process crashes, restarted by
supervision) with a :class:`NetPlan` (partitions) against clusters of
five or more nodes, and measures what the single-fault reports cannot —
the interaction.  Three existing scenarios run at 5-node scale beside the
crash-restart-under-partition scenario
(:func:`~repro.problems.distributed.build_restart_lock`) in both its
fenced and unfenced variants:

* ``restart_lock`` (fencing on) must classify **partition-tolerant**
  under the combined fault: the resource rejects the amnesiac restarted
  holder's stale token, the holder fences out and re-acquires post-heal;
* ``restart_lock_unfenced`` must classify **split-brain** under exactly
  the same faults — the witness the joint search
  (:mod:`repro.resilience.search`) finds and ddmin-minimizes to a
  2-fault {kill, partition} set.

Beside MTTR, every cell reports **availability**: the fraction of
virtual time a valid leader/holder existed
(:func:`repro.obs.recovery.compute_availability`) — the number that
degrades as faults compose even when every run stays classified
tolerant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core import ascii_table
from ..dist import NetPlan
from ..obs.recovery import compute_availability, compute_partition_mttr
from ..runtime.errors import StepLimitExceeded
from ..runtime.faults import FaultPlan
from ..runtime.policies import ScriptedPolicy
from ..runtime.trace import RunResult, Trace
from ..explore.engine import ExplorationEngine
from ..verify.partition import (SPLIT_BRAIN, TOLERANT, WEDGED, Checker,
                                check_at_most_one_leader, check_fencing,
                                check_lease_exclusion,
                                check_mutex_intervals,
                                make_progress_after_heal)
from .search import (CrashSpec, CutSpec, JointSearchResult, joint_plan,
                     search_joint_plans)

__all__ = [
    "CombinedOutcome", "ResilienceScenarioResult", "RESILIENCE_CLUSTER",
    "resilience_scenarios", "explore_resilience_scenario",
    "resilience_report", "search_restart_witness",
    "expected_resilience_classifications", "classify_run",
]

#: Default cluster size for every scenario (≥ 5 per the acceptance bar).
RESILIENCE_CLUSTER = 5

#: A combined-fault cell: (label, netplan, fault plan, expected
#: classification, post-heal evidence kinds).
CombinedCell = Tuple[str, Optional[NetPlan], Optional[FaultPlan], str,
                     Tuple[str, ...]]
#: A dist builder under both plans.
CombinedBuilder = Callable[
    [ScriptedPolicy, Optional[NetPlan], Optional[FaultPlan]], RunResult]


# ----------------------------------------------------------------------
# Outcome containers
# ----------------------------------------------------------------------
@dataclass
class CombinedOutcome:
    """Aggregate over explored schedules for one (scenario, cell)."""

    cell_name: str
    netplan: Optional[NetPlan]
    fault_plan: Optional[FaultPlan]
    expected: str
    runs: int = 0
    split_brain: int = 0
    wedged: int = 0
    tolerant: int = 0
    violations: List[str] = field(default_factory=list)
    failover_samples: List[int] = field(default_factory=list)
    post_heal_samples: List[int] = field(default_factory=list)
    availability_samples: List[float] = field(default_factory=list)
    restarts: int = 0
    message_stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def classification(self) -> str:
        if self.split_brain:
            return SPLIT_BRAIN
        if self.wedged:
            return WEDGED
        return TOLERANT

    @property
    def faults(self) -> List[str]:
        out: List[str] = []
        if self.fault_plan is not None:
            out.extend(self.fault_plan.describe())
        if self.netplan is not None:
            out.extend(self.netplan.describe())
        return out

    def _mean(self, samples: List) -> Optional[float]:
        if not samples:
            return None
        return sum(samples) / float(len(samples))

    @property
    def mttr_failover(self) -> Optional[float]:
        return self._mean(self.failover_samples)

    @property
    def mttr_post_heal(self) -> Optional[float]:
        return self._mean(self.post_heal_samples)

    @property
    def availability(self) -> Optional[float]:
        return self._mean(self.availability_samples)


@dataclass
class ResilienceScenarioResult:
    """Every combined-fault cell of one scenario."""

    name: str
    cluster: int
    outcomes: List[CombinedOutcome] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return sum(o.runs for o in self.outcomes)

    @property
    def violations(self) -> List[str]:
        out: List[str] = []
        for o in self.outcomes:
            out.extend(o.violations)
        return out

    @property
    def surprises(self) -> List[str]:
        return [
            "{} under {}: expected {}, observed {}".format(
                self.name, o.cell_name, o.expected, o.classification)
            for o in self.outcomes if o.classification != o.expected
        ]

    @property
    def mttr_failover(self) -> Optional[float]:
        samples = [s for o in self.outcomes for s in o.failover_samples]
        if not samples:
            return None
        return sum(samples) / float(len(samples))

    @property
    def mttr_post_heal(self) -> Optional[float]:
        samples = [s for o in self.outcomes for s in o.post_heal_samples]
        if not samples:
            return None
        return sum(samples) / float(len(samples))

    @property
    def availability(self) -> Optional[float]:
        samples = [s for o in self.outcomes
                   for s in o.availability_samples]
        if not samples:
            return None
        return sum(samples) / float(len(samples))


# ----------------------------------------------------------------------
# Classification
# ----------------------------------------------------------------------
def classify_run(
    run: RunResult,
    safety: Checker,
    success: Callable[[RunResult], bool],
    progress: Optional[Checker] = None,
) -> Tuple[str, List[str]]:
    """One run's label and any safety-violation messages — the same
    precedence the partition report uses (split-brain > wedged >
    tolerant), factored out so the joint search classifies identically."""
    unsafe = safety(run)
    if unsafe:
        return SPLIT_BRAIN, unsafe
    if (run.deadlocked or run.step_limited or not success(run)
            or (progress is not None and progress(run))):
        return WEDGED, []
    return TOLERANT, []


def make_classifier(
    safety: Checker,
    success: Callable[[RunResult], bool],
) -> Callable[[RunResult], str]:
    """A run → label function for :func:`search_joint_plans` (no
    progress oracle: the search's candidate plans carry their own heal
    schedules, and wedging *before* the heal already defeats)."""
    def classify(run: RunResult) -> str:
        return classify_run(run, safety, success)[0]

    return classify


# ----------------------------------------------------------------------
# Scenario table (5-node clusters, combined-fault cells)
# ----------------------------------------------------------------------
def _compose(*checkers: Checker) -> Checker:
    def check(run: RunResult) -> List[str]:
        out: List[str] = []
        for c in checkers:
            out.extend(c(run))
        return out

    return check


def _member_names(cluster: int) -> List[str]:
    return ["n{}".format(i) for i in range(cluster)]


def resilience_scenarios(cluster: int = RESILIENCE_CLUSTER) -> List[Tuple]:
    """(name, builder, safety, success, cells) — the combined-fault table
    at ``cluster`` nodes.  Every non-clean cell injects a crash, a
    partition, or both; expectations encode the designed story: quorum
    scenarios tolerate a minority crash + a healed partition, Lamport's
    all-ack algorithm wedges when any member dies, and the restart-lock
    pair splits on fencing alone."""
    # Imported here, not at module top: the restart-lock builder uses
    # this package's durable store, so a top-level import would cycle.
    from ..problems.distributed import (build_lamport_mutex,
                                        build_leader_election,
                                        build_quorum_lock,
                                        build_restart_lock,
                                        restart_server_names)
    if cluster < 3:
        raise ValueError("resilience scenarios need >= 3 nodes")
    members = _member_names(cluster)
    servers = restart_server_names(cluster)
    majority_down = cluster - (cluster // 2 + 1)  # killable replicas

    def lamport(policy, netplan, fault_plan):
        return build_lamport_mutex(policy, netplan, fault_plan,
                                   deadline=110, nodes=members)

    def lamport_ok(run: RunResult) -> bool:
        killed = {ev.obj for ev in run.trace.filter(kind="killed")}
        alive = [n for n in members if n not in killed]
        return bool(alive) and all(
            isinstance(run.results.get(n), dict)
            and run.results[n].get("exited") for n in alive)

    def quorum(policy, netplan, fault_plan):
        # A dead replica costs every acquisition round its full timeout,
        # so the 5-server lease needs a longer validity window than the
        # 3-server default to leave usable hold time.
        return build_quorum_lock(policy, netplan, fault_plan,
                                 deadline=160, duration=30,
                                 servers=servers)

    def quorum_ok(run: RunResult) -> bool:
        return any(
            isinstance(run.results.get(c), dict)
            and run.results[c].get("locked") for c in ("c0", "c1"))

    def election(policy, netplan, fault_plan):
        return build_leader_election(policy, netplan, fault_plan,
                                     deadline=140, nodes=members)

    def election_ok(run: RunResult) -> bool:
        if run.trace.first(kind="leader_elected") is None:
            return False
        killed = {ev.obj for ev in run.trace.filter(kind="killed")}
        return any(
            isinstance(run.results.get(n), dict)
            and run.results[n].get("leader")
            for n in members if n not in killed)

    def restart(policy, netplan, fault_plan):
        return build_restart_lock(policy, netplan, fault_plan,
                                  servers=cluster, fencing=True)

    def restart_unfenced(policy, netplan, fault_plan):
        return build_restart_lock(policy, netplan, fault_plan,
                                  servers=cluster, fencing=False)

    def restart_ok(run: RunResult) -> bool:
        return any(
            isinstance(run.results.get(c), dict)
            and run.results[c].get("locked") for c in ("c0", "c1"))

    # The canonical combined fault against the restart lock: kill the
    # holder mid-write-session, with a partition that opens just before
    # the restarted incarnation's renewal and heals much later.
    restart_combo = (
        CrashSpec("c0", at_time=14),
        CutSpec("c0", at=12, heal_at=70),
    )
    combo_fp, combo_np = joint_plan(restart_combo)
    combo_fp2, combo_np2 = joint_plan(restart_combo)
    crash_only, _ = joint_plan(restart_combo[:1])
    _, cut_only = joint_plan(restart_combo[1:])

    return [
        ("lamport_mutex", lamport, check_mutex_intervals, lamport_ok, [
            ("clean", None, None, TOLERANT, ()),
            # Every requester needs an ack from every member: one death
            # wedges the whole ring (safe, not live) — the scenario that
            # shows why the quorum designs below exist.
            ("crash+partition",
             NetPlan().isolate(members[0], at=1, heal_at=45),
             FaultPlan().kill(members[1], at_time=10),
             WEDGED, ()),
        ]),
        ("quorum_lock", quorum, check_lease_exclusion, quorum_ok, [
            ("clean", None, None, TOLERANT, ()),
            # A minority of replicas crash AND a client is cut off: the
            # surviving majority keeps granting, the stranded client
            # re-acquires after the heal.
            ("crash+partition",
             NetPlan().isolate("c0", at=2, heal_at=70),
             FaultPlan().kill(servers[1], at_time=8),
             TOLERANT, ("lease_acquired",)),
        ]),
        ("leader_election", election, check_at_most_one_leader,
         election_ok, [
            ("clean", None, None, TOLERANT, ()),
            # Kill the sitting leader and cut another member: the
            # remaining majority elects a higher term.
            ("crash+partition",
             NetPlan().isolate(members[1], at=20, heal_at=80),
             FaultPlan().kill(members[0], at_time=30),
             TOLERANT, ("leader_elected", "leader_stepdown")),
        ]),
        ("restart_lock",
         restart, _compose(check_fencing, check_lease_exclusion),
         restart_ok, [
            ("clean", None, None, TOLERANT, ()),
            ("crash-restart", None, crash_only, TOLERANT, ()),
            ("partition-heal", cut_only, None, TOLERANT, ()),
            # The headline cell: the amnesiac restarted holder is fenced
            # at the resource and re-acquires after the heal.
            ("crash+partition", combo_np, combo_fp, TOLERANT,
             ("lease_acquired",)),
        ]),
        ("restart_lock_unfenced",
         restart_unfenced, _compose(check_fencing, check_lease_exclusion),
         restart_ok, [
            # Identical faults, fencing off: the stale holder's writes
            # interleave with the new holder's — split-brain.
            ("crash+partition", combo_np2, combo_fp2, SPLIT_BRAIN, ()),
        ]),
    ]


def _majority_note(cluster: int) -> int:
    return cluster // 2 + 1


# ----------------------------------------------------------------------
# Exploration
# ----------------------------------------------------------------------
def explore_resilience_scenario(
    name: str,
    build: CombinedBuilder,
    safety: Checker,
    success: Callable[[RunResult], bool],
    cells: List[CombinedCell],
    cluster: int,
    max_runs_per_cell: int = 3,
    max_depth: int = 40,
) -> ResilienceScenarioResult:
    """Explore one scenario under every combined-fault cell."""
    result = ResilienceScenarioResult(name=name, cluster=cluster)
    for cell_name, netplan, fault_plan, expected, heal_kinds in cells:
        outcome = CombinedOutcome(
            cell_name=cell_name, netplan=netplan, fault_plan=fault_plan,
            expected=expected)
        progress = make_progress_after_heal(
            netplan or NetPlan(), progress_kinds=heal_kinds)

        def run_one(policy: ScriptedPolicy) -> RunResult:
            try:
                return build(policy, netplan, fault_plan)
            except StepLimitExceeded as exc:
                trace = Trace()
                for ev in exc.recent_events or []:
                    trace.append(ev)
                return RunResult(trace=trace, step_limited=True,
                                 ready=list(exc.ready or []))

        def tally(run: RunResult) -> List[str]:
            outcome.runs += 1
            label, unsafe = classify_run(run, safety, success, progress)
            if label == SPLIT_BRAIN:
                outcome.split_brain += 1
                outcome.violations.extend(unsafe)
            elif label == WEDGED:
                outcome.wedged += 1
            else:
                outcome.tolerant += 1
            mttr = compute_partition_mttr(run)
            for span in mttr.spans:
                if span.ticks_to_failover is not None:
                    outcome.failover_samples.append(span.ticks_to_failover)
                if span.ticks_to_post_heal is not None:
                    outcome.post_heal_samples.append(
                        span.ticks_to_post_heal)
            avail = compute_availability(run)
            if avail.intervals:
                # Scenarios with no lease/leader service notion (lamport)
                # contribute no sample rather than a meaningless 0%.
                outcome.availability_samples.append(avail.fraction)
            outcome.restarts = max(
                outcome.restarts,
                len(run.trace.filter(kind="restart")))
            net = getattr(run, "network_stats", None)
            if net:
                for key, val in net.items():
                    if isinstance(val, dict):
                        gauges = outcome.message_stats.setdefault(key, {})
                        for node, peak in val.items():
                            if peak > gauges.get(node, 0):
                                gauges[node] = peak
                    else:
                        outcome.message_stats[key] = (
                            outcome.message_stats.get(key, 0) + val)
            return []

        ExplorationEngine(
            run_one, max_runs=max_runs_per_cell, max_depth=max_depth,
        ).explore(tally)
        result.outcomes.append(outcome)
    return result


# ----------------------------------------------------------------------
# The joint-search acceptance story
# ----------------------------------------------------------------------
def search_restart_witness(
    cluster: int = RESILIENCE_CLUSTER,
    budget: int = 40,
) -> Tuple[JointSearchResult, str]:
    """Search the crash × partition product space against the *unfenced*
    restart lock; then replay the minimized witness against the fenced
    variant.  Returns ``(search result, fenced label)`` — the acceptance
    pair: a ≤2-fault split-brain witness unfenced, ``partition-tolerant``
    with fencing on under the very same faults."""
    from ..problems.distributed import build_restart_lock
    safety = _compose(check_fencing, check_lease_exclusion)

    def success(run: RunResult) -> bool:
        return any(
            isinstance(run.results.get(c), dict)
            and run.results[c].get("locked") for c in ("c0", "c1"))

    def unfenced(policy, netplan, fault_plan):
        return build_restart_lock(policy, netplan, fault_plan,
                                  servers=cluster, fencing=False)

    def fenced(policy, netplan, fault_plan):
        return build_restart_lock(policy, netplan, fault_plan,
                                  servers=cluster, fencing=True)

    classify = make_classifier(safety, success)
    crashes = [CrashSpec("c0", at_time=t) for t in (12, 14, 16)]
    cuts = [CutSpec("c0", at=a, heal_at=70) for a in (10, 12)]
    found = search_joint_plans(
        unfenced, classify, crashes, cuts,
        bad_labels=(SPLIT_BRAIN,), max_faults=2, budget=budget)
    fenced_label = ""
    if found.witness is not None:
        fp, np = found.witness_plans()
        fenced_label = classify(fenced(ScriptedPolicy([]), np, fp))
    return found, fenced_label


# ----------------------------------------------------------------------
# The report
# ----------------------------------------------------------------------
def resilience_report(
    fast: bool = False,
    cluster: int = RESILIENCE_CLUSTER,
) -> Tuple[List[ResilienceScenarioResult], str]:
    """Run every scenario × combined-fault cell; return (results, table)."""
    budget = 1 if fast else 3
    results = []
    for name, build, safety, success, cells in resilience_scenarios(
            cluster):
        results.append(explore_resilience_scenario(
            name, build, safety, success, cells, cluster,
            max_runs_per_cell=budget,
        ))
    rows = []
    for res in results:
        for o in res.outcomes:
            rows.append([
                res.name,
                o.cell_name,
                str(o.runs),
                str(o.restarts),
                ("-" if o.mttr_failover is None
                 else "{:.1f}".format(o.mttr_failover)),
                ("-" if o.mttr_post_heal is None
                 else "{:.1f}".format(o.mttr_post_heal)),
                ("-" if o.availability is None
                 else "{:.0%}".format(o.availability)),
                o.classification,
            ])
    table = ascii_table(
        ["scenario", "faults", "runs", "restarts", "failover mttr",
         "post-heal mttr", "availability", "classification"],
        rows,
        title="Combined-fault resilience at {} nodes (majority {}; "
              "mttr in virtual ticks)".format(
                  cluster, _majority_note(cluster)),
    )
    return results, table


def expected_resilience_classifications(
    cluster: int = RESILIENCE_CLUSTER,
) -> Dict[Tuple[str, str], str]:
    """(scenario, cell) -> predicted classification, for the tests."""
    out: Dict[Tuple[str, str], str] = {}
    for name, __, __, __, cells in resilience_scenarios(cluster):
        for cell_name, __, __, expected, __ in cells:
            out[(name, cell_name)] = expected
    return out
