"""Fencing enforcement: the resource checks the token, not the holder.

Leases alone cannot protect a shared resource from a holder that is wrong
about its own validity — a process that crashed mid-hold, restarted with a
persisted "I hold the lock" record, and resumed writing (or one paused so
long its lease expired underneath it).  The classic fix (Aspnes' notes;
Kleppmann's "how to do distributed locking") moves the last line of
defence *into the resource*: every access carries the holder's fencing
token (:attr:`repro.dist.quorum.QuorumLease.token`), the resource
remembers the highest token it has ever accepted, and anything older is
rejected.  Tokens are monotone across lease sessions (majority
intersection + per-server epochs), so "older than the highest seen" is
exactly "a stale session".

:class:`FencedResource` is that resource, with enforcement switchable so
the verify layer can show both worlds: ``enforce=True`` classifies the
crash-restart-under-partition scenario *tolerant*, ``enforce=False``
yields the split-brain witness the joint fault search minimizes.

Trace vocabulary: ``fence_accept`` / ``fence_reject`` (obj = accessor,
detail = ``{"token": t, "highest": h}``), judged by
:func:`repro.verify.partition.check_fencing`.
"""

from __future__ import annotations

from typing import List, Tuple

from ..runtime.scheduler import Scheduler

__all__ = ["FencedResource"]


class FencedResource:
    """A shared resource guarded by monotonic fencing tokens.

    Models the storage a lock protects (a disk, a register file): it is
    reachable regardless of network partitions — which is precisely why
    lease validity alone is not enough and the token check must live here.

    Args:
        sched: owning scheduler (accesses are trace events).
        name: resource label used in trace events.
        enforce: when ``False`` the token is recorded but never checked —
            the unfenced world the split-brain witnesses live in.
    """

    def __init__(self, sched: Scheduler, name: str = "store",
                 enforce: bool = True) -> None:
        self.sched = sched
        self.name = name
        self.enforce = enforce
        #: Highest token ever *accepted* (0 = nothing accepted yet).
        self.highest = 0
        #: Every accepted write: (tick, accessor, token).
        self.writes: List[Tuple[int, str, int]] = []
        self.rejected = 0

    def access(self, who: str, token: int) -> bool:
        """One guarded access.  Returns ``True`` when accepted.

        Accepted iff the token is no older than the highest token already
        seen (equal is fine: the same session may write many times).  A
        rejection tells the caller its session is stale — the correct
        reaction is to fence out: stop touching the resource and
        re-acquire.
        """
        detail = {"token": token, "highest": self.highest}
        if self.enforce and token < self.highest:
            self.rejected += 1
            self.sched.log("fence_reject", who, detail)
            return False
        self.sched.log("fence_accept", who, detail)
        if token > self.highest:
            self.highest = token
        self.writes.append((self.sched.now, who, token))
        return True

    def stats(self) -> dict:
        return {
            "writes": len(self.writes),
            "rejected": self.rejected,
            "highest": self.highest,
            "enforced": self.enforce,
        }
