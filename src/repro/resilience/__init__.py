"""Combined-fault resilience: crash-restart under partitions.

The :mod:`repro.recover` layer restarts crashed processes; the
:mod:`repro.dist` layer partitions and heals the network.  Each is
survivable alone.  This package studies their *composition* — the fault
class where a crashed node restarts with durable state but without its
volatile guards, inside a partition that blocks it from re-validating —
and the mechanism that makes the composition safe:

* :mod:`~repro.resilience.durable` — the durable/volatile state split:
  what a restarted incarnation may trust (:class:`DurableStore`);
* :mod:`~repro.resilience.fencing` — fencing tokens checked *at the
  resource* (:class:`FencedResource`), the guard lease validity alone
  cannot provide;
* :mod:`~repro.resilience.supervisor` — :class:`NodeSupervisor`,
  adapting process supervision to network nodes with inbox quarantine
  on rejoin;
* :mod:`~repro.resilience.search` — joint fault-plan search over the
  crash × partition product space with ddmin-minimized mixed witnesses;
* :mod:`~repro.resilience.report` — the scenario × combined-fault table
  at 5-node clusters, with MTTR and availability.
"""

from .durable import DurableNamespace, DurableStore
from .fencing import FencedResource
from .supervisor import NodeSupervisor, QUARANTINE, REPLAY
from .search import (CrashSpec, CutSpec, JointFault, JointSearchResult,
                     describe_joint, joint_plan, minimize_joint_set,
                     search_joint_plans)
from .report import (CombinedOutcome, ResilienceScenarioResult,
                     RESILIENCE_CLUSTER, classify_run,
                     expected_resilience_classifications,
                     explore_resilience_scenario, resilience_report,
                     resilience_scenarios, search_restart_witness)

__all__ = [
    "DurableNamespace", "DurableStore",
    "FencedResource",
    "NodeSupervisor", "QUARANTINE", "REPLAY",
    "CrashSpec", "CutSpec", "JointFault", "JointSearchResult",
    "describe_joint", "joint_plan", "minimize_joint_set",
    "search_joint_plans",
    "CombinedOutcome", "ResilienceScenarioResult", "RESILIENCE_CLUSTER",
    "classify_run", "expected_resilience_classifications",
    "explore_resilience_scenario", "resilience_report",
    "resilience_scenarios", "search_restart_witness",
]
