"""Durable vs volatile state: what survives a node restart.

A crash-restart is only interesting if the restarted incarnation comes
back with *less* than it had: in-flight protocol state (pending replies,
dedup sets, the volatile lease-validity clock) dies with the process,
while whatever the node explicitly persisted — sequence stamps, grant
epochs, term state, application records — survives.  The
:class:`DurableStore` is that persistence: a per-node namespace of
key/value records living *outside* every simulated process, so a
:class:`~repro.resilience.supervisor.NodeSupervisor` restart hands the new
incarnation exactly the records the old one wrote and nothing else.

The store is deliberately dumb — synchronous puts, no corruption model —
because the failure mode under study is *amnesia about volatile facts*
(a restarted lease holder trusting a persisted "I hold the lock" record
after its validity horizon silently passed), not storage loss.  Writes are
deterministic plain-dict mutations, so runs stay replayable.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = ["DurableStore", "DurableNamespace"]


class DurableNamespace:
    """One node's durable records.  Handed to node factories by the
    :class:`~repro.resilience.supervisor.NodeSupervisor`; also accepted by
    :class:`~repro.dist.protocol.Node` (sequence stamps) and
    :class:`~repro.dist.quorum.LeaseServer` (grant/epoch state) as their
    optional ``store``."""

    __slots__ = ("node", "_data")

    def __init__(self, node: str) -> None:
        self.node = node
        self._data: Dict[str, Any] = {}

    def put(self, key: str, value: Any) -> None:
        """Persist ``value`` under ``key`` (synchronous: survives any
        crash after this call returns)."""
        self._data[key] = value

    def get(self, key: str, default: Any = None) -> Any:
        return self._data.get(key, default)

    def delete(self, key: str) -> None:
        self._data.pop(key, None)

    def snapshot(self) -> Dict[str, Any]:
        """A copy of every record (what a restarted incarnation sees)."""
        return dict(self._data)

    def clear(self) -> None:
        """Wipe the namespace — models losing the disk, for experiments
        that need a truly fresh node."""
        self._data.clear()

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<DurableNamespace {} {!r}>".format(self.node, self._data)


class DurableStore:
    """The cluster's persistent storage: one namespace per node.

    Namespaces are created on first access and live for the whole run —
    process kills and restarts never touch them.  ``begin()`` wipes
    everything, the same replay contract :class:`FaultPlan` and
    :class:`NetPlan` follow, so one store instance can be reused across
    explored runs.
    """

    def __init__(self) -> None:
        self._namespaces: Dict[str, DurableNamespace] = {}

    def namespace(self, node: str) -> DurableNamespace:
        ns = self._namespaces.get(node)
        if ns is None:
            ns = self._namespaces[node] = DurableNamespace(node)
        return ns

    def begin(self) -> None:
        """Reset per-run state so the store can be replayed."""
        self._namespaces = {}

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {name: ns.snapshot()
                for name, ns in sorted(self._namespaces.items())}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<DurableStore nodes={}>".format(
            sorted(self._namespaces))
