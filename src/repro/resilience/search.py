"""Joint fault-plan search: crash × partition witnesses, ddmin-minimized.

:mod:`repro.recover.search` searches kill sets; the partition report
sweeps hand-written :class:`NetPlan` cells.  The interesting bugs live in
the *product* space — a crash alone is survivable (the supervisor
restarts, the renewal succeeds) and a partition alone is survivable (the
volatile validity check fences the holder out), but a crash whose
restarted incarnation comes back *inside* a partition resurrects durable
state whose volatile guards are gone.  This module enumerates mixed
fault sets over two atom types:

* :class:`CrashSpec` — kill a process at a virtual-clock tick
  (``at_time`` rather than ``at_step``, so the same atom means the same
  thing whichever schedule the builder runs under);
* :class:`CutSpec` — isolate a node for a window ``[at, heal_at)``.

A candidate set compiles to a ``(FaultPlan, NetPlan)`` pair via
:func:`joint_plan` — both serializable (``to_dict``) so a found witness
can be persisted and replayed exactly.  The first defeating set is
ddmin-minimized with the same chunk-halving loop the kill-set and
decision-string minimizers use, yielding a 1-minimal combined witness:
remove any single fault and the bad outcome disappears.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, Union

from ..dist import NetPlan
from ..runtime.faults import FaultPlan
from ..runtime.policies import ScriptedPolicy
from ..runtime.trace import RunResult

__all__ = [
    "CrashSpec", "CutSpec", "JointFault", "joint_plan",
    "JointSearchResult", "search_joint_plans", "minimize_joint_set",
]

#: A dist builder under both plans: (policy, netplan, fault plan) -> run.
JointBuilder = Callable[
    [ScriptedPolicy, Optional[NetPlan], Optional[FaultPlan]], RunResult]
#: Maps a finished run to a classification label (e.g. "split-brain").
Classifier = Callable[[RunResult], str]


@dataclass(frozen=True)
class CrashSpec:
    """Kill ``process`` once virtual time reaches ``at_time`` (even if it
    is blocked — crashes do not wait for a convenient step)."""

    process: str
    at_time: int

    def describe(self) -> str:
        return "kill {} at t={}".format(self.process, self.at_time)


@dataclass(frozen=True)
class CutSpec:
    """Isolate ``node`` from every other node on ``[at, heal_at)``
    (``heal_at=None`` = the partition never heals)."""

    node: str
    at: int
    heal_at: Optional[int] = None

    def describe(self) -> str:
        healed = ("never heals" if self.heal_at is None
                  else "heals at t={}".format(self.heal_at))
        return "isolate {} at t={} ({})".format(self.node, self.at, healed)


JointFault = Union[CrashSpec, CutSpec]


def joint_plan(
    faults: Sequence[JointFault],
) -> Tuple[Optional[FaultPlan], Optional[NetPlan]]:
    """Compile a mixed fault set into its ``(FaultPlan, NetPlan)`` pair
    (``None`` for an empty side, matching the builders' defaults)."""
    fault_plan: Optional[FaultPlan] = None
    netplan: Optional[NetPlan] = None
    for f in faults:
        if isinstance(f, CrashSpec):
            if fault_plan is None:
                fault_plan = FaultPlan()
            fault_plan.kill(f.process, at_time=f.at_time)
        else:
            if netplan is None:
                netplan = NetPlan()
            netplan.isolate(f.node, at=f.at, heal_at=f.heal_at)
    return fault_plan, netplan


def describe_joint(faults: Sequence[JointFault]) -> str:
    return "; ".join(f.describe() for f in faults)


@dataclass
class JointSearchResult:
    """Outcome of :func:`search_joint_plans`."""

    tried: int = 0
    #: Every defeating set found: (fault set, classification label).
    defeating: List[Tuple[Tuple[JointFault, ...], str]] = field(
        default_factory=list)
    #: ddmin-minimized fault set of the first defeating plan (None when
    #: the scenario tolerated everything tried).
    witness: Optional[Tuple[JointFault, ...]] = None
    witness_label: Optional[str] = None
    minimize_tests: int = 0

    @property
    def witness_kills(self) -> int:
        if self.witness is None:
            return 0
        return sum(1 for f in self.witness if isinstance(f, CrashSpec))

    @property
    def witness_cuts(self) -> int:
        if self.witness is None:
            return 0
        return sum(1 for f in self.witness if isinstance(f, CutSpec))

    def witness_plans(self):
        """The witness compiled to its replayable ``(FaultPlan,
        NetPlan)`` pair."""
        if self.witness is None:
            return None, None
        return joint_plan(self.witness)

    def describe(self) -> str:
        if self.witness is None:
            return ("no combined fault plan defeated the scenario "
                    "({} tried)".format(self.tried))
        return "minimal combined witness ({}): {}".format(
            self.witness_label, describe_joint(self.witness))

    def to_dict(self) -> dict:
        fp, np = self.witness_plans()
        return {
            "tried": self.tried,
            "defeating": len(self.defeating),
            "witness": (None if self.witness is None
                        else [f.describe() for f in self.witness]),
            "witness_label": self.witness_label,
            "witness_kills": self.witness_kills,
            "witness_cuts": self.witness_cuts,
            "witness_fault_plan": None if fp is None else fp.to_dict(),
            "witness_net_plan": None if np is None else np.to_dict(),
            "minimize_tests": self.minimize_tests,
        }


def _joint_defeats(
    build: JointBuilder,
    classify: Classifier,
    faults: Sequence[JointFault],
    bad_labels: Sequence[str],
) -> Optional[str]:
    """The label a fault set earns, or ``None`` when the run ends well."""
    fault_plan, netplan = joint_plan(faults)
    label = classify(build(ScriptedPolicy([]), netplan, fault_plan))
    return label if label in bad_labels else None


def search_joint_plans(
    build: JointBuilder,
    classify: Classifier,
    crashes: Sequence[CrashSpec],
    cuts: Sequence[CutSpec],
    bad_labels: Sequence[str] = ("split-brain", "wedged"),
    max_faults: int = 2,
    budget: int = 120,
    minimize: bool = True,
) -> JointSearchResult:
    """Search 1..``max_faults``-sized mixed sets over the candidate atoms;
    ddmin-minimize the first one that defeats the scenario.

    Candidates are enumerated deterministically, singletons first (so the
    search itself proves no single fault suffices before trying pairs),
    crashes before cuts within each size.
    """
    atoms: List[JointFault] = list(crashes) + list(cuts)
    result = JointSearchResult()
    for size in range(1, max_faults + 1):
        for combo in itertools.combinations(atoms, size):
            if result.tried >= budget:
                break
            result.tried += 1
            label = _joint_defeats(build, classify, combo, bad_labels)
            if label is not None:
                result.defeating.append((combo, label))
        if result.tried >= budget:
            break
    if result.defeating and minimize:
        faults, label = result.defeating[0]
        witness, tests = minimize_joint_set(
            build, classify, faults, bad_labels)
        result.witness = witness
        result.witness_label = label
        result.minimize_tests = tests
    return result


def minimize_joint_set(
    build: JointBuilder,
    classify: Classifier,
    faults: Sequence[JointFault],
    bad_labels: Sequence[str] = ("split-brain", "wedged"),
) -> Tuple[Tuple[JointFault, ...], int]:
    """ddmin over the mixed fault set: (1-minimal set, tests run).

    1-minimal: removing any single remaining fault — crash *or* cut —
    makes the bad outcome disappear, so every fault in the witness is
    load-bearing across both fault domains.
    """
    tests = 0

    def still_bad(subset: Sequence[JointFault]) -> bool:
        nonlocal tests
        if not subset:
            return False
        tests += 1
        return _joint_defeats(build, classify, subset, bad_labels) is not None

    current = list(faults)
    chunks = 2
    while len(current) >= 2:
        size = max(1, len(current) // chunks)
        reduced = False
        for start in range(0, len(current), size):
            candidate = current[:start] + current[start + size:]
            if still_bad(candidate):
                current = candidate
                chunks = max(chunks - 1, 2)
                reduced = True
                break
        if not reduced:
            if size == 1:
                break
            chunks = min(chunks * 2, len(current))
    return tuple(current), tests
