"""NodeSupervisor: crash-restart for distributed nodes.

:class:`~repro.recover.supervisor.Supervisor` restarts dead *processes*;
this adapter restarts dead *nodes* — processes bound to a
:class:`~repro.dist.network.Network` address with durable state in a
:class:`~repro.resilience.durable.DurableStore`.  Three things distinguish
a node restart from a plain process restart:

* **State split** — the new incarnation receives the node's
  :class:`~repro.resilience.durable.DurableNamespace` (what the old
  incarnation explicitly persisted: sequence stamps, grant epochs, term
  and application records) and *nothing else*: dedup sets, pending
  replies, and every in-scope local are gone.  The factory is called with
  ``(incarnation, namespace)`` so the body can tell a cold boot from a
  rejoin.
* **Inbox rejoin semantics** — messages that arrived while the node was
  down (and half-consumed conversation from before the crash) are sitting
  in its network inbox.  Policy ``"quarantine"`` (default) drains them on
  rejoin (logged ``inbox_quarantine`` with the count) — the conservative
  discipline: a fresh incarnation must not consume replies addressed to
  its predecessor's volatile requests.  Policy ``"replay"`` leaves the
  backlog for the new incarnation, modelling mailbox hardware that
  survives the crash.
* **Name reuse** — the restarted process reuses the node's process name,
  so the network's sender→node mapping, plan ``src``/``dst`` matching,
  and partition sides keep applying across incarnations (and fault-plan
  kills, which fire once, never re-kill the replacement).

Everything else — backoff, max-restart intensity, escalation, death
detection via crash cleanups — is the recovery runtime's, unchanged and
deterministic.  Trace vocabulary added here: ``node_rejoin`` (obj = node,
detail = ``{"incarnation": n}``) and ``inbox_quarantine`` (detail =
``{"dropped": n}``).
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Optional

from ..dist.network import Network
from ..recover.supervisor import RestartPolicy, Supervisor, _ChildSpec
from ..runtime.process import SimProcess
from ..runtime.scheduler import Scheduler
from .durable import DurableNamespace, DurableStore

__all__ = ["NodeSupervisor", "QUARANTINE", "REPLAY"]

QUARANTINE = "quarantine"
REPLAY = "replay"

#: A node body factory: called once per incarnation with the incarnation
#: number (1 = first boot) and the node's durable namespace.
NodeFactory = Callable[[int, DurableNamespace], Generator]


class NodeSupervisor:
    """Restart killed network nodes with durable state and rejoin rules.

    Usage::

        store = DurableStore()
        nsup = NodeSupervisor(sched, net, store,
                              RestartPolicy(backoff=FixedBackoff(2)))
        nsup.node("c0", client_body)    # client_body(incarnation, ns)
        nsup.start()

    The supervisor process itself is an ordinary supervised loop (named
    ``name``, default ``"nodesup"``) — fault plans may kill *it* too,
    which the joint fault search exploits.
    """

    def __init__(
        self,
        sched: Scheduler,
        net: Network,
        store: Optional[DurableStore] = None,
        policy: Optional[RestartPolicy] = None,
        name: str = "nodesup",
        rejoin: str = QUARANTINE,
    ) -> None:
        if rejoin not in (QUARANTINE, REPLAY):
            raise ValueError("unknown rejoin policy {!r}".format(rejoin))
        self.sched = sched
        self.net = net
        self.store = store if store is not None else DurableStore()
        self.rejoin = rejoin
        self.name = name
        self._sup = Supervisor(sched, policy, name=name)
        self._specs: Dict[str, _ChildSpec] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def node(self, node_id: str, factory: NodeFactory) -> None:
        """Declare a supervised node: ``factory(incarnation, ns)`` must
        return a fresh generator each call.  The process name is the node
        name, so the network keeps routing across incarnations."""
        ns = self.store.namespace(node_id)

        def wrapped() -> Generator:
            spec = self._specs[node_id]
            incarnation = spec.incarnations
            if incarnation > 1:
                self._on_rejoin(node_id, incarnation)
            result = yield from factory(incarnation, ns)
            return result

        self._specs[node_id] = self._sup.child(node_id, wrapped)

    def start(self) -> SimProcess:
        """Spawn every node plus the supervisor process."""
        return self._sup.start()

    # ------------------------------------------------------------------
    # Rejoin plumbing
    # ------------------------------------------------------------------
    def _on_rejoin(self, node_id: str, incarnation: int) -> None:
        self.sched.log("node_rejoin", node_id,
                       {"incarnation": incarnation})
        if self.rejoin == QUARANTINE:
            dropped = self.net.node(node_id).drain()
            self.sched.log("inbox_quarantine", node_id,
                           {"dropped": dropped})

    # ------------------------------------------------------------------
    def incarnations(self, node_id: str) -> int:
        return self._specs[node_id].incarnations

    def report(self) -> Dict[str, object]:
        """The underlying supervisor's restart summary."""
        return self._sup.report()
