"""Ease-of-use analytics (S11): structural diffing, constraint independence,
and solution-size metrics — the computable form of §4.2."""

from .diffing import (
    ComponentDiff,
    ModificationReport,
    diff_components,
    modification_report,
)
from .independence import (
    IndependenceSummary,
    ProbeResult,
    detect_info_conflicts,
    render_independence,
    run_probes,
    summarize_independence,
)
from .metrics import (
    SolutionSize,
    measure,
    measure_all,
    per_mechanism_totals,
    render_sizes,
    render_totals,
)

__all__ = [
    "ComponentDiff",
    "IndependenceSummary",
    "ModificationReport",
    "ProbeResult",
    "SolutionSize",
    "detect_info_conflicts",
    "diff_components",
    "measure",
    "measure_all",
    "modification_report",
    "per_mechanism_totals",
    "render_independence",
    "render_sizes",
    "render_totals",
    "run_probes",
    "summarize_independence",
]
