"""Constraint independence — the §4.2 ease-of-use criterion, computed.

Given the solution registry and the catalog's modification probes
(readers_priority → writers_priority, readers_priority → rw_fcfs), this
module produces:

* a :class:`ProbeResult` per (mechanism, probe): the modification report
  plus the independence verdict for the shared constraints;
* the per-mechanism summary the paper states in §5 (path expressions:
  violated; monitors: holds except the explicit-signal ordering and the
  T1×T2 queue conflict; serializers: holds);
* detection of the **conflicting-pair** case: realizations whose constructs
  include ``two_stage_queue`` mark the spot where two information types
  interfere and the standard §5.2 fix was needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core import (
    MODIFICATION_PROBES,
    PROBLEM_CATALOG,
    SolutionDescription,
    ascii_table,
)
from .diffing import ModificationReport, modification_report


@dataclass
class ProbeResult:
    """One modification probe under one mechanism."""

    mechanism: str
    probe: Tuple[str, str]
    report: Optional[ModificationReport]  # None when a side has no solution

    @property
    def independent(self) -> Optional[bool]:
        """Did the shared constraints survive the modification?  ``None``
        when the probe could not be run (missing solution)."""
        if self.report is None:
            return None
        return self.report.shared_constraints_stable


def _index_descriptions(
    descriptions: Iterable[SolutionDescription],
) -> Dict[Tuple[str, str], SolutionDescription]:
    return {(d.problem, d.mechanism): d for d in descriptions}


def run_probes(
    descriptions: Iterable[SolutionDescription],
    probes: Sequence[Tuple[str, str]] = MODIFICATION_PROBES,
    catalog: Mapping = PROBLEM_CATALOG,
) -> List[ProbeResult]:
    """Run every probe for every mechanism that solves both endpoints."""
    index = _index_descriptions(descriptions)
    mechanisms = sorted({d.mechanism for d in index.values()})
    results: List[ProbeResult] = []
    for mechanism in mechanisms:
        for source_problem, target_problem in probes:
            source = index.get((source_problem, mechanism))
            target = index.get((target_problem, mechanism))
            if source is None or target is None:
                results.append(
                    ProbeResult(mechanism, (source_problem, target_problem), None)
                )
                continue
            shared = catalog[source_problem].shared_constraints(
                catalog[target_problem]
            )
            results.append(
                ProbeResult(
                    mechanism,
                    (source_problem, target_problem),
                    modification_report(source, target, shared),
                )
            )
    return results


def detect_info_conflicts(
    descriptions: Iterable[SolutionDescription],
) -> Dict[str, List[str]]:
    """Find where a two-stage-queue (or similar) resolution marks an
    information-type conflict (§5.2's monitor T1×T2 case).

    Returns mechanism → list of "problem/constraint" strings whose
    realization needed the conflict-resolving idiom.
    """
    conflicts: Dict[str, List[str]] = {}
    for description in descriptions:
        for realization in description.realizations:
            if "two_stage_queue" in realization.constructs:
                conflicts.setdefault(description.mechanism, []).append(
                    "{}/{}".format(description.problem, realization.constraint_id)
                )
    return conflicts


@dataclass
class IndependenceSummary:
    """Per-mechanism §4.2 verdict."""

    mechanism: str
    probes: List[ProbeResult] = field(default_factory=list)
    conflicts: List[str] = field(default_factory=list)

    @property
    def verdict(self) -> str:
        judged = [p.independent for p in self.probes if p.independent is not None]
        if not judged:
            return "not probed"
        if all(judged):
            return "independent" + (
                " (with resolved info-type conflict)" if self.conflicts else ""
            )
        if any(judged):
            return "partially violated"
        return "VIOLATED"

    @property
    def mean_change_fraction(self) -> Optional[float]:
        fractions = [
            p.report.change_fraction for p in self.probes if p.report is not None
        ]
        if not fractions:
            return None
        return sum(fractions) / len(fractions)


def summarize_independence(
    descriptions: Iterable[SolutionDescription],
    probes: Sequence[Tuple[str, str]] = MODIFICATION_PROBES,
) -> Dict[str, IndependenceSummary]:
    """The full §4.2 analysis over a description set."""
    materialized = list(descriptions)
    results = run_probes(materialized, probes)
    conflicts = detect_info_conflicts(materialized)
    summaries: Dict[str, IndependenceSummary] = {}
    for result in results:
        summary = summaries.setdefault(
            result.mechanism,
            IndependenceSummary(
                result.mechanism, conflicts=conflicts.get(result.mechanism, [])
            ),
        )
        summary.probes.append(result)
    return summaries


def render_independence(
    summaries: Mapping[str, IndependenceSummary],
    title: str = "Constraint independence (section 4.2)",
) -> str:
    """ASCII table: mechanism × probe → change fraction and stability."""
    headers = ["mechanism", "probe", "touched", "shared constraint", "verdict"]
    rows = []
    for mechanism in sorted(summaries):
        summary = summaries[mechanism]
        for probe in summary.probes:
            if probe.report is None:
                rows.append([
                    mechanism,
                    "{} -> {}".format(*probe.probe),
                    "-", "-", "no solution pair",
                ])
                continue
            report = probe.report
            shared_status = ", ".join(
                "{}:{}".format(
                    cid,
                    "stable" if cid in report.stable_shared else "REWRITTEN",
                )
                for cid in report.shared_constraints
            ) or "-"
            rows.append([
                mechanism,
                "{} -> {}".format(*probe.probe),
                "{}/{} ({:.0%})".format(
                    report.diff.touched, report.diff.total,
                    report.change_fraction,
                ),
                shared_status,
                "independent" if probe.independent else "VIOLATED",
            ])
        if summary.conflicts:
            rows.append([
                mechanism, "info-type conflict", "-",
                "; ".join(summary.conflicts), "resolved (two-stage queue)",
            ])
    return ascii_table(headers, rows, title)
