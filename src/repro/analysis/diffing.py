"""Structural diffing of solutions.

The §4.2 test: "examine solutions to two similar synchronization problems.
If the problems share some constraints, but differ in others, then the
common constraints should be similarly implemented in both solutions."

Components are compared by name, with kind+text equality deciding whether a
same-named component *changed*.  The resulting
:class:`ModificationReport` quantifies the cost of turning one solution into
the other — the machine-checkable stand-in for the paper's "how difficult is
the modification" judgement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from ..core import Component, SolutionDescription


@dataclass(frozen=True)
class ComponentDiff:
    """Set-level difference between two component inventories."""

    added: Tuple[str, ...]      # present only in the target
    removed: Tuple[str, ...]    # present only in the source
    changed: Tuple[str, ...]    # same name, different kind or text
    unchanged: Tuple[str, ...]  # identical in both

    @property
    def touched(self) -> int:
        """Components that must be written or rewritten for the change."""
        return len(self.added) + len(self.removed) + len(self.changed)

    @property
    def total(self) -> int:
        """Distinct component names across both solutions."""
        return self.touched + len(self.unchanged)

    @property
    def change_fraction(self) -> float:
        """0.0 = identical solutions, 1.0 = nothing survives the change."""
        if self.total == 0:
            return 0.0
        return self.touched / self.total


def diff_components(
    source: Iterable[Component], target: Iterable[Component]
) -> ComponentDiff:
    """Diff two component inventories by name, then by (kind, text)."""
    by_name_source: Dict[str, Component] = {c.name: c for c in source}
    by_name_target: Dict[str, Component] = {c.name: c for c in target}
    added = sorted(set(by_name_target) - set(by_name_source))
    removed = sorted(set(by_name_source) - set(by_name_target))
    changed: List[str] = []
    unchanged: List[str] = []
    for name in sorted(set(by_name_source) & set(by_name_target)):
        a, b = by_name_source[name], by_name_target[name]
        if a.kind == b.kind and a.text == b.text:
            unchanged.append(name)
        else:
            changed.append(name)
    return ComponentDiff(
        tuple(added), tuple(removed), tuple(changed), tuple(unchanged)
    )


@dataclass
class ModificationReport:
    """The cost of modifying one solution into another (same mechanism,
    different problem — the §4.2 probe)."""

    mechanism: str
    source_problem: str
    target_problem: str
    diff: ComponentDiff
    shared_constraints: Tuple[str, ...] = ()
    stable_shared: Tuple[str, ...] = ()
    unstable_shared: Tuple[str, ...] = ()

    @property
    def change_fraction(self) -> float:
        """Fraction of the combined component inventory touched."""
        return self.diff.change_fraction

    @property
    def shared_constraints_stable(self) -> bool:
        """True when every shared constraint kept its implementation —
        the constraint-independence criterion itself."""
        return not self.unstable_shared

    def render(self) -> str:
        """One-paragraph human-readable summary."""
        lines = [
            "{}: {} -> {}".format(
                self.mechanism, self.source_problem, self.target_problem
            ),
            "  components touched: {}/{} ({:.0%})".format(
                self.diff.touched, self.diff.total, self.change_fraction
            ),
        ]
        if self.diff.changed:
            lines.append("  changed: {}".format(", ".join(self.diff.changed)))
        if self.diff.added:
            lines.append("  added:   {}".format(", ".join(self.diff.added)))
        if self.diff.removed:
            lines.append("  removed: {}".format(", ".join(self.diff.removed)))
        for cid in self.shared_constraints:
            status = "STABLE" if cid in self.stable_shared else "REWRITTEN"
            lines.append("  shared constraint {}: {}".format(cid, status))
        return "\n".join(lines)


def modification_report(
    source: SolutionDescription,
    target: SolutionDescription,
    shared_constraints: Iterable[str] = (),
) -> ModificationReport:
    """Diff two solutions and judge stability of their shared constraints.

    A shared constraint is *stable* when the set of components realizing it
    is identical (same names, kinds, and texts) in both solutions.
    """
    if source.mechanism != target.mechanism:
        raise ValueError(
            "modification probes compare solutions under ONE mechanism; got "
            "{} vs {}".format(source.mechanism, target.mechanism)
        )
    diff = diff_components(source.components, target.components)
    stable: List[str] = []
    unstable: List[str] = []
    shared = tuple(shared_constraints)
    for cid in shared:
        try:
            comps_a = {
                (c.name, c.kind, c.text) for c in source.components_for(cid)
            }
            comps_b = {
                (c.name, c.kind, c.text) for c in target.components_for(cid)
            }
        except KeyError:
            unstable.append(cid)
            continue
        if comps_a == comps_b:
            stable.append(cid)
        else:
            unstable.append(cid)
    return ModificationReport(
        mechanism=source.mechanism,
        source_problem=source.problem,
        target_problem=target.problem,
        diff=diff,
        shared_constraints=shared,
        stable_shared=tuple(stable),
        unstable_shared=tuple(unstable),
    )
