"""Solution-size and complexity metrics.

Crude but useful companions to the structural analysis: how *big* is each
solution (components, pseudocode volume, gates), aggregated per mechanism.
The paper's observation that the CHP writers-priority semaphore solution
balloons to five semaphores and two counts, or that serializer solutions
stay constraint-for-constraint small, becomes a row in a table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping

from ..core import SolutionDescription, ascii_table


@dataclass(frozen=True)
class SolutionSize:
    """Size metrics for one solution."""

    problem: str
    mechanism: str
    components: int
    gates: int
    text_volume: int  # characters of pseudocode / path text

    @property
    def key(self) -> str:
        return "{}/{}".format(self.problem, self.mechanism)


def measure(description: SolutionDescription) -> SolutionSize:
    """Compute size metrics for one solution description."""
    return SolutionSize(
        problem=description.problem,
        mechanism=description.mechanism,
        components=len(description.components),
        gates=sum(
            1 for c in description.components if c.kind == "sync_procedure"
        ),
        text_volume=sum(len(c.text) for c in description.components),
    )


def measure_all(
    descriptions: Iterable[SolutionDescription],
) -> List[SolutionSize]:
    """Metrics for every description, sorted by problem then mechanism."""
    return sorted(
        (measure(d) for d in descriptions),
        key=lambda s: (s.problem, s.mechanism),
    )


def per_mechanism_totals(
    sizes: Iterable[SolutionSize],
) -> Dict[str, Dict[str, int]]:
    """Aggregate components/gates/text per mechanism."""
    totals: Dict[str, Dict[str, int]] = {}
    for size in sizes:
        row = totals.setdefault(
            size.mechanism,
            {"solutions": 0, "components": 0, "gates": 0, "text_volume": 0},
        )
        row["solutions"] += 1
        row["components"] += size.components
        row["gates"] += size.gates
        row["text_volume"] += size.text_volume
    return totals


def render_sizes(
    sizes: Iterable[SolutionSize],
    title: str = "Solution size metrics",
) -> str:
    """ASCII table of per-solution sizes."""
    headers = ["solution", "components", "gates", "text volume"]
    rows = [
        [s.key, str(s.components), str(s.gates), str(s.text_volume)]
        for s in sizes
    ]
    return ascii_table(headers, rows, title)


def render_totals(
    totals: Mapping[str, Mapping[str, int]],
    title: str = "Per-mechanism size totals",
) -> str:
    """ASCII table of per-mechanism aggregates."""
    headers = ["mechanism", "solutions", "components", "gates", "text volume"]
    rows = [
        [
            mechanism,
            str(row["solutions"]),
            str(row["components"]),
            str(row["gates"]),
            str(row["text_volume"]),
        ]
        for mechanism, row in sorted(totals.items())
    ]
    return ascii_table(headers, rows, title)
