"""Recovery observability: MTTR derived post-hoc from traces.

The supervisor (:mod:`repro.recover`) logs ``restart`` events and the
scheduler logs every death (``killed``/``failed``) and completion
(``exit``), all stamped with the virtual clock.  That is enough to
reconstruct, per corpse, the full recovery arc without instrumenting the
recovery runtime itself:

    death  --(ticks_to_restart)-->  restart  --...-->  exit
      `------------------(ticks_to_recovery)------------'

:func:`recovery_spans` folds a trace into one :class:`RecoverySpan` per
death; :func:`compute_recovery_metrics` aggregates them into MTTR ("mean
ticks to recovery" — virtual clock, hence deterministic for a given
(policy, fault plan) pair), restart latency, and counts of the partial
outcomes (giveups, escalations, degradations).  These are the numbers
``bench_recovery`` fingerprints and ``python -m repro recover`` tabulates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..core import ascii_table
from ..runtime.trace import RunResult, Trace

__all__ = [
    "RecoverySpan",
    "RecoveryMetrics",
    "recovery_spans",
    "compute_recovery_metrics",
]


@dataclass(frozen=True)
class RecoverySpan:
    """One death and (if any) the restart/completion that healed it."""

    process: str
    death_kind: str  # "killed" | "failed"
    death_seq: int
    death_tick: int
    restart_seq: Optional[int] = None
    restart_tick: Optional[int] = None
    exit_seq: Optional[int] = None
    exit_tick: Optional[int] = None

    @property
    def restarted(self) -> bool:
        return self.restart_seq is not None

    @property
    def recovered(self) -> bool:
        """The replacement incarnation ran to completion."""
        return self.exit_seq is not None

    @property
    def ticks_to_restart(self) -> Optional[int]:
        if self.restart_tick is None:
            return None
        return self.restart_tick - self.death_tick

    @property
    def ticks_to_recovery(self) -> Optional[int]:
        """Death to the replacement's ``exit`` — one MTTR sample."""
        if self.exit_tick is None:
            return None
        return self.exit_tick - self.death_tick

    def describe(self) -> str:
        if self.recovered:
            return "{} {} at t={} recovered in {} tick(s)".format(
                self.process, self.death_kind, self.death_tick,
                self.ticks_to_recovery,
            )
        if self.restarted:
            return "{} {} at t={} restarted, never completed".format(
                self.process, self.death_kind, self.death_tick,
            )
        return "{} {} at t={} never restarted".format(
            self.process, self.death_kind, self.death_tick,
        )


def _trace_of(run: Union[RunResult, Trace]) -> Trace:
    return run.trace if isinstance(run, RunResult) else run


def recovery_spans(run: Union[RunResult, Trace]) -> List[RecoverySpan]:
    """Fold a trace into one span per death.

    Events are matched by name in sequence order: each ``killed``/``failed``
    opens a span, the next ``restart`` of that name closes its restart leg,
    and the next ``exit`` after the restart closes the recovery leg.  A
    second death of the same name (a killed replacement) opens a fresh
    span, so restart storms yield one sample each.
    """
    trace = _trace_of(run)
    open_by_name: Dict[str, dict] = {}
    spans: List[RecoverySpan] = []

    def _close(name: str) -> None:
        pending = open_by_name.pop(name, None)
        if pending is not None:
            spans.append(RecoverySpan(**pending))

    for ev in trace:
        if ev.kind in ("killed", "failed"):
            _close(ev.obj)
            open_by_name[ev.obj] = dict(
                process=ev.obj, death_kind=ev.kind,
                death_seq=ev.seq, death_tick=ev.time,
            )
        elif ev.kind == "restart":
            pending = open_by_name.get(ev.obj)
            if pending is not None and pending.get("restart_seq") is None:
                pending["restart_seq"] = ev.seq
                pending["restart_tick"] = ev.time
        elif ev.kind == "exit":
            pending = open_by_name.get(ev.obj)
            if pending is not None and pending.get("restart_seq") is not None:
                pending["exit_seq"] = ev.seq
                pending["exit_tick"] = ev.time
                _close(ev.obj)
    for name in sorted(open_by_name):
        _close(name)
    spans.sort(key=lambda s: s.death_seq)
    return spans


@dataclass
class RecoveryMetrics:
    """Aggregate recovery behaviour of one run."""

    spans: List[RecoverySpan] = field(default_factory=list)
    giveups: int = 0
    escalations: int = 0
    degradations: int = 0
    reclaims: int = 0

    @property
    def deaths(self) -> int:
        return len(self.spans)

    @property
    def restarts(self) -> int:
        return sum(1 for s in self.spans if s.restarted)

    @property
    def recoveries(self) -> int:
        return sum(1 for s in self.spans if s.recovered)

    @property
    def recovery_rate(self) -> float:
        """Fraction of deaths whose replacement ran to completion."""
        if not self.spans:
            return 1.0
        return self.recoveries / float(self.deaths)

    @property
    def mttr(self) -> Optional[float]:
        """Mean ticks-to-recovery over recovered spans (virtual clock)."""
        samples = [
            s.ticks_to_recovery for s in self.spans if s.recovered
        ]
        if not samples:
            return None
        return sum(samples) / float(len(samples))

    @property
    def max_ttr(self) -> Optional[int]:
        samples = [
            s.ticks_to_recovery for s in self.spans if s.recovered
        ]
        return max(samples) if samples else None

    @property
    def mean_ticks_to_restart(self) -> Optional[float]:
        samples = [
            s.ticks_to_restart for s in self.spans if s.restarted
        ]
        if not samples:
            return None
        return sum(samples) / float(len(samples))

    def render(self) -> str:
        rows = [[
            str(self.deaths), str(self.restarts), str(self.recoveries),
            "{:.2f}".format(self.recovery_rate),
            "-" if self.mttr is None else "{:.2f}".format(self.mttr),
            "-" if self.max_ttr is None else str(self.max_ttr),
            str(self.reclaims), str(self.giveups), str(self.escalations),
            str(self.degradations),
        ]]
        return ascii_table(
            ["deaths", "restarts", "recoveries", "rate", "mttr",
             "max ttr", "reclaims", "giveups", "escalations", "degradations"],
            rows,
            title="Recovery metrics (ticks = virtual clock)",
        )


def compute_recovery_metrics(run: Union[RunResult, Trace]) -> RecoveryMetrics:
    """MTTR and partial-outcome counts for one run's trace."""
    trace = _trace_of(run)
    return RecoveryMetrics(
        spans=recovery_spans(trace),
        giveups=len(trace.filter(kind="restart_giveup")),
        escalations=len(trace.filter(kind="escalate")),
        degradations=len(trace.filter(kind="degrade")),
        reclaims=len(trace.filter(kind="reclaim")),
    )
