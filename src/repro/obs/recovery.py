"""Recovery observability: MTTR derived post-hoc from traces.

The supervisor (:mod:`repro.recover`) logs ``restart`` events and the
scheduler logs every death (``killed``/``failed``) and completion
(``exit``), all stamped with the virtual clock.  That is enough to
reconstruct, per corpse, the full recovery arc without instrumenting the
recovery runtime itself:

    death  --(ticks_to_restart)-->  restart  --...-->  exit
      `------------------(ticks_to_recovery)------------'

:func:`recovery_spans` folds a trace into one :class:`RecoverySpan` per
death; :func:`compute_recovery_metrics` aggregates them into MTTR ("mean
ticks to recovery" — virtual clock, hence deterministic for a given
(policy, fault plan) pair), restart latency, and counts of the partial
outcomes (giveups, escalations, degradations).  These are the numbers
``bench_recovery`` fingerprints and ``python -m repro recover`` tabulates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..core import ascii_table
from ..runtime.trace import RunResult, Trace

__all__ = [
    "RecoverySpan",
    "RecoveryMetrics",
    "recovery_spans",
    "compute_recovery_metrics",
    "PartitionRecoverySpan",
    "PartitionRecoveryMetrics",
    "partition_recovery_spans",
    "compute_partition_mttr",
    "Availability",
    "compute_availability",
]


@dataclass(frozen=True)
class RecoverySpan:
    """One death and (if any) the restart/completion that healed it."""

    process: str
    death_kind: str  # "killed" | "failed"
    death_seq: int
    death_tick: int
    restart_seq: Optional[int] = None
    restart_tick: Optional[int] = None
    exit_seq: Optional[int] = None
    exit_tick: Optional[int] = None

    @property
    def restarted(self) -> bool:
        return self.restart_seq is not None

    @property
    def recovered(self) -> bool:
        """The replacement incarnation ran to completion."""
        return self.exit_seq is not None

    @property
    def ticks_to_restart(self) -> Optional[int]:
        if self.restart_tick is None:
            return None
        return self.restart_tick - self.death_tick

    @property
    def ticks_to_recovery(self) -> Optional[int]:
        """Death to the replacement's ``exit`` — one MTTR sample."""
        if self.exit_tick is None:
            return None
        return self.exit_tick - self.death_tick

    def describe(self) -> str:
        if self.recovered:
            return "{} {} at t={} recovered in {} tick(s)".format(
                self.process, self.death_kind, self.death_tick,
                self.ticks_to_recovery,
            )
        if self.restarted:
            return "{} {} at t={} restarted, never completed".format(
                self.process, self.death_kind, self.death_tick,
            )
        return "{} {} at t={} never restarted".format(
            self.process, self.death_kind, self.death_tick,
        )


def _trace_of(run: Union[RunResult, Trace]) -> Trace:
    return run.trace if isinstance(run, RunResult) else run


def recovery_spans(run: Union[RunResult, Trace]) -> List[RecoverySpan]:
    """Fold a trace into one span per death.

    Events are matched by name in sequence order: each ``killed``/``failed``
    opens a span, the next ``restart`` of that name closes its restart leg,
    and the next ``exit`` after the restart closes the recovery leg.  A
    second death of the same name (a killed replacement) opens a fresh
    span, so restart storms yield one sample each.
    """
    trace = _trace_of(run)
    open_by_name: Dict[str, dict] = {}
    spans: List[RecoverySpan] = []

    def _close(name: str) -> None:
        pending = open_by_name.pop(name, None)
        if pending is not None:
            spans.append(RecoverySpan(**pending))

    for ev in trace:
        if ev.kind in ("killed", "failed"):
            _close(ev.obj)
            open_by_name[ev.obj] = dict(
                process=ev.obj, death_kind=ev.kind,
                death_seq=ev.seq, death_tick=ev.time,
            )
        elif ev.kind == "restart":
            pending = open_by_name.get(ev.obj)
            if pending is not None and pending.get("restart_seq") is None:
                pending["restart_seq"] = ev.seq
                pending["restart_tick"] = ev.time
        elif ev.kind == "exit":
            pending = open_by_name.get(ev.obj)
            if pending is not None and pending.get("restart_seq") is not None:
                pending["exit_seq"] = ev.seq
                pending["exit_tick"] = ev.time
                _close(ev.obj)
    for name in sorted(open_by_name):
        _close(name)
    spans.sort(key=lambda s: s.death_seq)
    return spans


@dataclass
class RecoveryMetrics:
    """Aggregate recovery behaviour of one run."""

    spans: List[RecoverySpan] = field(default_factory=list)
    giveups: int = 0
    escalations: int = 0
    degradations: int = 0
    reclaims: int = 0

    @property
    def deaths(self) -> int:
        return len(self.spans)

    @property
    def restarts(self) -> int:
        return sum(1 for s in self.spans if s.restarted)

    @property
    def recoveries(self) -> int:
        return sum(1 for s in self.spans if s.recovered)

    @property
    def recovery_rate(self) -> float:
        """Fraction of deaths whose replacement ran to completion."""
        if not self.spans:
            return 1.0
        return self.recoveries / float(self.deaths)

    @property
    def mttr(self) -> Optional[float]:
        """Mean ticks-to-recovery over recovered spans (virtual clock)."""
        samples = [
            s.ticks_to_recovery for s in self.spans if s.recovered
        ]
        if not samples:
            return None
        return sum(samples) / float(len(samples))

    @property
    def max_ttr(self) -> Optional[int]:
        samples = [
            s.ticks_to_recovery for s in self.spans if s.recovered
        ]
        return max(samples) if samples else None

    @property
    def mean_ticks_to_restart(self) -> Optional[float]:
        samples = [
            s.ticks_to_restart for s in self.spans if s.restarted
        ]
        if not samples:
            return None
        return sum(samples) / float(len(samples))

    def render(self) -> str:
        rows = [[
            str(self.deaths), str(self.restarts), str(self.recoveries),
            "{:.2f}".format(self.recovery_rate),
            "-" if self.mttr is None else "{:.2f}".format(self.mttr),
            "-" if self.max_ttr is None else str(self.max_ttr),
            str(self.reclaims), str(self.giveups), str(self.escalations),
            str(self.degradations),
        ]]
        return ascii_table(
            ["deaths", "restarts", "recoveries", "rate", "mttr",
             "max ttr", "reclaims", "giveups", "escalations", "degradations"],
            rows,
            title="Recovery metrics (ticks = virtual clock)",
        )


def compute_recovery_metrics(run: Union[RunResult, Trace]) -> RecoveryMetrics:
    """MTTR and partial-outcome counts for one run's trace."""
    trace = _trace_of(run)
    return RecoveryMetrics(
        spans=recovery_spans(trace),
        giveups=len(trace.filter(kind="restart_giveup")),
        escalations=len(trace.filter(kind="escalate")),
        degradations=len(trace.filter(kind="degrade")),
        reclaims=len(trace.filter(kind="reclaim")),
    )


# ----------------------------------------------------------------------
# Partition recovery (the dist layer's MTTR)
# ----------------------------------------------------------------------

#: Event kinds that mean "service resumed / reconverged": a new leader took
#: over, the lock/lease found a (possibly new) holder, or a stale leader
#: yielded to the higher term it finally heard (the post-heal signature when
#: the majority side's leader simply persists).
PARTITION_RECOVERY_KINDS = ("leader_elected", "lease_acquired",
                            "leader_stepdown")


@dataclass(frozen=True)
class PartitionRecoverySpan:
    """One scripted partition and the service-resumption events around it.

    Two distinct recovery legs, both on the virtual clock:

    * **failover** — partition start to the first resumption event after
      it (the majority side electing/acquiring *during* the outage);
    * **post-heal** — heal to the first resumption event after it (the
      whole cluster reconverging).
    """

    partition: str               # PartitionRule.describe()
    start_tick: int
    heal_tick: Optional[int] = None
    failover_kind: Optional[str] = None
    failover_by: Optional[str] = None
    failover_tick: Optional[int] = None
    post_heal_kind: Optional[str] = None
    post_heal_by: Optional[str] = None
    post_heal_tick: Optional[int] = None

    @property
    def healed(self) -> bool:
        return self.heal_tick is not None

    @property
    def ticks_to_failover(self) -> Optional[int]:
        if self.failover_tick is None:
            return None
        return self.failover_tick - self.start_tick

    @property
    def ticks_to_post_heal(self) -> Optional[int]:
        if self.heal_tick is None or self.post_heal_tick is None:
            return None
        return self.post_heal_tick - self.heal_tick

    def describe(self) -> str:
        bits = [self.partition]
        if self.failover_tick is not None:
            bits.append("failover in {} tick(s) ({} by {})".format(
                self.ticks_to_failover, self.failover_kind,
                self.failover_by))
        else:
            bits.append("no failover")
        if self.healed:
            if self.post_heal_tick is not None:
                bits.append("post-heal recovery in {} tick(s)".format(
                    self.ticks_to_post_heal))
            else:
                bits.append("no post-heal recovery")
        return "; ".join(bits)


def partition_recovery_spans(
    run: Union[RunResult, Trace],
    recovery_kinds: tuple = PARTITION_RECOVERY_KINDS,
) -> List[PartitionRecoverySpan]:
    """One span per ``net_partition`` event, matched to its ``net_heal``
    (same rule description) and to the first ``recovery_kinds`` event after
    each leg's start."""
    trace = _trace_of(run)
    spans: List[PartitionRecoverySpan] = []
    heals = list(trace.filter(kind="net_heal"))
    for start in trace.filter(kind="net_partition"):
        heal = next(
            (h for h in heals
             if h.detail == start.detail and h.seq > start.seq), None)
        failover = next(
            (ev for ev in trace
             if ev.kind in recovery_kinds and ev.seq > start.seq), None)
        post_heal = None
        if heal is not None:
            post_heal = next(
                (ev for ev in trace
                 if ev.kind in recovery_kinds and ev.seq > heal.seq), None)
        spans.append(PartitionRecoverySpan(
            partition=str(start.detail),
            start_tick=start.time,
            heal_tick=None if heal is None else heal.time,
            failover_kind=None if failover is None else failover.kind,
            failover_by=None if failover is None else failover.obj,
            failover_tick=None if failover is None else failover.time,
            post_heal_kind=None if post_heal is None else post_heal.kind,
            post_heal_by=None if post_heal is None else post_heal.obj,
            post_heal_tick=None if post_heal is None else post_heal.time,
        ))
    return spans


@dataclass
class PartitionRecoveryMetrics:
    """Aggregate partition-recovery behaviour of one run."""

    spans: List[PartitionRecoverySpan] = field(default_factory=list)

    @property
    def partitions(self) -> int:
        return len(self.spans)

    @property
    def mttr_failover(self) -> Optional[float]:
        samples = [s.ticks_to_failover for s in self.spans
                   if s.ticks_to_failover is not None]
        if not samples:
            return None
        return sum(samples) / float(len(samples))

    @property
    def mttr_post_heal(self) -> Optional[float]:
        samples = [s.ticks_to_post_heal for s in self.spans
                   if s.ticks_to_post_heal is not None]
        if not samples:
            return None
        return sum(samples) / float(len(samples))

    def render(self) -> str:
        rows = [[
            s.partition,
            str(s.start_tick),
            "-" if s.heal_tick is None else str(s.heal_tick),
            ("-" if s.ticks_to_failover is None
             else "{} ({} by {})".format(s.ticks_to_failover,
                                         s.failover_kind, s.failover_by)),
            ("-" if s.ticks_to_post_heal is None
             else "{} ({} by {})".format(s.ticks_to_post_heal,
                                         s.post_heal_kind, s.post_heal_by)),
        ] for s in self.spans]
        return ascii_table(
            ["partition", "at", "heal", "failover (ticks)",
             "post-heal (ticks)"],
            rows,
            title="Partition recovery (ticks = virtual clock)",
        )


def compute_partition_mttr(
    run: Union[RunResult, Trace],
    recovery_kinds: tuple = PARTITION_RECOVERY_KINDS,
) -> PartitionRecoveryMetrics:
    """Failover and post-heal MTTR from one run's trace."""
    return PartitionRecoveryMetrics(
        spans=partition_recovery_spans(run, recovery_kinds))


# ----------------------------------------------------------------------
# Availability (the combined-fault layer's headline number)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Availability:
    """Fraction of virtual time a valid leader/holder existed.

    MTTR measures how long each outage lasted; availability measures how
    much of the run was outage at all — the number that actually degrades
    when crash-restart and partitions compose (every restart+re-acquire
    cycle and every quorum-less window subtracts from it).
    """

    held_ticks: int
    horizon: int
    intervals: Tuple[Tuple[int, int], ...] = ()

    @property
    def fraction(self) -> float:
        if self.horizon <= 0:
            return 0.0
        return self.held_ticks / float(self.horizon)

    def describe(self) -> str:
        return "service held {}/{} ticks ({:.0%})".format(
            self.held_ticks, self.horizon, self.fraction)


def _service_intervals(trace: Trace) -> List[List[int]]:
    """Intervals of "a valid holder/leader exists", from the same trace
    vocabulary the partition oracles read (kept local — the verify layer
    imports this module, not the other way around):

    * a lease holder is valid from ``lease_acquired`` to the earlier of
      its ``until`` horizon and an explicit ``lease_released``;
    * a leader leads from ``leader_elected`` until its own
      ``leader_stepdown`` (a leader that never steps down leads to the
      end of the trace — clipped by the caller's horizon).
    """
    intervals: List[List[int]] = []
    open_lease: Dict[str, List[int]] = {}     # holder -> [start, horizon]
    open_leader: Dict[str, int] = {}          # leader -> start
    end = 0
    for ev in trace:
        end = max(end, ev.time)
        if ev.kind == "lease_acquired":
            if ev.obj in open_lease:
                start, horizon = open_lease.pop(ev.obj)
                intervals.append([start, min(horizon, ev.time)])
            open_lease[ev.obj] = [ev.time, int(ev.detail["until"])]
        elif ev.kind == "lease_released":
            if ev.obj in open_lease:
                start, horizon = open_lease.pop(ev.obj)
                intervals.append([start, min(horizon, ev.time)])
        elif ev.kind == "leader_elected":
            open_leader.setdefault(ev.obj, ev.time)
        elif ev.kind == "leader_stepdown":
            if ev.obj in open_leader:
                intervals.append([open_leader.pop(ev.obj), ev.time])
    for start, horizon in open_lease.values():
        intervals.append([start, horizon])
    for start in open_leader.values():
        intervals.append([start, end])
    return intervals


def compute_availability(
    run: Union[RunResult, Trace],
    horizon: Optional[int] = None,
) -> Availability:
    """Union the holder/leader validity intervals and divide by the run
    horizon (default: the last event's tick).  Overlapping intervals
    count once — availability asks "did *someone* validly hold the
    service", not "how many thought they did" (that is the exclusion
    oracle's question)."""
    trace = _trace_of(run)
    if horizon is None:
        horizon = max((ev.time for ev in trace), default=0)
    raw = _service_intervals(trace)
    clipped = sorted(
        (max(0, s), min(e, horizon)) for s, e in raw)
    merged: List[List[int]] = []
    for s, e in clipped:
        if e <= s:
            continue
        if merged and s <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], e)
        else:
            merged.append([s, e])
    held = sum(e - s for s, e in merged)
    return Availability(
        held_ticks=held, horizon=horizon,
        intervals=tuple((s, e) for s, e in merged))
