"""Harness self-observability: the exploration engine measured with the
same discipline it applies to the mechanisms.

The ROADMAP's perf goal — "make exploration fast, and make parallel
actually parallel" — cannot be attacked blind: before this module the
harness could report *that* the 4-worker frontier was slower than serial
(``parallel_speedup: 0.73`` in BENCH_exploration.json) but not *why*.
This module answers why, in three layers:

* **Phase-attributed wall-clock accounting** — every second the explore
  hot loop spends is attributed to one phase of :data:`PHASES`
  (scheduler stepping vs fingerprint hashing vs oracle checking vs trace
  recording vs dispatch/IPC vs result collection), and the attribution
  *tiles*: E21 (``benchmarks/bench_harness.py``) asserts the phase sum
  covers >= 90% of measured elapsed time, the same conservation standard
  the critical path meets against the makespan.
* **Per-worker utilization timeline** — for :func:`repro.explore.parallel.
  explore_parallel`, each worker item becomes a :class:`WorkerItem`
  (busy span, queue wait, pickle bytes in/out), and
  :meth:`HarnessTelemetry.attribution` reduces the timeline to an
  Amdahl-style explanation of the observed speedup: serial master share,
  parallel busy share, idle/IPC share, the core-count bound, and an
  ``oversubscribed`` verdict when workers exceed physical cpus.
* **Live progress + hotspots** — counter samples (schedules/sec,
  frontier depth, pruning ratio) feed ``repro explore --watch`` progress
  lines, the chrome-trace "harness" track
  (:func:`repro.obs.exporters.chrome_trace` with ``harness=``), and the
  run store (:func:`explore_record`, gated by ``repro regress
  --explore``); :func:`self_profile` wraps a search in cProfile and
  surfaces the hotspot list (``repro profile --self``) the scheduler-core
  refactor needs.

**Null-path contract.**  Exactly like the runtime's
:class:`~repro.obs.sink.InstrumentationSink`: the engine and the parallel
frontier store ``telemetry=None`` for the unobserved case and guard every
accounting site with one ``is not None`` test; passing
:class:`NullHarnessTelemetry` is normalized to ``None`` at the entry
point (``IS_NULL = True``), so an unobserved search executes the
identical code path and pays nothing.  E21 asserts the null path within
5% of no-argument runs, the same gate E15 holds the trace sink to.

Telemetry is **passive**: it never influences a scheduling or pruning
decision, so results with telemetry attached are byte-identical to
results without (asserted by ``tests/test_harness_obs.py``).  Worker
timestamps are ``time.perf_counter()`` readings; on the POSIX platforms
the pool targets (fork context) that clock is system-wide monotonic, so
worker spans are directly comparable with the master epoch.
"""

from __future__ import annotations

import cProfile
import io
import os
import pstats
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, TextIO, Tuple

from .runstore import RunRecord

#: The phase vocabulary (DESIGN.md §15).  Serial searches decompose every
#: schedule into ``step``/``fingerprint``/``check``/``record`` and the
#: master loop into ``dispatch``/``collect``; multi-process searches
#: additionally book the pool round-trip under ``execute`` (decomposed
#: post-hoc into busy/idle/IPC by the worker timeline).
PHASES = (
    "step",         # scheduler stepping: executing the schedule itself
    "fingerprint",  # canonical-state digesting (RecordingPolicy.observe_state)
    "check",        # oracle battery over the finished run
    "record",       # RunRecord reduction (trace -> picklable record)
    "dispatch",     # wave sort, prefix pickling, work submission
    "execute",      # pool.map round trip (workers > 1 only)
    "collect",      # record merging, expand_record, frontier bookkeeping
)


@dataclass(frozen=True)
class WorkerItem:
    """One schedule executed by one pool worker, on the master's clock."""

    worker: int          # worker process id
    start: float         # seconds since telemetry epoch
    end: float
    queue_wait: float    # start minus the wave's dispatch timestamp
    result_bytes: int    # pickled RunRecord size shipped back
    prefix_len: int

    @property
    def busy(self) -> float:
        return self.end - self.start


@dataclass
class WaveStat:
    """One dispatch round of the parallel frontier."""

    size: int            # work items in the wave
    chunk: int           # pool chunksize
    arg_bytes: int       # pickled prefix bytes shipped out
    seconds: float       # pool round-trip wall time


class HarnessTelemetry:
    """Accumulating sink for harness self-measurement.

    Attach one to :class:`~repro.explore.engine.ExplorationEngine` or
    :func:`~repro.explore.parallel.explore_parallel` via ``telemetry=``.
    All methods are passive accumulators; ``watch`` (a writable stream)
    additionally emits periodic, non-tty-safe progress lines.
    """

    IS_NULL = False

    #: counter samples at most this often (runs / seconds), so sampling
    #: stays O(1) amortized even on million-schedule searches.
    SAMPLE_RUNS = 32
    SAMPLE_SECONDS = 0.25

    def __init__(self, watch: Optional[TextIO] = None,
                 watch_interval: float = 1.0) -> None:
        self.phase_seconds: Dict[str, float] = {}
        self.runs = 0
        self.pruned = 0
        self.frontier = 0
        self.frontier_peak = 0
        self.max_runs: Optional[int] = None
        self.workers = 1
        #: (elapsed_s, runs, frontier, pruned) counter samples.
        self.samples: List[Tuple[float, int, int, int]] = []
        self.worker_items: List[WorkerItem] = []
        self.waves: List[WaveStat] = []
        self.watch = watch
        self.watch_interval = watch_interval
        self._epoch: Optional[float] = None
        self._finished: Optional[float] = None
        self._last_sample_runs = 0
        self._last_sample_t = 0.0
        self._last_watch_t = 0.0

    # ------------------------------------------------------------------
    # Accumulation (called from the explore hot loop, guarded by the
    # caller's single `telemetry is not None` test)
    # ------------------------------------------------------------------
    def begin(self, max_runs: Optional[int] = None,
              workers: int = 1) -> None:
        """Start (or restart) the epoch.  Idempotent across the serial
        engine's and the parallel frontier's shared entry points."""
        self._epoch = perf_counter()
        self._finished = None
        self.max_runs = max_runs
        self.workers = workers

    def add(self, phase: str, seconds: float) -> None:
        """Attribute ``seconds`` of wall clock to ``phase``."""
        self.phase_seconds[phase] = (
            self.phase_seconds.get(phase, 0.0) + seconds)

    def note_progress(self, runs: int, frontier: int, pruned: int) -> None:
        """Update headline counters; throttled sampling + watch output."""
        self.runs = runs
        self.frontier = frontier
        self.pruned = pruned
        if frontier > self.frontier_peak:
            self.frontier_peak = frontier
        now = self.elapsed()
        if (runs - self._last_sample_runs >= self.SAMPLE_RUNS
                or now - self._last_sample_t >= self.SAMPLE_SECONDS):
            self.samples.append((now, runs, frontier, pruned))
            self._last_sample_runs = runs
            self._last_sample_t = now
        if (self.watch is not None
                and now - self._last_watch_t >= self.watch_interval):
            self._last_watch_t = now
            self.watch.write(self.progress_line() + "\n")
            self.watch.flush()

    def note_wave(self, size: int, chunk: int, arg_bytes: int,
                  seconds: float) -> None:
        self.waves.append(WaveStat(size=size, chunk=chunk,
                                   arg_bytes=arg_bytes, seconds=seconds))

    def note_worker_item(self, worker: int, start: float, end: float,
                         dispatch_ts: float, result_bytes: int,
                         prefix_len: int) -> None:
        """Record one worker execution.  ``start``/``end``/``dispatch_ts``
        are raw ``perf_counter`` readings; stored relative to the epoch."""
        epoch = self._epoch or 0.0
        self.worker_items.append(WorkerItem(
            worker=worker,
            start=start - epoch,
            end=end - epoch,
            queue_wait=max(0.0, start - dispatch_ts),
            result_bytes=result_bytes,
            prefix_len=prefix_len,
        ))

    def finish(self) -> None:
        """Freeze the elapsed clock and emit a final sample."""
        self._finished = perf_counter()
        self.samples.append(
            (self.elapsed(), self.runs, self.frontier, self.pruned))
        if self.watch is not None:
            self.watch.write(self.progress_line(final=True) + "\n")
            self.watch.flush()

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        if self._epoch is None:
            return 0.0
        end = self._finished if self._finished is not None else perf_counter()
        return end - self._epoch

    def schedules_per_sec(self) -> float:
        elapsed = self.elapsed()
        return self.runs / elapsed if elapsed > 0 else 0.0

    def pruning_ratio(self) -> float:
        """Fraction of generated work items skipped by equivalence
        pruning (0 when pruning is off)."""
        total = self.runs + self.pruned
        return self.pruned / total if total else 0.0

    def coverage(self) -> float:
        """How much of measured elapsed time the phases tile (E21 gates
        this >= 0.90; the remainder is loop bookkeeping)."""
        elapsed = self.elapsed()
        return sum(self.phase_seconds.values()) / elapsed if elapsed else 0.0

    def eta_seconds(self) -> Optional[float]:
        """Budget-bound ETA: schedules left at the current rate.  An upper
        bound — the frontier may drain (exhaust) sooner."""
        if not self.max_runs:
            return None
        rate = self.schedules_per_sec()
        if rate <= 0:
            return None
        return max(0, self.max_runs - self.runs) / rate

    def progress_line(self, final: bool = False) -> str:
        """One non-tty-safe progress line (plain text, no carriage
        returns), suitable for CI logs and ``--watch``."""
        eta = self.eta_seconds()
        return ("[explore{fin} {t:.1f}s] runs={runs} ({rate:.0f}/s) "
                "frontier={frontier} pruned={pruned} ({ratio:.1f}%)"
                " eta<={eta}").format(
            fin=" done" if final else "",
            t=self.elapsed(),
            runs=self.runs,
            rate=self.schedules_per_sec(),
            frontier=self.frontier,
            pruned=self.pruned,
            ratio=100.0 * self.pruning_ratio(),
            eta="-" if eta is None or final else "{:.1f}s".format(eta),
        )

    def utilization(self) -> Dict[int, Dict[str, Any]]:
        """Per-worker reduction of the item timeline: busy seconds, items
        executed, bytes shipped back, mean queue wait."""
        per: Dict[int, Dict[str, Any]] = {}
        for item in self.worker_items:
            stats = per.setdefault(item.worker, {
                "busy_seconds": 0.0, "items": 0, "result_bytes": 0,
                "queue_wait_seconds": 0.0,
            })
            stats["busy_seconds"] += item.busy
            stats["items"] += 1
            stats["result_bytes"] += item.result_bytes
            stats["queue_wait_seconds"] += item.queue_wait
        execute = self.phase_seconds.get("execute", 0.0)
        for stats in per.values():
            stats["busy_seconds"] = round(stats["busy_seconds"], 6)
            stats["queue_wait_seconds"] = round(
                stats["queue_wait_seconds"], 6)
            stats["utilization"] = (
                round(min(1.0, stats["busy_seconds"] / execute), 4)
                if execute > 0 else None)
        return per

    def attribution(self) -> Dict[str, Any]:
        """Amdahl-style speedup attribution: where the wall clock of a
        parallel search went, and what speedup the configuration could at
        best have achieved.

        The model (DESIGN.md §15): elapsed ~= serial + execute, where
        ``serial`` is master-only work (dispatch + collect + serial-mode
        phases) and ``execute`` is the pool round trip.  ``execute``
        spreads over ``workers`` lanes of capacity: ``busy`` seconds did
        schedule work, the rest is ``idle`` (queue imbalance, IPC
        serialization, core starvation).  With ``effective = min(workers,
        cpus)`` truly parallel lanes, the best case is ``serial +
        busy/effective`` — the Amdahl bound reported here.  When
        ``workers > cpus`` the run is flagged ``oversubscribed``: lanes
        time-slice one core, busy seconds exceed wall capacity, and a
        speedup below 1 is the *expected* outcome, not an anomaly.
        """
        elapsed = self.elapsed()
        execute = self.phase_seconds.get("execute", 0.0)
        busy = sum(item.busy for item in self.worker_items)
        serial = sum(seconds for phase, seconds in self.phase_seconds.items()
                     if phase != "execute")
        capacity = execute * self.workers
        idle = max(0.0, capacity - busy)
        cpus = os.cpu_count() or 1
        effective = max(1, min(self.workers, cpus))
        oversubscribed = self.workers > cpus
        amdahl = ((serial + busy) / (serial + busy / effective)
                  if serial + busy > 0 else 1.0)
        result_bytes = sum(item.result_bytes for item in self.worker_items)
        arg_bytes = sum(wave.arg_bytes for wave in self.waves)
        causes = []
        if oversubscribed:
            causes.append(
                "oversubscribed: {} workers share {} cpu(s), so worker "
                "lanes time-slice instead of running in parallel".format(
                    self.workers, cpus))
        if capacity > 0 and idle / capacity > 0.5:
            causes.append(
                "workers idle {:.0f}% of pool capacity (queue imbalance "
                "and IPC)".format(100.0 * idle / capacity))
        if elapsed > 0 and serial / elapsed > 0.5:
            causes.append(
                "master-side serial work is {:.0f}% of elapsed (Amdahl "
                "bound {:.2f}x)".format(100.0 * serial / elapsed, amdahl))
        if not causes:
            causes.append("no dominant bottleneck: parallel section is "
                          "busy and the serial share is small")
        return {
            "workers": self.workers,
            "cpu_count": cpus,
            "effective_workers": effective,
            "oversubscribed": oversubscribed,
            "elapsed_seconds": round(elapsed, 6),
            "serial_seconds": round(serial, 6),
            "execute_seconds": round(execute, 6),
            "worker_busy_seconds": round(busy, 6),
            "worker_idle_seconds": round(idle, 6),
            "worker_utilization": (round(busy / capacity, 4)
                                   if capacity > 0 else None),
            "pickle_bytes_out": arg_bytes,
            "pickle_bytes_in": result_bytes,
            "amdahl_speedup_bound": round(amdahl, 4),
            "explanation": "; ".join(causes),
        }

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "elapsed_seconds": round(self.elapsed(), 6),
            "runs": self.runs,
            "pruned": self.pruned,
            "frontier_peak": self.frontier_peak,
            "schedules_per_sec": round(self.schedules_per_sec(), 1),
            "pruning_ratio": round(self.pruning_ratio(), 4),
            "phase_seconds": {phase: round(seconds, 6)
                              for phase, seconds in
                              sorted(self.phase_seconds.items())},
            "coverage": round(self.coverage(), 4),
            "workers": self.workers,
            "waves": len(self.waves),
            "worker_utilization": {str(worker): stats for worker, stats
                                   in sorted(self.utilization().items())},
            "attribution": (self.attribution()
                            if self.worker_items else None),
            "samples": [
                {"t": round(t, 4), "runs": runs, "frontier": frontier,
                 "pruned": pruned}
                for t, runs, frontier, pruned in self.samples
            ],
        }

    def render(self) -> str:
        """ASCII phase report: per-phase seconds with share bars."""
        elapsed = self.elapsed()
        lines = [
            "harness telemetry: {} run(s) in {:.3f}s "
            "({:.0f} schedules/sec, {:.1f}% pruned, "
            "phase coverage {:.0f}%)".format(
                self.runs, elapsed, self.schedules_per_sec(),
                100.0 * self.pruning_ratio(), 100.0 * self.coverage()),
        ]
        for phase in PHASES:
            seconds = self.phase_seconds.get(phase)
            if seconds is None:
                continue
            share = seconds / elapsed if elapsed > 0 else 0.0
            lines.append("  %-12s %8.4fs %5.1f%% %s" % (
                phase, seconds, 100.0 * share,
                "#" * int(round(share * 40))))
        if self.worker_items:
            attribution = self.attribution()
            lines.append("  workers: {} ({} effective on {} cpu(s); "
                         "utilization {}, {} idle s)".format(
                             attribution["workers"],
                             attribution["effective_workers"],
                             attribution["cpu_count"],
                             attribution["worker_utilization"],
                             attribution["worker_idle_seconds"]))
            lines.append("  " + attribution["explanation"])
        return "\n".join(lines)


class NullHarnessTelemetry(HarnessTelemetry):
    """The do-nothing telemetry.  Entry points normalize it to ``None``
    (``IS_NULL``), so attaching it is exactly as free as attaching
    nothing — the contract E21 measures."""

    IS_NULL = True


def normalize_telemetry(
        telemetry: Optional[HarnessTelemetry]) -> Optional[HarnessTelemetry]:
    """``None`` for the null path (no telemetry, or a sink whose class
    sets ``IS_NULL``); the sink itself otherwise.  Duck-typed so the
    explore package never has to import this module."""
    if telemetry is None or getattr(telemetry, "IS_NULL", False):
        return None
    return telemetry


# ----------------------------------------------------------------------
# Run-store persistence (repro regress --explore)
# ----------------------------------------------------------------------
#: RunRecord.problem prefix marking harness exploration records.
EXPLORE_RECORD_PREFIX = "explore:"


def explore_record(problem: str, mechanism: str, result: Any,
                   telemetry: HarnessTelemetry,
                   seed: Optional[int] = None) -> RunRecord:
    """A gateable :class:`~repro.obs.runstore.RunRecord` from one explored
    target.

    Two gates ride on it: ``steps`` carries the schedule count — fully
    deterministic, so *any* increase is a pruning regression — and
    ``schedules_per_sec`` carries wall-clock throughput (direction ``-``:
    a *drop* is the regression; machine-dependent, so CI compares with a
    generous threshold).  Phase attribution is persisted alongside for
    post-hoc diffing but not gated.
    """
    record = RunRecord(
        problem=EXPLORE_RECORD_PREFIX + problem,
        mechanism=mechanism,
        seed=seed,
    )
    record.steps = result.runs
    record.events = result.pruned
    record.schedules_per_sec = int(round(telemetry.schedules_per_sec()))
    record.phase_seconds = {phase: round(seconds, 6)
                            for phase, seconds in
                            sorted(telemetry.phase_seconds.items())}
    return record


# ----------------------------------------------------------------------
# Self-profiling (repro profile --self / repro explore --self-profile)
# ----------------------------------------------------------------------
@dataclass
class Hotspot:
    """One profiled function, ranked by cumulative time."""

    function: str
    location: str        # file:line
    calls: int
    tottime: float       # exclusive seconds
    cumtime: float       # inclusive seconds

    def to_dict(self) -> Dict[str, Any]:
        return {
            "function": self.function,
            "location": self.location,
            "calls": self.calls,
            "tottime": round(self.tottime, 6),
            "cumtime": round(self.cumtime, 6),
        }


@dataclass
class HotspotReport:
    """cProfile reduction of one harness workload: the exact list the
    scheduler-core refactor should attack, hottest first."""

    seconds: float
    total_calls: int
    hotspots: List[Hotspot] = field(default_factory=list)
    value: Any = None    # whatever the profiled callable returned

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seconds": round(self.seconds, 6),
            "total_calls": self.total_calls,
            "hotspots": [spot.to_dict() for spot in self.hotspots],
        }

    def render(self) -> str:
        lines = [
            "self-profile: {:.3f}s, {} function call(s)".format(
                self.seconds, self.total_calls),
            "%-28s %10s %9s %9s  %s" % (
                "function", "calls", "tottime", "cumtime", "where"),
        ]
        for spot in self.hotspots:
            lines.append("%-28s %10d %8.4fs %8.4fs  %s" % (
                spot.function[:28], spot.calls, spot.tottime,
                spot.cumtime, spot.location))
        return "\n".join(lines)


#: Frames below this share of total time are noise, not hotspots.
_HOTSPOT_MIN_SHARE = 0.005


def self_profile(fn: Callable[[], Any], top: int = 15) -> HotspotReport:
    """Run ``fn`` under cProfile and reduce the stats to the ``top``
    hotspots by exclusive (tot) time.  Pure-Python profiling: expect the
    profiled run itself to be ~2x slower — this is the *diagnosis* mode,
    never the measurement mode (wall-clock numbers stay with
    :class:`HarnessTelemetry`)."""
    profiler = cProfile.Profile()
    start = perf_counter()
    value = profiler.runcall(fn)
    seconds = perf_counter() - start
    stats = pstats.Stats(profiler, stream=io.StringIO())
    hotspots: List[Hotspot] = []
    total_calls = 0
    entries = []
    for (filename, line, function), (cc, ncalls, tottime, cumtime, __) \
            in stats.stats.items():  # type: ignore[attr-defined]
        total_calls += ncalls
        entries.append((tottime, cumtime, ncalls, function, filename, line))
    entries.sort(reverse=True)
    floor = seconds * _HOTSPOT_MIN_SHARE
    for tottime, cumtime, ncalls, function, filename, line in entries:
        if len(hotspots) >= top or tottime < floor:
            break
        location = "{}:{}".format(os.path.basename(filename) or "~", line)
        hotspots.append(Hotspot(function=function, location=location,
                                calls=ncalls, tottime=tottime,
                                cumtime=cumtime))
    return HotspotReport(seconds=seconds, total_calls=total_calls,
                         hotspots=hotspots, value=value)
