"""Run store: schema-versioned causal-profile records + regression gate.

Kode & Oyemade (arXiv:2409.11271) argue mechanism comparisons only become
trustworthy when tracked across runs; until now every ``repro profile`` /
``metrics`` invocation was ephemeral.  This module makes profiled runs
durable and diffable:

* :class:`RunRecord` — one profiled run's causal fingerprint: makespan,
  critical-path composition, constraint/information-type attribution,
  headline counters.  Everything is virtual-time/seq-axis data, so records
  are **bit-stable across machines and Python versions** — a record
  written on one host is a valid baseline on another.
* :class:`RunStore` — persists records as canonical JSON under
  ``.repro/runs/`` (one file per ``(problem, mechanism, seed)``), written
  with sorted keys and a trailing newline so baselines diff cleanly.
* :func:`compare_records` / :class:`Regression` — the gate: diffs a fresh
  record against a stored baseline and flags metrics that moved past a
  relative threshold.  ``repro regress`` wires this into the CLI and CI.

Schema discipline: every record carries ``schema``; loading a record with
a newer major schema than this code understands raises, loading an older
one is tolerated field-by-field (missing keys compare as absent, never as
zero).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from .critical_path import CriticalPathReport

#: Store layout / record schema version.
RUNSTORE_SCHEMA = 1

#: Default location, relative to the working directory.
DEFAULT_ROOT = os.path.join(".repro", "runs")

#: Metrics the gate watches: record key -> direction.  Direction ``+``
#: means an *increase* is a regression (costs: makespan, blocked ticks);
#: ``-`` means a *decrease* is (rates: exploration throughput).
GATED_METRICS: Dict[str, str] = {
    "makespan": "+",
    "path_blocked_ticks": "+",
    "steps": "+",
    "context_switches": "+",
    # Latency-tail metrics from `repro load` saturation sweeps (seq-axis
    # percentiles at the sweep's largest population).  Optional: profile
    # records leave them None and the gate skips them.
    "latency_p95": "+",
    "latency_p99": "+",
    # Exploration throughput from `repro regress --explore` (harness
    # telemetry).  Wall-clock and therefore machine-dependent — gate it
    # with a generous threshold; the deterministic companion is ``steps``
    # (= schedules executed, any growth means pruning regressed).
    "schedules_per_sec": "-",
}


@dataclass
class RunRecord:
    """One profiled run's durable causal fingerprint."""

    problem: str
    mechanism: str
    seed: Optional[int] = None
    schema: int = RUNSTORE_SCHEMA
    makespan: int = 0
    path_ticks: int = 0
    path_blocked_ticks: int = 0
    slack: int = 0
    steps: int = 0
    events: int = 0
    context_switches: int = 0
    handoffs: int = 0
    segments: int = 0
    constraint_ticks: Dict[str, int] = field(default_factory=dict)
    info_type_ticks: Dict[str, int] = field(default_factory=dict)
    blocked_by_object: Dict[str, int] = field(default_factory=dict)
    speedups: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Seq-axis latency tail (load sweeps only; None on profile records,
    #: and the gate skips a metric either side lacks).
    latency_p95: Optional[int] = None
    latency_p99: Optional[int] = None
    #: Harness-telemetry fields (`explore:` records only).  The throughput
    #: is gated (direction ``-``); the phase breakdown is persisted for
    #: diffing but never gated (wall-clock noise per phase is too high).
    schedules_per_sec: Optional[int] = None
    phase_seconds: Optional[Dict[str, float]] = None

    @property
    def key(self) -> str:
        return "{}/{}{}".format(
            self.problem, self.mechanism,
            "@seed{}".format(self.seed) if self.seed is not None else "")

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "schema": self.schema,
            "problem": self.problem,
            "mechanism": self.mechanism,
            "seed": self.seed,
            "makespan": self.makespan,
            "path_ticks": self.path_ticks,
            "path_blocked_ticks": self.path_blocked_ticks,
            "slack": self.slack,
            "steps": self.steps,
            "events": self.events,
            "context_switches": self.context_switches,
            "handoffs": self.handoffs,
            "segments": self.segments,
            "constraint_ticks": dict(sorted(self.constraint_ticks.items())),
            "info_type_ticks": dict(sorted(self.info_type_ticks.items())),
            "blocked_by_object": dict(
                sorted(self.blocked_by_object.items())),
            "speedups": {k: dict(v) for k, v in
                         sorted(self.speedups.items())},
        }
        if self.latency_p95 is not None:
            data["latency_p95"] = self.latency_p95
        if self.latency_p99 is not None:
            data["latency_p99"] = self.latency_p99
        if self.schedules_per_sec is not None:
            data["schedules_per_sec"] = self.schedules_per_sec
        if self.phase_seconds is not None:
            data["phase_seconds"] = {
                k: round(float(v), 6)
                for k, v in sorted(self.phase_seconds.items())}
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunRecord":
        schema = int(data.get("schema", 1))
        if schema > RUNSTORE_SCHEMA:
            raise ValueError(
                "run record schema {} is newer than supported {}".format(
                    schema, RUNSTORE_SCHEMA))
        record = cls(problem=data["problem"], mechanism=data["mechanism"],
                     seed=data.get("seed"), schema=schema)
        for attr in ("makespan", "path_ticks", "path_blocked_ticks", "slack",
                     "steps", "events", "context_switches", "handoffs",
                     "segments"):
            setattr(record, attr, int(data.get(attr, 0)))
        record.constraint_ticks = dict(data.get("constraint_ticks", {}))
        record.info_type_ticks = dict(data.get("info_type_ticks", {}))
        record.blocked_by_object = dict(data.get("blocked_by_object", {}))
        record.speedups = {k: dict(v)
                           for k, v in data.get("speedups", {}).items()}
        for attr in ("latency_p95", "latency_p99", "schedules_per_sec"):
            if data.get(attr) is not None:
                setattr(record, attr, int(data[attr]))
        if data.get("phase_seconds") is not None:
            record.phase_seconds = {k: float(v) for k, v in
                                    data["phase_seconds"].items()}
        return record

    # ------------------------------------------------------------------
    @classmethod
    def from_report(cls, problem: str, mechanism: str,
                    path: CriticalPathReport, metrics=None,
                    seed: Optional[int] = None) -> "RunRecord":
        """Build a record from a critical-path report (plus, optionally,
        the run's :class:`~repro.obs.metrics.RunMetrics`)."""
        record = cls(problem=problem, mechanism=mechanism, seed=seed)
        record.makespan = path.makespan
        record.path_ticks = path.path_ticks
        record.slack = path.slack
        record.segments = len(path.segments)
        record.constraint_ticks = path.constraint_ticks()
        record.info_type_ticks = path.info_type_ticks()
        record.blocked_by_object = path.blocked_ticks_by_object()
        record.path_blocked_ticks = sum(
            seg.duration for seg in path.segments
            if seg.kind in ("blocked", "timer"))
        record.speedups = path.virtual_speedups()
        if metrics is not None:
            record.steps = metrics.steps
            record.events = metrics.events
            record.context_switches = metrics.context_switches
            record.handoffs = metrics.handoffs
        return record


def load_tail_record(mechanism: str, points: List[Any],
                     seed: Optional[int] = None) -> RunRecord:
    """A gateable record from a ``saturation_curve`` sweep.

    Takes the sweep's **largest population** point — the saturation end of
    the curve, where queueing dominates and tail blowups surface first —
    and records its seq-axis p95/p99 latency alongside the usual virtual-
    time counters.  All inputs are virtual-time data, so the record is as
    machine-stable as any profile record, and ``repro regress --load``
    can fail CI on a tail-latency regression.

    ``points`` are :class:`repro.load.LoadPoint` objects (duck-typed here
    to keep obs free of a load-package import).
    """
    if not points:
        raise ValueError("load_tail_record needs at least one sweep point")
    tail = max(points, key=lambda p: p.clients)
    record = RunRecord(problem="load_tail", mechanism=mechanism, seed=seed)
    record.makespan = int(tail.duration_ticks)
    record.steps = int(tail.steps)
    record.events = int(tail.events)
    record.latency_p95 = int(round(tail.latency["p95"]))
    record.latency_p99 = int(round(tail.latency["p99"]))
    return record


def canonical_json(payload: Any) -> str:
    """The store's one serialization: sorted keys, two-space indent,
    trailing newline — byte-stable across runs and Python versions."""
    return json.dumps(payload, indent=2, sort_keys=True,
                      ensure_ascii=True, default=str) + "\n"


class RunStore:
    """Filesystem store of :class:`RunRecord` JSON under ``root``."""

    def __init__(self, root: str = DEFAULT_ROOT) -> None:
        self.root = root

    # ------------------------------------------------------------------
    def _path(self, record: RunRecord) -> str:
        seed = "seed{}".format(record.seed) if record.seed is not None \
            else "fifo"
        name = "{}__{}__{}.json".format(record.problem, record.mechanism,
                                        seed)
        return os.path.join(self.root, name)

    def save(self, record: RunRecord) -> str:
        """Write (or overwrite) the record; returns its path."""
        os.makedirs(self.root, exist_ok=True)
        path = self._path(record)
        with open(path, "w") as fh:
            fh.write(canonical_json(record.to_dict()))
        return path

    def load_all(self) -> List[RunRecord]:
        """Every record in the store, sorted by key."""
        if not os.path.isdir(self.root):
            return []
        records = []
        for name in sorted(os.listdir(self.root)):
            if name.endswith(".json"):
                records.append(load_record(os.path.join(self.root, name)))
        return sorted(records, key=lambda r: r.key)

    def load(self, problem: str, mechanism: str,
             seed: Optional[int] = None) -> Optional[RunRecord]:
        probe = RunRecord(problem=problem, mechanism=mechanism, seed=seed)
        path = self._path(probe)
        return load_record(path) if os.path.exists(path) else None


def load_record(path: str) -> RunRecord:
    with open(path) as fh:
        return RunRecord.from_dict(json.load(fh))


def load_baseline(ref: str) -> List[RunRecord]:
    """Resolve a ``--baseline`` reference: a record file, a file holding a
    JSON *list* of records, or a directory of record files."""
    if os.path.isdir(ref):
        return RunStore(ref).load_all()
    with open(ref) as fh:
        data = json.load(fh)
    if isinstance(data, list):
        return [RunRecord.from_dict(item) for item in data]
    return [RunRecord.from_dict(data)]


def dump_baseline(records: List[RunRecord]) -> str:
    """One canonical-JSON file holding every record (committed baselines)."""
    return canonical_json(
        [r.to_dict() for r in sorted(records, key=lambda r: r.key)])


# ----------------------------------------------------------------------
# The fingerprint cache: persistent cross-run exploration state
# ----------------------------------------------------------------------
#: Schema of fingerprint-cache files (independent of RUNSTORE_SCHEMA).
FP_CACHE_SCHEMA = 1

#: Default location of fingerprint-cache files, under the run store.
FP_CACHE_ROOT = os.path.join(DEFAULT_ROOT, "fingerprints")


class FingerprintCache:
    """Persistent ``(state fingerprint, chosen pid)`` prune keys from past
    explorations, keyed by ``(problem, mechanism[, variant])``.

    The explore engine's equivalence pruning
    (:func:`repro.explore.engine.expand_record`) claims one key per
    explored subtree; warm-starting a later search with those keys makes
    it skip every subtree a previous run already covered — repeated
    ``repro explore --fp-cache`` invocations and synthesis candidate
    re-runs collapse to (nearly) a single schedule.  ``variant`` carves
    separate namespaces per candidate fingerprint, so candidates with
    different semantics never share subtree claims.

    Soundness rules (enforced here and at the save call sites):

    * Only **exhausted** searches may be persisted — an out-of-budget
      search claims subtrees it never finished, and reusing those claims
      would silently skip unexplored schedules.  :meth:`save` refuses
      unless the caller asserts exhaustion.
    * A cache recorded at branching depth ``D`` warms only searches with
      ``max_depth <= D`` (deeper searches would trust shallow claims);
      :meth:`load` returns a cold (empty) set on a depth mismatch.

    Fingerprints are virtual-time canonical-state digests, so cache files
    are portable across machines like every other run-store artifact —
    but **not** across code changes that alter scheduler state layout;
    ``repro explore --fp-cache`` rebuilds stale caches for free because an
    unmatched fingerprint simply never prunes.
    """

    def __init__(self, root: str = FP_CACHE_ROOT) -> None:
        self.root = root

    # ------------------------------------------------------------------
    def _path(self, problem: str, mechanism: str,
              variant: Optional[str]) -> str:
        name = "{}__{}__{}.json".format(problem, mechanism,
                                        variant if variant else "base")
        return os.path.join(self.root, name)

    def load(self, problem: str, mechanism: str, *,
             variant: Optional[str] = None,
             max_depth: Optional[int] = None) -> Set[Tuple[int, int]]:
        """The stored prune-key set, or an empty (cold) set when there is
        no usable cache: missing file, newer schema, or a stored depth
        shallower than ``max_depth``."""
        path = self._path(problem, mechanism, variant)
        if not os.path.exists(path):
            return set()
        with open(path) as fh:
            data = json.load(fh)
        if int(data.get("schema", 1)) > FP_CACHE_SCHEMA:
            return set()
        stored_depth = data.get("max_depth")
        if (max_depth is not None and stored_depth is not None
                and int(stored_depth) < max_depth):
            return set()
        return {(int(fp), int(pid)) for fp, pid in data.get("keys", [])}

    def save(self, problem: str, mechanism: str,
             keys: Set[Tuple[int, int]], *,
             variant: Optional[str] = None,
             max_depth: Optional[int] = None,
             exhausted: bool = False) -> Optional[str]:
        """Union-merge ``keys`` into the stored set; returns the path, or
        ``None`` when nothing was written.

        Refuses (returns ``None``) unless ``exhausted`` — see the class
        docstring.  A merge keeps the *shallower* of the two depths so the
        stored depth never overstates coverage.
        """
        if not exhausted:
            return None
        path = self._path(problem, mechanism, variant)
        merged = set(keys)
        depth: Optional[int] = max_depth
        if os.path.exists(path):
            with open(path) as fh:
                data = json.load(fh)
            if int(data.get("schema", 1)) <= FP_CACHE_SCHEMA:
                merged |= {(int(fp), int(pid))
                           for fp, pid in data.get("keys", [])}
                stored_depth = data.get("max_depth")
                if stored_depth is not None:
                    depth = (int(stored_depth) if depth is None
                             else min(depth, int(stored_depth)))
        os.makedirs(self.root, exist_ok=True)
        payload = {
            "schema": FP_CACHE_SCHEMA,
            "problem": problem,
            "mechanism": mechanism,
            "variant": variant,
            "max_depth": depth,
            "keys": sorted([fp, pid] for fp, pid in merged),
        }
        with open(path, "w") as fh:
            fh.write(canonical_json(payload))
        return path

    def discard(self, problem: str, mechanism: str, *,
                variant: Optional[str] = None) -> bool:
        """Drop one cache entry; True when a file was removed."""
        path = self._path(problem, mechanism, variant)
        if os.path.exists(path):
            os.remove(path)
            return True
        return False


# ----------------------------------------------------------------------
# The regression gate
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Regression:
    """One gated metric that moved past the threshold."""

    key: str
    metric: str
    baseline: int
    current: int

    @property
    def delta_pct(self) -> float:
        if self.baseline == 0:
            return float("inf") if self.current else 0.0
        return 100.0 * (self.current - self.baseline) / self.baseline

    def describe(self) -> str:
        return "{}: {} {} -> {} ({:+.1f}%)".format(
            self.key, self.metric, self.baseline, self.current,
            self.delta_pct)


def compare_records(
    baseline: RunRecord,
    current: RunRecord,
    threshold_pct: float = 10.0,
) -> List[Regression]:
    """Regressions of ``current`` against ``baseline`` (same key).

    A gated metric regresses when it moved in its bad direction (``+``
    metrics grew, ``-`` metrics shrank — see :data:`GATED_METRICS`) by
    more than ``threshold_pct`` percent and by at least 2 units absolute,
    so single-tick jitter on tiny workloads never trips the gate.
    """
    regressions = []
    for metric in sorted(GATED_METRICS):
        base_raw = getattr(baseline, metric, None)
        cur_raw = getattr(current, metric, None)
        if base_raw is None or cur_raw is None:
            # Optional metric absent on either side (e.g. latency tails on
            # profile records, or an older baseline): not comparable.
            continue
        base = int(base_raw)
        cur = int(cur_raw)
        # Signed move in the regression direction: positive = got worse.
        worse = (cur - base) if GATED_METRICS[metric] == "+" else (base - cur)
        if worse <= 0:
            continue
        grew_pct = (100.0 * worse / base) if base else float("inf")
        if grew_pct > threshold_pct and worse >= 2:
            regressions.append(Regression(baseline.key, metric, base, cur))
    return regressions


def render_comparison(
    pairs: List[Tuple[RunRecord, RunRecord]],
    regressions: List[Regression],
) -> str:
    """Side-by-side table of baseline vs current gated metrics."""
    lines = ["%-34s %10s %10s %10s %10s"
             % ("run", "makespan", "(base)", "blocked", "(base)")]
    for base, cur in pairs:
        row = "%-34s %10d %10d %10d %10d" % (
            cur.key[:34], cur.makespan, base.makespan,
            cur.path_blocked_ticks, base.path_blocked_ticks)
        if cur.latency_p95 is not None and base.latency_p95 is not None:
            row += "   p95 %d (%d)  p99 %d (%d)" % (
                cur.latency_p95, base.latency_p95,
                cur.latency_p99 or 0, base.latency_p99 or 0)
        if (cur.schedules_per_sec is not None
                and base.schedules_per_sec is not None):
            row += "   runs %d (%d)  sched/s %d (%d)" % (
                cur.steps, base.steps,
                cur.schedules_per_sec, base.schedules_per_sec)
        lines.append(row)
    if regressions:
        lines.append("")
        lines.append("REGRESSIONS:")
        for item in regressions:
            lines.append("  " + item.describe())
    else:
        lines.append("")
        lines.append("no regressions against baseline")
    return "\n".join(lines)
