"""Exporters: Chrome trace-event JSON, JSONL, and ASCII views.

The Chrome export is loadable in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``: each simulated process becomes a track (``tid``),
spans become complete events (``ph: "X"``), and kills/timeouts become
instant events.  The seq axis is exported as microseconds — in this
discrete-event runtime seq *is* the clock (virtual time only moves at
timer jumps), so one seq unit = 1 µs renders faithfully proportioned
tracks.

JSONL exports one record per line — first the spans, then the raw events —
for ad-hoc processing with ``jq``/pandas.

The ASCII views need no browser: :func:`ascii_timeline` draws one lane per
process with possession/blocked/queue glyphs on the seq axis, and
:func:`ascii_contention` draws a per-object blocked-time bar chart.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..runtime.trace import Event, Trace
from .spans import Span

#: Perfetto category per span kind (used for filtering in the UI).
_CATEGORIES = {
    "possession": "possession",
    "blocked": "wait",
    "queue": "wait",
    "crowd": "occupancy",
    "op_queue": "latency",
    "service": "latency",
}

#: instant-event kinds worth flagging on the timeline.
_INSTANTS = ("killed", "failed", "timeout", "signal", "advance")

#: network-layer kinds (dist.Network + protocol dedup): rendered on their
#: own "network" track rather than attributed to whichever process happened
#: to be running when the network logged them.
_NETWORK = ("msg_send", "msg_deliver", "msg_drop", "msg_dup", "msg_delay",
            "msg_hold", "msg_dedup", "net_partition", "net_heal")


def chrome_trace(
    spans: Sequence[Span],
    trace: Optional[Trace] = None,
    run_label: str = "repro",
    critical: Optional[Sequence] = None,
    harness: Optional[Any] = None,
) -> Dict[str, Any]:
    """Build the Chrome trace-event dict (``{"traceEvents": [...]}``).

    ``critical`` takes the segments of a
    :class:`~repro.obs.critical_path.CriticalPathReport`: each becomes a
    complete event on a dedicated ``critical path`` track (tid one past
    the largest process id), and every ordinary span that overlaps a
    critical segment gains ``args.critical = True`` so the path is
    highlightable in Perfetto.

    ``harness`` takes a :class:`~repro.obs.harness.HarnessTelemetry`
    (duck-typed): its counter samples become ``ph: "C"`` events
    (schedules/sec, frontier depth, pruning ratio) on a ``harness`` track
    and each :class:`~repro.obs.harness.WorkerItem` becomes a complete
    event on a ``worker <pid>`` lane.  Caveat: harness timestamps are
    **wall-clock seconds since the telemetry epoch** (exported as µs),
    not the seq axis the mechanism tracks use — meaningful on its own
    (``repro explore --export chrome`` passes empty spans) or as a
    separate clock domain alongside a profiled run.
    """
    events: List[Dict[str, Any]] = []
    seen_tids: Dict[int, str] = {}
    crit_windows = [(seg.start_seq, seg.end_seq) for seg in critical or ()]

    def on_path(lo: int, hi: int) -> bool:
        return any(lo < c_hi and c_lo < hi for c_lo, c_hi in crit_windows)

    for span in spans:
        if span.pid >= 0:
            seen_tids.setdefault(span.pid, span.pname)
        args = {
            "obj": span.obj,
            "outcome": span.outcome,
            "detail": span.detail,
            "start_time": span.start_time,
            "end_time": span.end_time,
        }
        if crit_windows and on_path(span.start_seq, span.end_seq):
            args["critical"] = True
        events.append({
            "name": "%s %s" % (span.kind, span.obj),
            "cat": _CATEGORIES.get(span.kind, span.kind),
            "ph": "X",
            "ts": span.start_seq,
            # Zero-length spans still need visible extent in the UI.
            "dur": max(span.duration, 1),
            "pid": 0,
            "tid": span.pid if span.pid >= 0 else 0,
            "args": args,
        })

    extra_tid = max([span.pid for span in spans if span.pid >= 0],
                    default=-1) + 1
    if trace is not None:
        extra_tid = max(extra_tid,
                        max((ev.pid for ev in trace), default=-1) + 1)
    if critical:
        crit_tid = extra_tid
        extra_tid += 1
        seen_tids.setdefault(crit_tid, "critical path")
        for seg in critical:
            events.append({
                "name": "%s %s" % (seg.kind, seg.obj or seg.pname),
                "cat": "critical",
                "ph": "X",
                "ts": seg.start_seq,
                "dur": max(seg.duration, 1),
                "pid": 0,
                "tid": crit_tid,
                "args": {
                    "pname": seg.pname,
                    "reason": seg.reason,
                    "constraint": seg.constraint,
                    "info_types": list(seg.info_types),
                },
            })

    if trace is not None:
        net_tid = extra_tid
        for ev in trace:
            if ev.kind in _NETWORK:
                # One shared track: a message's send/deliver/drop history
                # reads as a single lane, with the acting process kept in
                # args instead of scattering the story across threads.
                seen_tids.setdefault(net_tid, "network")
                events.append({
                    "name": "%s %s" % (ev.kind, ev.obj),
                    "cat": "network",
                    "ph": "i",
                    "s": "t",
                    "ts": ev.seq,
                    "pid": 0,
                    "tid": net_tid,
                    "args": {"detail": str(ev.detail), "pname": ev.pname},
                })
                continue
            if ev.kind not in _INSTANTS:
                continue
            if ev.pid >= 0:
                seen_tids.setdefault(ev.pid, ev.pname)
            events.append({
                "name": "%s %s" % (ev.kind, ev.obj),
                "cat": "instant",
                "ph": "i",
                "s": "t",
                "ts": ev.seq,
                "pid": 0,
                "tid": ev.pid if ev.pid >= 0 else 0,
                "args": {"detail": str(ev.detail)},
            })

    if harness is not None:
        harness_tid = extra_tid + 1  # past the (possibly unused) net lane
        seen_tids.setdefault(harness_tid, "harness")
        for t, runs, frontier, pruned in harness_counter_samples(harness):
            ts = int(round(t * 1_000_000))
            total = runs + pruned
            for counter, value in (
                ("schedules/sec", round(runs / t, 1) if t > 0 else 0),
                ("frontier depth", frontier),
                ("pruning ratio", round(pruned / total, 4) if total else 0),
            ):
                events.append({
                    "name": counter,
                    "cat": "harness",
                    "ph": "C",
                    "ts": ts,
                    "pid": 0,
                    "tid": harness_tid,
                    "args": {counter: value},
                })
        worker_tids: Dict[int, int] = {}
        for item in getattr(harness, "worker_items", ()):
            tid = worker_tids.get(item.worker)
            if tid is None:
                tid = harness_tid + 1 + len(worker_tids)
                worker_tids[item.worker] = tid
                seen_tids.setdefault(tid, "worker %d" % item.worker)
            events.append({
                "name": "schedule len=%d" % item.prefix_len,
                "cat": "harness",
                "ph": "X",
                "ts": int(round(item.start * 1_000_000)),
                "dur": max(int(round(item.busy * 1_000_000)), 1),
                "pid": 0,
                "tid": tid,
                "args": {
                    "queue_wait_us": int(round(item.queue_wait * 1_000_000)),
                    "result_bytes": item.result_bytes,
                    "prefix_len": item.prefix_len,
                },
            })

    metadata: List[Dict[str, Any]] = [{
        "name": "process_name",
        "ph": "M",
        "pid": 0,
        "args": {"name": run_label},
    }]
    for tid, pname in sorted(seen_tids.items()):
        metadata.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": pname},
        })
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "seq", "source": run_label},
    }


def harness_counter_samples(harness: Any):
    """The telemetry's ``(t, runs, frontier, pruned)`` counter samples,
    skipping the t=0 degenerates (no rate is computable there)."""
    for t, runs, frontier, pruned in getattr(harness, "samples", ()):
        if t <= 0:
            continue
        yield t, runs, frontier, pruned


def write_chrome_trace(
    path: str,
    spans: Sequence[Span],
    trace: Optional[Trace] = None,
    run_label: str = "repro",
    critical: Optional[Sequence] = None,
    harness: Optional[Any] = None,
) -> None:
    with open(path, "w") as fh:
        json.dump(chrome_trace(spans, trace, run_label, critical=critical,
                               harness=harness),
                  fh, indent=1)


def jsonl_lines(
    spans: Sequence[Span],
    trace: Optional[Trace] = None,
    harness: Optional[Any] = None,
) -> Iterable[str]:
    """One JSON record per line: spans first, then raw events, then (when
    ``harness`` is given) one ``counter`` record per telemetry sample."""
    for span in spans:
        record = span.to_dict()
        record["record"] = "span"
        yield json.dumps(record, default=str)
    if trace is not None:
        for ev in trace:
            record = ev.to_dict()
            record["record"] = "event"
            yield json.dumps(record, default=str)
    if harness is not None:
        for t, runs, frontier, pruned in harness_counter_samples(harness):
            total = runs + pruned
            yield json.dumps({
                "record": "counter",
                "t": round(t, 6),
                "runs": runs,
                "frontier": frontier,
                "pruned": pruned,
                "schedules_per_sec": round(runs / t, 1),
                "pruning_ratio": round(pruned / total, 4) if total else 0.0,
            })


def parse_jsonl(lines: Iterable[str], with_counters: bool = False):
    """Inverse of :func:`jsonl_lines`: rebuild ``(spans, events)`` — or
    ``(spans, events, counters)`` with ``with_counters=True``, where
    counters are the harness telemetry sample dicts (back-compat: the
    default stays a 2-tuple and silently drops counter records).

    Round-trips exactly for JSON-representable details; a detail that was
    stringified on export stays a string (the exporter's ``default=str``
    is lossy by design).
    """
    from ..runtime.trace import Event

    spans: List[Span] = []
    events: List[Event] = []
    counters: List[Dict[str, Any]] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        what = record.pop("record", "span")
        if what == "span":
            spans.append(Span.from_dict(record))
        elif what == "counter":
            counters.append(record)
        else:
            events.append(Event.from_dict(record))
    if with_counters:
        return spans, events, counters
    return spans, events


def write_jsonl(
    path: str,
    spans: Sequence[Span],
    trace: Optional[Trace] = None,
    harness: Optional[Any] = None,
) -> None:
    with open(path, "w") as fh:
        for line in jsonl_lines(spans, trace, harness=harness):
            fh.write(line + "\n")


# ----------------------------------------------------------------------
# ASCII views
# ----------------------------------------------------------------------
_GLYPHS = {"possession": "#", "blocked": ".", "queue": "~",
           "crowd": "=", "service": "#", "op_queue": "."}
#: which kinds share a lane, in paint order (later overpaints earlier).
_LANE_ORDER = ("op_queue", "queue", "blocked", "crowd",
               "service", "possession")


def ascii_timeline(spans: Sequence[Span], width: int = 72) -> str:
    """One lane per process: ``#`` held/serving, ``.`` blocked,
    ``~`` in queue, ``=`` in crowd, scaled onto ``width`` columns of the
    seq axis."""
    drawable = [s for s in spans if s.pid >= 0 and s.kind in _GLYPHS]
    if not drawable:
        return "(no spans)"
    lo = min(s.start_seq for s in drawable)
    hi = max(max(s.end_seq, s.start_seq + 1) for s in drawable)
    span_range = max(hi - lo, 1)

    def col(seq: int) -> int:
        return min(width - 1, (seq - lo) * width // span_range)

    order = {kind: rank for rank, kind in enumerate(_LANE_ORDER)}
    by_proc: Dict[int, List[Span]] = {}
    names: Dict[int, str] = {}
    for span in drawable:
        by_proc.setdefault(span.pid, []).append(span)
        names.setdefault(span.pid, span.pname)

    label_width = max(len(n) for n in names.values())
    lines = ["%s  seq %d..%d  (# held  . blocked  ~ queued  = crowd)"
             % (" " * label_width, lo, hi)]
    for pid in sorted(by_proc):
        lane = [" "] * width
        for span in sorted(by_proc[pid],
                           key=lambda s: order.get(s.kind, 0)):
            glyph = _GLYPHS[span.kind]
            start = col(span.start_seq)
            end = max(col(max(span.end_seq, span.start_seq + 1)), start + 1)
            for i in range(start, min(end, width)):
                lane[i] = glyph
            if span.outcome == "crashed" and end - 1 < width:
                lane[end - 1] = "X"
            elif span.outcome == "leaked" and end - 1 < width:
                lane[end - 1] = "?"
        lines.append("%-*s |%s|" % (label_width, names[pid], "".join(lane)))
    return "\n".join(lines)


def ascii_contention(totals: Dict[str, int], width: int = 40) -> str:
    """Horizontal bar chart of blocked time per object (seq units)."""
    if not totals:
        return "(no blocking observed)"
    label_width = max(len(name) for name in totals)
    peak = max(totals.values()) or 1
    lines = []
    for name, value in sorted(totals.items(), key=lambda kv: -kv[1]):
        bar = "#" * max(1 if value else 0, value * width // peak)
        lines.append("%-*s %6d %s" % (label_width, name, value, bar))
    return "\n".join(lines)
