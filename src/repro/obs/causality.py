"""Happens-before graphs derived from deterministic traces.

The trace layer records *instants*; the span layer (:mod:`repro.obs.spans`)
recovers *durations*; this module recovers **causality**: which event made
which other event possible.  Because every blocking construct in the library
funnels through exactly two scheduler services (``park`` / ``unpark``, see
:mod:`repro.runtime.scheduler`), every cross-process causal edge is visible
in the trace as an ``unblocked`` event attributed to the waker — a monitor
signal, a serializer grant, a semaphore V handoff, a channel send→receive
rendezvous, or a timer firing.  No extra instrumentation runs in the
scheduler hot path: the graph is computed post-hoc from the trace alone
(the E15 null-sink overhead bound is untouched).

Edge kinds
==========

========== ==================================================================
kind       meaning
========== ==================================================================
program    two consecutive events of the same process (program order)
wake       a process's ``unblocked`` event → the woken process's next event
           (signal delivery, monitor/serializer handoff, semaphore V,
           channel rendezvous — subclassified by the wait's *reason*)
timer      a virtual-time wakeup (sleep expiry) → the sleeper's next event
timeout    a timed ``park`` expired → the waiter's next event
delayed    a fault-plan-delayed wakeup; the causal waker is recovered from
           the ``wake_delayed`` event the original unpark logged
spawn      a ``spawn`` event → the child's next event
========== ==================================================================

Vector clocks (one component per process, plus one for the scheduler) are
stamped on every event in seq order: ``VC(e)`` is the component-wise max of
every predecessor's clock with ``e``'s own component incremented.  Two
events are *concurrent* exactly when neither clock dominates the other —
the standard logical-clock construction (Aspnes, arXiv:2001.04235).

Wait classification
===================

Every blocked interval is attributed to the paper's vocabulary: the
**constraint kind** it enforces (exclusion vs priority, §3) and the
**information types** (T1–T6, §4) the guarding decision consults.  The
classification keys off the park *reason* string the scheduler now records
as the ``blocked`` event's detail (``"enter(m)"``, ``"wait(buf.nonempty)"``,
``"P(s)"``...), so it works on re-imported traces too.  The mapping table
is documented in DESIGN.md §10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..runtime.trace import Event

#: Schema version of everything this module derives (bumped with the
#: edge/attribution vocabulary; persisted by the run store).
CAUSALITY_SCHEMA = 1


# ----------------------------------------------------------------------
# Wait classification (constraint kind + information types)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WaitClass:
    """Paper-vocabulary attribution of one kind of wait."""

    category: str
    constraint: str  # "exclusion" | "priority" | "time" | "unknown"
    info_types: Tuple[str, ...]


#: park-reason prefix -> attribution.  The reason is the first argument of
#: ``Scheduler.park`` (now logged as the blocked event's detail); prefixes
#: are matched up to the opening parenthesis.  See DESIGN.md §10 for the
#: rationale of each row.
WAIT_CLASSES: Dict[str, WaitClass] = {
    "enter": WaitClass("entry", "exclusion", ("T4",)),
    "urgent": WaitClass("signaler", "exclusion", ("T4",)),
    "rejoin": WaitClass("rejoin", "exclusion", ("T4",)),
    "lock": WaitClass("mutex", "exclusion", ("T4",)),
    "P": WaitClass("semaphore", "exclusion", ("T4",)),
    "region": WaitClass("region", "exclusion", ("T4", "T5")),
    "wait": WaitClass("condition", "priority", ("T5",)),
    "event": WaitClass("event", "priority", ("T5",)),
    "enqueue": WaitClass("queue", "priority", ("T2", "T4")),
    "send": WaitClass("channel", "priority", ("T1", "T5")),
    "recv": WaitClass("channel", "priority", ("T1", "T5")),
    "select": WaitClass("channel", "priority", ("T1", "T5")),
    "await": WaitClass("eventcount", "priority", ("T2", "T6")),
    "guard": WaitClass("guard", "priority", ("T1", "T6")),
    "sleep": WaitClass("timer", "time", ("T3",)),
}

_UNKNOWN = WaitClass("unknown", "unknown", ())


def classify_wait(reason: Optional[str]) -> WaitClass:
    """Map a park reason (``"wait(buf.nonempty)"``) to its attribution."""
    if not reason:
        return _UNKNOWN
    head = reason.split("(", 1)[0]
    return WAIT_CLASSES.get(head, _UNKNOWN)


# ----------------------------------------------------------------------
# Wake records: the cross-process causal skeleton
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Wake:
    """One resolved wait: a process's transition BLOCKED → READY.

    Attributes:
        seq: seq of the ``unblocked`` event.
        woken_pid: the process that became runnable.
        waker_pid: the process whose action delivered the wakeup (-1 when
            the scheduler's timer machinery did: sleeps and timeouts).
        blocked_seq: seq of the woken process's last own event before the
            wakeup — its ``blocked`` event for parks, its final action
            before suspending for sleeps.
        reason: the park reason (``"wait(buf.nonempty)"``), ``"sleep"`` for
            timer waits, or the wait label recovered from the blocked event.
        obj: the blocked event's object (the short construct name).
        kind: edge kind — ``wake`` | ``timer`` | ``timeout`` | ``delayed``.
    """

    seq: int
    woken_pid: int
    waker_pid: int
    blocked_seq: int
    reason: str
    obj: str
    kind: str


def _own_events(events: Iterable[Event]) -> Dict[int, List[Event]]:
    by_pid: Dict[int, List[Event]] = {}
    for ev in events:
        if ev.pid >= 0:
            by_pid.setdefault(ev.pid, []).append(ev)
    return by_pid


def _latest_before(own: List[Event], seq: int) -> Optional[Event]:
    """Latest event in ``own`` (seq-ordered) with ``.seq < seq``."""
    lo, hi = 0, len(own)
    while lo < hi:
        mid = (lo + hi) // 2
        if own[mid].seq < seq:
            lo = mid + 1
        else:
            hi = mid
    return own[lo - 1] if lo else None


def wake_records(events: List[Event]) -> List[Wake]:
    """Extract every resolved wait from a trace, in seq order.

    Every BLOCKED → READY transition logs exactly one ``unblocked`` event
    (obj = the woken process's name) attributed to the waker — or to the
    scheduler (pid -1) for timer-driven wakeups.  Fault-plan-delayed
    wakeups are re-attributed to the process that originally unparked,
    recovered from its ``wake_delayed`` event.
    """
    by_pid = _own_events(events)
    name_to_pid: Dict[str, int] = {}
    for ev in events:
        if ev.pid >= 0 and ev.pname not in name_to_pid:
            name_to_pid[ev.pname] = ev.pid
    #: (woken name, latest wake_delayed event) for delayed-wake recovery.
    delayed: Dict[str, Event] = {}
    wakes: List[Wake] = []
    for ev in events:
        if ev.kind == "wake_delayed":
            delayed[ev.obj] = ev
            continue
        if ev.kind != "unblocked":
            continue
        woken_pid = name_to_pid.get(ev.obj)
        if woken_pid is None:
            continue
        own = by_pid.get(woken_pid, [])
        prev = _latest_before(own, ev.seq)
        if prev is not None and prev.kind == "timeout":
            # A timed wait expired: the real park is one event further back.
            park = _latest_before(own, prev.seq)
            blocked_seq = park.seq if park is not None else prev.seq
            reason = (park.detail if park is not None
                      and isinstance(park.detail, str) else str(prev.obj))
            wakes.append(Wake(ev.seq, woken_pid, -1, blocked_seq,
                              reason or str(prev.obj), str(prev.obj),
                              "timeout"))
            continue
        if prev is None:
            continue
        if prev.kind == "blocked":
            blocked_seq = prev.seq
            reason = prev.detail if isinstance(prev.detail, str) else prev.obj
            obj = prev.obj
        else:
            # No park was logged: a sleep (virtual-time wait).
            blocked_seq = prev.seq
            reason = "sleep"
            obj = "timer"
        if ev.pid >= 0:
            kind, waker = "wake", ev.pid
        elif ev.detail == "timer":
            kind, waker = "timer", -1
        else:
            # Scheduler-delivered: a delayed wakeup if the original unpark
            # left a wake_delayed marker after the park, else a timer.
            marker = delayed.get(ev.obj)
            if marker is not None and marker.seq > blocked_seq:
                kind, waker = "delayed", marker.pid
            else:
                kind, waker = "timer", -1
        wakes.append(Wake(ev.seq, woken_pid, waker, blocked_seq,
                          reason, obj, kind))
    return wakes


# ----------------------------------------------------------------------
# The happens-before graph
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HBEdge:
    """One happens-before edge between two event seqs."""

    src: int
    dst: int
    kind: str
    label: str = ""


class HBGraph:
    """Vector-clock-stamped happens-before graph over a trace.

    Nodes are events (keyed by seq — the total order).  Edges are program
    order plus the cross-process skeleton from :func:`wake_records` and
    spawn delivery.  Clocks have one component per process plus one for
    the scheduler (index 0).
    """

    def __init__(
        self,
        events: List[Event],
        edges: List[HBEdge],
        clocks: Dict[int, Tuple[int, ...]],
        component_of: Dict[int, int],
    ) -> None:
        self.events = events
        self.edges = edges
        self.clocks = clocks
        self.component_of = component_of
        self._by_seq = {ev.seq: ev for ev in events}
        self._preds: Dict[int, List[HBEdge]] = {}
        self._succs: Dict[int, List[HBEdge]] = {}
        for edge in edges:
            self._preds.setdefault(edge.dst, []).append(edge)
            self._succs.setdefault(edge.src, []).append(edge)

    # ------------------------------------------------------------------
    def event(self, seq: int) -> Event:
        return self._by_seq[seq]

    def preds(self, seq: int) -> List[HBEdge]:
        return self._preds.get(seq, [])

    def succs(self, seq: int) -> List[HBEdge]:
        return self._succs.get(seq, [])

    def clock(self, seq: int) -> Tuple[int, ...]:
        return self.clocks[seq]

    def happens_before(self, a: int, b: int) -> bool:
        """True when event ``a`` causally precedes event ``b``
        (vector-clock dominance, strict)."""
        ca, cb = self.clocks[a], self.clocks[b]
        return ca != cb and all(x <= y for x, y in zip(ca, cb))

    def concurrent(self, a: int, b: int) -> bool:
        """True when neither event causally precedes the other."""
        return (a != b and not self.happens_before(a, b)
                and not self.happens_before(b, a))

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """JSON-ready shape facts (used by ``repro causal --json``)."""
        kinds: Dict[str, int] = {}
        for edge in self.edges:
            kinds[edge.kind] = kinds.get(edge.kind, 0) + 1
        return {
            "schema": CAUSALITY_SCHEMA,
            "events": len(self.events),
            "edges": len(self.edges),
            "edge_kinds": {k: kinds[k] for k in sorted(kinds)},
            "processes": len(self.component_of) - 1,
        }


def build_hb_graph(trace: Iterable[Event]) -> HBGraph:
    """Derive the happens-before graph (with vector clocks) from a trace."""
    events = list(trace)
    by_pid = _own_events(events)
    name_to_pid: Dict[str, int] = {}
    for ev in events:
        if ev.pid >= 0 and ev.pname not in name_to_pid:
            name_to_pid[ev.pname] = ev.pid

    edges: List[HBEdge] = []
    # Program order.
    for pid, own in sorted(by_pid.items()):
        for prev, nxt in zip(own, own[1:]):
            edges.append(HBEdge(prev.seq, nxt.seq, "program"))

    def next_own_after(pid: int, seq: int) -> Optional[Event]:
        own = by_pid.get(pid, [])
        lo, hi = 0, len(own)
        while lo < hi:
            mid = (lo + hi) // 2
            if own[mid].seq <= seq:
                lo = mid + 1
            else:
                hi = mid
        return own[lo] if lo < len(own) else None

    # Wakeups (the cross-process skeleton).
    for wake in wake_records(events):
        target = next_own_after(wake.woken_pid, wake.seq)
        if target is None:
            continue
        edges.append(HBEdge(wake.seq, target.seq, wake.kind, wake.reason))
    # Spawn delivery: the spawn event is attributed to the child itself
    # (its first own event), so program order already covers it; a spawn
    # performed *by* a running parent interleaves in the parent's program
    # order.  Nothing further to add — documented for graph readers.

    # Vector clocks: one component per process, component 0 = scheduler.
    component_of: Dict[int, int] = {-1: 0}
    for rank, pid in enumerate(sorted(by_pid), start=1):
        component_of[pid] = rank
    width = len(component_of)
    preds: Dict[int, List[HBEdge]] = {}
    for edge in edges:
        preds.setdefault(edge.dst, []).append(edge)
    clocks: Dict[int, Tuple[int, ...]] = {}
    for ev in events:  # seq order = a topological order (edges go forward)
        clock = [0] * width
        for edge in preds.get(ev.seq, []):
            other = clocks.get(edge.src)
            if other is not None:
                for i, value in enumerate(other):
                    if value > clock[i]:
                        clock[i] = value
        me = component_of.get(ev.pid, 0)
        clock[me] += 1
        clocks[ev.seq] = tuple(clock)
    return HBGraph(events, edges, clocks, component_of)
