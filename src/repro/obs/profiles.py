"""Profile runners: instrumented workload executions per (problem,
mechanism).

:func:`run_profile` builds an instrumented :class:`Scheduler` (a
:class:`~repro.obs.sink.RecordingSink` attached), injects it into the
problem's standard workload via the ``sched=`` parameter every run helper
accepts, and folds the resulting trace into spans and metrics — one call
yields everything the CLI ``profile`` / ``metrics`` commands print or
export.

The workload per problem is the same one the oracles and benchmarks use
(the registry's canonical shape), so profiles are directly comparable with
correctness results.  ``seed`` switches the scheduler to a seeded
:class:`~repro.runtime.policies.RandomPolicy` to profile a perturbed
interleaving; the default is the deterministic FIFO schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..problems import (
    alarm_clock,
    bounded_buffer,
    disk_scheduler,
    fcfs_resource,
    one_slot_buffer,
    staged_queue,
)
from ..problems import readers_writers as rw
from ..problems.registry import REGISTRY, get_solution, solutions_for
from ..runtime.policies import RandomPolicy, SchedulingPolicy
from ..runtime.scheduler import Scheduler
from ..runtime.trace import RunResult
from .metrics import RunMetrics, compute_metrics
from .sink import RecordingSink
from .spans import Span, blocked_time_by_object, fold_spans


def _run_bounded_buffer(factory, sched: Scheduler) -> RunResult:
    result, __, __ = bounded_buffer.run_producers_consumers(
        factory, producers=3, consumers=3, items_each=4, sched=sched)
    return result


def _run_one_slot(factory, sched: Scheduler) -> RunResult:
    result, __ = one_slot_buffer.run_ping_pong(
        factory, rounds=12, producers=3, consumers=3, sched=sched)
    return result


def _run_fcfs(factory, sched: Scheduler) -> RunResult:
    return fcfs_resource.run_contenders(
        factory, contenders=6, rounds=2, sched=sched)


def _run_rw(factory, sched: Scheduler) -> RunResult:
    return rw.run_workload(factory, rw.BURST_PLAN, sched=sched)


def _run_disk(factory, sched: Scheduler) -> RunResult:
    result, __ = disk_scheduler.run_requests(factory, sched=sched)
    return result


def _run_alarm(factory, sched: Scheduler) -> RunResult:
    result, __ = alarm_clock.run_sleepers(factory, sched=sched)
    return result


def _run_staged(factory, sched: Scheduler) -> RunResult:
    return staged_queue.run_classes(factory, sched=sched)


#: problem name -> runner(factory, sched) -> RunResult.  Readers/writers
#: problems share one workload shape.
WORKLOADS: Dict[str, Callable[[Any, Scheduler], RunResult]] = {
    "bounded_buffer": _run_bounded_buffer,
    "one_slot_buffer": _run_one_slot,
    "fcfs_resource": _run_fcfs,
    "readers_priority": _run_rw,
    "writers_priority": _run_rw,
    "rw_fcfs": _run_rw,
    "disk_scheduler": _run_disk,
    "alarm_clock": _run_alarm,
    "staged_queue": _run_staged,
}


@dataclass
class ProfileReport:
    """Everything one instrumented run produced."""

    problem: str
    mechanism: str
    result: RunResult
    spans: List[Span]
    metrics: RunMetrics
    sink: RecordingSink
    seed: Optional[int] = None

    @property
    def blocked_by_object(self) -> Dict[str, int]:
        return blocked_time_by_object(self.spans)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "problem": self.problem,
            "mechanism": self.mechanism,
            "seed": self.seed,
            "metrics": self.metrics.to_dict(),
            "spans": [span.to_dict() for span in self.spans],
        }


def profileable() -> List[str]:
    """``problem/mechanism`` labels with both a registry entry and a
    workload runner."""
    return [
        "{}/{}".format(entry.problem, entry.mechanism)
        for entry in sorted(REGISTRY.values(), key=lambda e: e.key)
        if entry.problem in WORKLOADS
    ]


def run_profile(
    problem: str,
    mechanism: str,
    seed: Optional[int] = None,
    policy: Optional[SchedulingPolicy] = None,
    fault_plan=None,
) -> ProfileReport:
    """Run the canonical workload for ``(problem, mechanism)`` under full
    instrumentation; raises ``KeyError`` for unknown pairs.

    ``fault_plan`` injects a :class:`~repro.runtime.faults.FaultPlan` into
    the instrumented scheduler — how ``repro regress --inject-delay``
    manufactures a synthetic slowdown to prove the gate trips.
    """
    entry = get_solution(problem, mechanism)
    runner = WORKLOADS.get(problem)
    if runner is None:
        raise KeyError("no profiling workload for problem {!r}".format(problem))
    if policy is None and seed is not None:
        policy = RandomPolicy(seed)
    sink = RecordingSink()
    sched = Scheduler(policy=policy, sink=sink, fault_plan=fault_plan)
    result = runner(entry.factory, sched)
    spans = fold_spans(result.trace)
    metrics = compute_metrics(result, spans, sink)
    return ProfileReport(
        problem=problem,
        mechanism=mechanism,
        result=result,
        spans=spans,
        metrics=metrics,
        sink=sink,
        seed=seed,
    )


@dataclass
class CausalReport:
    """One causally-analysed run: the profile plus its happens-before
    critical path and the durable record the run store persists."""

    profile: ProfileReport
    path: Any  # CriticalPathReport
    record: Any  # RunRecord

    def to_dict(self) -> Dict[str, Any]:
        return {
            "problem": self.profile.problem,
            "mechanism": self.profile.mechanism,
            "seed": self.profile.seed,
            "critical_path": self.path.to_dict(),
            "record": self.record.to_dict(),
        }


def run_causal(
    problem: str,
    mechanism: str,
    seed: Optional[int] = None,
    fault_plan=None,
) -> CausalReport:
    """Profile one pair and derive its critical path + run record."""
    from .critical_path import compute_critical_path
    from .runstore import RunRecord

    profile = run_profile(problem, mechanism, seed=seed,
                          fault_plan=fault_plan)
    path = compute_critical_path(profile.result.trace)
    record = RunRecord.from_report(problem, mechanism, path,
                                   metrics=profile.metrics, seed=seed)
    return CausalReport(profile=profile, path=path, record=record)


def metrics_suite(
    problem: Optional[str] = None,
    mechanism: Optional[str] = None,
    seed: Optional[int] = None,
) -> List[ProfileReport]:
    """Profile every registered (problem, mechanism) pair matching the
    filters — the cross-mechanism comparison ``python -m repro metrics``
    tabulates."""
    reports = []
    for entry in solutions_for(problem, mechanism):
        if entry.problem not in WORKLOADS:
            continue
        reports.append(run_profile(entry.problem, entry.mechanism, seed=seed))
    return reports


def comparison_table(reports: List[ProfileReport]) -> str:
    """One row per profiled pair: the headline counters side by side."""
    if not reports:
        return "(nothing profiled)"
    lines = [
        "%-18s %-12s %6s %7s %7s %6s %7s %6s"
        % ("problem", "mechanism", "steps", "switch", "events",
           "blkd", "handoff", "maxQ"),
    ]
    for report in reports:
        m = report.metrics
        blocked_total = sum(report.blocked_by_object.values())
        max_queue = max(
            (om.max_queue_depth for om in m.objects.values()), default=0)
        lines.append(
            "%-18s %-12s %6d %7d %7d %6d %7d %6d"
            % (report.problem[:18], report.mechanism[:12], m.steps,
               m.context_switches, m.events, blocked_total, m.handoffs,
               max_queue))
    return "\n".join(lines)
