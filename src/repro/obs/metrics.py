"""Metrics: counters, gauges, and histograms computed from a run.

:func:`compute_metrics` folds a :class:`~repro.runtime.trace.RunResult`
(plus the spans from :mod:`repro.obs.spans` and, when available, the live
counters of a :class:`~repro.obs.sink.MetricsSink`) into a
:class:`RunMetrics` report:

* **run counters** — scheduling steps, context switches, trace events,
  handoffs, kills, timeouts;
* **per-object metrics** — acquisitions, total blocked time, wait-time
  percentiles (p50/p90/max), max queue depth, and the contention ratio
  (fraction of acquisitions that had to wait);
* **per-operation latency** — queue (request → start) and service
  (start → end) histograms keyed by ``"<resource>.<op>"``.

All durations are on the ``seq`` axis — the total event order is the
meaningful clock in this discrete-event runtime (virtual time only advances
at timer jumps).  Reports are comparable across mechanisms on the same
problem workload, which is what ``python -m repro metrics`` tabulates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from ..runtime.trace import RunResult
from .sink import MetricsSink
from .spans import Span, max_concurrent


class Histogram:
    """A tiny exact-values histogram: stores observations, answers
    percentile queries.  Workloads here are small (hundreds of events), so
    exactness beats bucketing."""

    def __init__(self) -> None:
        self.values: List[int] = []

    def observe(self, value: int) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> int:
        return sum(self.values)

    @property
    def max(self) -> int:
        return max(self.values) if self.values else 0

    def percentile(self, q: float) -> int:
        """Nearest-rank percentile (q in [0, 100])."""
        if not self.values:
            return 0
        ordered = sorted(self.values)
        rank = max(0, min(len(ordered) - 1,
                          int(round(q / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    def to_dict(self) -> Dict[str, int]:
        return {
            "count": self.count,
            "total": self.total,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "max": self.max,
        }


@dataclass
class ObjectMetrics:
    """Contention metrics for one synchronization object (monitor,
    serializer queue, semaphore, region, channel...)."""

    obj: str
    acquisitions: int = 0
    contended: int = 0
    blocked_total: int = 0
    max_queue_depth: int = 0
    wait: Histogram = field(default_factory=Histogram)
    hold: Histogram = field(default_factory=Histogram)
    #: queue-residency durations (wait → proceed/signal) — kept separate
    #: from ``wait``: a condition wait logs both a blocked interval and a
    #: queue interval on the same object, and summing them double-counts.
    residency: Histogram = field(default_factory=Histogram)

    @property
    def contention_ratio(self) -> float:
        """Fraction of acquisitions that had to block first."""
        if self.acquisitions == 0:
            # Pure wait points (conditions, eventcounts) have no
            # acquisitions; report contention as 1.0 if anyone waited.
            return 1.0 if self.contended else 0.0
        return self.contended / self.acquisitions

    def to_dict(self) -> Dict[str, Any]:
        return {
            "obj": self.obj,
            "acquisitions": self.acquisitions,
            "contended": self.contended,
            "contention_ratio": round(self.contention_ratio, 4),
            "blocked_total": self.blocked_total,
            "max_queue_depth": self.max_queue_depth,
            "wait": self.wait.to_dict(),
            "hold": self.hold.to_dict(),
            "residency": self.residency.to_dict(),
        }


@dataclass
class RunMetrics:
    """The full metrics report for one run."""

    steps: int = 0
    context_switches: int = 0
    events: int = 0
    handoffs: int = 0
    kills: int = 0
    timeouts: int = 0
    deadlocked: bool = False
    kind_counts: Dict[str, int] = field(default_factory=dict)
    objects: Dict[str, ObjectMetrics] = field(default_factory=dict)
    operations: Dict[str, Dict[str, Histogram]] = field(default_factory=dict)
    #: message-overhead counters from ``dist.Network.stats()`` when the run
    #: carried a network (``RunResult.network_stats``); empty otherwise.
    network: Dict[str, Any] = field(default_factory=dict)

    def object_metrics(self, obj: str) -> ObjectMetrics:
        metrics = self.objects.get(obj)
        if metrics is None:
            metrics = self.objects[obj] = ObjectMetrics(obj)
        return metrics

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "steps": self.steps,
            "context_switches": self.context_switches,
            "events": self.events,
            "handoffs": self.handoffs,
            "kills": self.kills,
            "timeouts": self.timeouts,
            "deadlocked": self.deadlocked,
            "kind_counts": dict(self.kind_counts),
            "objects": {
                name: m.to_dict() for name, m in sorted(self.objects.items())
            },
            "operations": {
                op: {half: h.to_dict() for half, h in halves.items()}
                for op, halves in sorted(self.operations.items())
            },
            "network": dict(self.network),
        }

    def render(self) -> str:
        """Human-readable report."""
        lines = [
            "run: steps=%d switches=%d events=%d handoffs=%d "
            "kills=%d timeouts=%d%s"
            % (self.steps, self.context_switches, self.events, self.handoffs,
               self.kills, self.timeouts,
               " DEADLOCK" if self.deadlocked else ""),
        ]
        if self.objects:
            lines.append("")
            lines.append("  %-28s %5s %5s %6s %6s %6s %6s %5s"
                         % ("object", "acq", "cont", "ratio",
                            "blkd", "w-p50", "w-p90", "maxQ"))
            for name in sorted(self.objects):
                m = self.objects[name]
                lines.append(
                    "  %-28s %5d %5d %6.2f %6d %6d %6d %5d"
                    % (name[:28], m.acquisitions, m.contended,
                       m.contention_ratio, m.blocked_total,
                       m.wait.percentile(50), m.wait.percentile(90),
                       m.max_queue_depth))
        if self.network:
            peaks = self.network.get("inbox_peak") or {}
            lines.append(
                "net: sent=%d delivered=%d dropped=%d dup=%d delayed=%d%s"
                % (self.network.get("sent", 0),
                   self.network.get("delivered", 0),
                   self.network.get("dropped", 0),
                   self.network.get("duplicated", 0),
                   self.network.get("delayed", 0),
                   " peak-inbox=%d" % max(peaks.values()) if peaks else ""))
        if self.operations:
            lines.append("")
            lines.append("  %-28s %5s %6s %6s %6s %6s"
                         % ("operation", "n", "q-p50", "q-max",
                            "s-p50", "s-max"))
            for op in sorted(self.operations):
                halves = self.operations[op]
                queue = halves.get("queue", Histogram())
                service = halves.get("service", Histogram())
                lines.append(
                    "  %-28s %5d %6d %6d %6d %6d"
                    % (op[:28], service.count or queue.count,
                       queue.percentile(50), queue.max,
                       service.percentile(50), service.max))
        return "\n".join(lines)


def compute_metrics(
    result: RunResult,
    spans: Iterable[Span],
    sink: Optional[MetricsSink] = None,
) -> RunMetrics:
    """Aggregate a run into :class:`RunMetrics`.

    With a live ``sink``, step/switch counts and probed max queue depths are
    exact; without one (e.g. analysing a re-imported trace) they are derived
    from the trace and the blocked-span sweep, which under-counts steps but
    keeps every contention metric intact.
    """
    metrics = RunMetrics(deadlocked=result.deadlocked)
    span_list = list(spans)

    # --- message overhead (runs that carried a dist.Network) ------------
    net_stats = getattr(result, "network_stats", None)
    if net_stats:
        metrics.network = dict(net_stats)

    # --- run counters ---------------------------------------------------
    for ev in result.trace:
        metrics.events += 1
        metrics.kind_counts[ev.kind] = metrics.kind_counts.get(ev.kind, 0) + 1
        if isinstance(ev.detail, str) and "handoff" in ev.detail:
            metrics.handoffs += 1
    metrics.kills = metrics.kind_counts.get("killed", 0)
    metrics.timeouts = metrics.kind_counts.get("timeout", 0)
    if sink is not None:
        metrics.steps = sink.steps
        metrics.context_switches = sink.context_switches
    else:
        metrics.steps = result.steps
        # Without dispatch samples, each unblock is a switch lower bound.
        metrics.context_switches = metrics.kind_counts.get("unblocked", 0)

    # --- per-object contention from spans -------------------------------
    for span in span_list:
        if span.kind == "blocked":
            m = metrics.object_metrics(span.obj)
            m.contended += 1
            m.blocked_total += span.duration
            m.wait.observe(span.duration)
        elif span.kind == "possession":
            m = metrics.object_metrics(span.obj)
            # Count an acquisition once per (proc, obj, first segment);
            # resumed segments are the same logical acquisition.
            if span.detail != "resumed":
                m.acquisitions += 1
            m.hold.observe(span.duration)
        elif span.kind == "queue":
            metrics.object_metrics(span.obj).residency.observe(span.duration)
        elif span.kind == "op_queue":
            halves = metrics.operations.setdefault(
                span.obj, {"queue": Histogram(), "service": Histogram()})
            halves["queue"].observe(span.duration)
        elif span.kind == "service":
            halves = metrics.operations.setdefault(
                span.obj, {"queue": Histogram(), "service": Histogram()})
            halves["service"].observe(span.duration)

    # --- queue depth: probed gauges beat the span sweep -----------------
    depth_from_spans = max_concurrent(span_list, "blocked")
    for name, peak in depth_from_spans.items():
        metrics.object_metrics(name).max_queue_depth = peak
    if sink is not None:
        for name, peak in sink.max_depth.items():
            m = metrics.object_metrics(name)
            m.max_queue_depth = max(m.max_queue_depth, peak)
    return metrics
