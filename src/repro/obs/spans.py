"""Span folding: turn a flat :class:`~repro.runtime.trace.Trace` into
intervals.

The trace records *instants* (``blocked``, ``enter``, ``op_start``...); most
questions about behaviour are about *durations* — how long was P blocked on
the condition, who occupied the monitor between seq 40 and 55, how long did
a request sit in the serializer queue.  :func:`fold_spans` reconstructs those
intervals from the uniform event vocabulary alone, so it works on any trace:
a live run, a JSON re-import, or the hand-written sequences in the golden
tests.

Span kinds produced:

========== ===================================================================
kind       meaning
========== ===================================================================
blocked    the process was parked (obj = what it waited on)
possession it held a monitor / serializer / region / mutex (obj = the label);
           a possession suspended by ``wait`` / ``join_crowd`` / a Hoare
           signal and later resumed yields one span per held segment
queue      residency in a named waiter queue: serializer ``enqueue`` from
           ``wait`` to ``proceed``, monitor condition from ``wait`` to its
           ``signal`` — this can exceed the blocked interval (e.g. a
           guarantee that is already true) or end before the wakeup
crowd      serializer crowd membership (resource in use, T4 occupancy)
op_queue   operation latency, request half: ``request`` → ``op_start``
service    operation latency, service half: ``op_start`` → ``op_end``
========== ===================================================================

Outcomes: ``ok`` (closed normally), ``timeout`` (closed by a timed wait
expiring), ``crashed`` (the process was killed / the op aborted while the
span was open — a crash must close spans, never leak them), ``leaked``
(still open when the trace ended: a genuine diagnostic, e.g. a deadlocked
waiter).

Possession bookkeeping follows each mechanism's transfer semantics: a
monitor ``wait`` or serializer ``enqueue``/``join_crowd`` *suspends* the
caller's possession (recording what it is suspended on), and the possession
resumes at the matching ``signal`` handoff / ``proceed`` / ``leave_crowd`` /
wakeup — so a process that blocks on something unrelated while inside a
crowd does not spuriously reclaim possession.

The seq axis is the span clock: virtual time only advances at timer jumps,
so ``seq`` (the total event order) is the meaningful interval measure; both
are recorded on every span.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..runtime.trace import Event

#: possession-opening kinds and their closing counterparts.
_POSSESS_OPEN = {"enter": "leave", "acquire": "release"}


@dataclass
class Span:
    """One reconstructed interval (see module docstring for kinds)."""

    kind: str
    pid: int
    pname: str
    obj: str
    start_seq: int
    end_seq: int = -1
    start_time: int = 0
    end_time: int = 0
    outcome: str = "ok"
    detail: str = ""

    @property
    def duration(self) -> int:
        """Span length on the seq axis (the meaningful clock; see module
        docstring)."""
        return self.end_seq - self.start_seq

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "pid": self.pid,
            "pname": self.pname,
            "obj": self.obj,
            "start_seq": self.start_seq,
            "end_seq": self.end_seq,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "duration": self.duration,
            "outcome": self.outcome,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        """Rebuild a span from :meth:`to_dict` output (JSONL re-import);
        ``duration`` is derived, not stored."""
        return cls(
            kind=data["kind"],
            pid=data["pid"],
            pname=data["pname"],
            obj=data["obj"],
            start_seq=data["start_seq"],
            end_seq=data["end_seq"],
            start_time=data.get("start_time", 0),
            end_time=data.get("end_time", 0),
            outcome=data.get("outcome", "ok"),
            detail=data.get("detail", ""),
        )


@dataclass
class _Possession:
    span: Span
    #: what the holder is waiting on while possession is released
    #: (condition / queue / crowd / the construct itself), or ``None``
    #: while actually held.
    suspended_on: Optional[str] = None


class _ProcState:
    """Per-process folding state."""

    def __init__(self) -> None:
        self.blocked: Optional[Span] = None
        self.queue: Optional[Span] = None
        #: stack of possessions, innermost last.
        self.possessions: List[_Possession] = []
        #: open crowd spans by crowd name.
        self.crowds: Dict[str, Span] = {}
        #: open operation spans by "<res>.<op>", FIFO per object.
        self.op_queue: Dict[str, List[Span]] = {}
        self.service: Dict[str, List[Span]] = {}


def fold_spans(trace: Iterable[Event]) -> List[Span]:
    """Fold a trace (or any event iterable, e.g. a golden test's hand-written
    list) into closed :class:`Span` intervals, ordered by ``start_seq``."""
    spans: List[Span] = []
    procs: Dict[str, _ProcState] = {}
    #: cross-process FIFO of open op_queue spans per operation object — a
    #: request may be *served* by another process (CSP server, channel
    #: rendezvous), so request→op_start matching cannot be per-process.
    op_pending: Dict[str, List[Span]] = {}
    last_seq = 0
    last_time = 0

    def state_of(name: str, pid: int = -1) -> _ProcState:
        return procs.setdefault(name, _ProcState())

    def close(span: Span, ev: Event, outcome: str = "ok",
              detail: str = "") -> None:
        span.end_seq = ev.seq
        span.end_time = ev.time
        if outcome != "ok":
            span.outcome = outcome
        if detail:
            span.detail = (span.detail + " " + detail).strip()
        spans.append(span)

    def suspend_top(st: _ProcState, ev: Event, waiting_on: str) -> None:
        """Close the innermost held possession segment; remember what it
        is suspended on so only the matching handback resumes it."""
        if not st.possessions or st.possessions[-1].suspended_on is not None:
            return
        top = st.possessions[-1]
        close(top.span, ev, detail="suspended")
        top.span = Span(
            "possession", top.span.pid, top.span.pname, top.span.obj,
            ev.seq, start_time=ev.time, detail="resumed",
        )
        top.suspended_on = waiting_on

    def resume_top(st: _ProcState, ev: Event, waiting_on: str) -> None:
        """Re-open the innermost suspended possession if it was suspended on
        ``waiting_on``."""
        if not st.possessions:
            return
        top = st.possessions[-1]
        if top.suspended_on != waiting_on:
            return
        top.suspended_on = None
        top.span.start_seq = ev.seq
        top.span.start_time = ev.time

    for ev in trace:
        last_seq = max(last_seq, ev.seq)
        last_time = max(last_time, ev.time)
        kind = ev.kind

        if kind == "blocked":
            st = state_of(ev.pname)
            st.blocked = Span("blocked", ev.pid, ev.pname, ev.obj,
                              ev.seq, start_time=ev.time)
            # A Hoare signaller parking on the urgent stack waits on the very
            # object it possesses: suspend that possession.
            if (st.possessions
                    and st.possessions[-1].suspended_on is None
                    and st.possessions[-1].span.obj == ev.obj):
                suspend_top(st, ev, ev.obj)

        elif kind == "unblocked":
            # Logged with obj = the woken process's name (the waker or the
            # timer attributes the event; the *woken* process is ev.obj).
            target = procs.get(ev.obj)
            if target is not None and target.blocked is not None:
                waited_on = target.blocked.obj
                close(target.blocked, ev)
                target.blocked = None
                # The wakeup hands a suspended possession back when the park
                # was on the thing the possession is suspended on (monitor
                # urgent / Mesa re-entry / condition timeout re-entry /
                # serializer queue grant).
                resume_top(target, ev, waited_on)

        elif kind == "timeout":
            st = state_of(ev.pname)
            if st.blocked is not None:
                st.blocked.outcome = "timeout"
            if st.queue is not None:
                close(st.queue, ev, outcome="timeout")
                st.queue = None

        elif kind == "wait":
            # Monitor condition wait or serializer enqueue: possession is
            # released until the construct hands it back; queue residency
            # starts now.
            st = state_of(ev.pname)
            suspend_top(st, ev, ev.obj)
            st.queue = Span("queue", ev.pid, ev.pname, ev.obj,
                            ev.seq, start_time=ev.time)

        elif kind == "proceed":
            st = state_of(ev.pname)
            if st.queue is not None and st.queue.obj == ev.obj:
                close(st.queue, ev)
                st.queue = None
            # Immediate grant ("proceed immediate"): possession came back
            # without a park, so no "unblocked" will resume it.
            resume_top(st, ev, ev.obj)

        elif kind == "signal":
            # Hoare handoff: possession and queue residency of the signalled
            # process transfer at signal time.
            detail = ev.detail if isinstance(ev.detail, str) else ""
            if detail.startswith("wake:"):
                woken = procs.get(detail[len("wake:"):])
                if woken is not None:
                    if (woken.queue is not None
                            and woken.queue.obj == ev.obj):
                        close(woken.queue, ev)
                        woken.queue = None
                    resume_top(woken, ev, ev.obj)

        elif kind in _POSSESS_OPEN:
            st = state_of(ev.pname)
            st.possessions.append(_Possession(Span(
                "possession", ev.pid, ev.pname, ev.obj,
                ev.seq, start_time=ev.time,
            )))

        elif kind in ("leave", "release"):
            st = state_of(ev.pname)
            crashed = isinstance(ev.detail, str) and "crash" in ev.detail
            for index in range(len(st.possessions) - 1, -1, -1):
                possession = st.possessions[index]
                if possession.span.obj == ev.obj:
                    del st.possessions[index]
                    if possession.suspended_on is None:
                        close(possession.span, ev,
                              outcome="crashed" if crashed else "ok")
                    break

        elif kind == "join_crowd":
            st = state_of(ev.pname)
            suspend_top(st, ev, ev.obj)
            st.crowds[ev.obj] = Span("crowd", ev.pid, ev.pname, ev.obj,
                                     ev.seq, start_time=ev.time)

        elif kind == "leave_crowd":
            st = state_of(ev.pname)
            crashed = isinstance(ev.detail, str) and "crash" in ev.detail
            crowd = st.crowds.pop(ev.obj, None)
            if crowd is not None:
                close(crowd, ev, outcome="crashed" if crashed else "ok")
            if not crashed:
                # leave_crowd logs after possession was re-acquired; resume
                # covers the synchronous-grant path (the parked path already
                # resumed at its "unblocked").
                resume_top(st, ev, ev.obj)

        elif kind == "request":
            st = state_of(ev.pname)
            span = Span("op_queue", ev.pid, ev.pname, ev.obj,
                        ev.seq, start_time=ev.time)
            st.op_queue.setdefault(ev.obj, []).append(span)
            op_pending.setdefault(ev.obj, []).append(span)

        elif kind == "op_start":
            st = state_of(ev.pname)
            own = st.op_queue.get(ev.obj)
            if own:
                close(own.pop(0), ev)
            else:
                # Cross-process service (a CSP server executing a client's
                # request): close the oldest still-open request.  Spans a
                # kill already closed stay in the FIFO with end_seq set;
                # skip them.
                fifo = op_pending.get(ev.obj, [])
                while fifo:
                    span = fifo.pop(0)
                    if span.end_seq == -1:
                        close(span, ev)
                        procs[span.pname].op_queue[ev.obj].remove(span)
                        break
            st.service.setdefault(ev.obj, []).append(Span(
                "service", ev.pid, ev.pname, ev.obj,
                ev.seq, start_time=ev.time,
            ))

        elif kind in ("op_end", "op_abort"):
            st = state_of(ev.pname)
            running = st.service.get(ev.obj)
            if running:
                close(running.pop(0), ev,
                      outcome="crashed" if kind == "op_abort" else "ok")

        elif kind in ("killed", "failed"):
            # kill/failure events carry the victim's name in obj; close every
            # open span of the victim with the crashed marker, never leak.
            victim = procs.get(ev.obj)
            if victim is not None:
                _close_all(victim, ev, spans, outcome="crashed")

    # End of trace: anything still open leaked (deadlocked waiters, daemons
    # parked forever) — closed at the final seq so exporters can draw them.
    end = Event(last_seq, last_time, -1, "<end>", "end")
    for st in procs.values():
        _close_all(st, end, spans, outcome="leaked")
    spans.sort(key=lambda s: (s.start_seq, s.end_seq, s.pid))
    return spans


def _close_all(st: _ProcState, ev: Event, spans: List[Span],
               outcome: str) -> None:
    """Close every open span of one process with the given outcome."""

    def close(span: Span) -> None:
        span.end_seq = ev.seq
        span.end_time = ev.time
        span.outcome = outcome
        spans.append(span)

    if st.blocked is not None:
        close(st.blocked)
        st.blocked = None
    if st.queue is not None:
        close(st.queue)
        st.queue = None
    while st.possessions:
        possession = st.possessions.pop()
        if possession.suspended_on is None:
            close(possession.span)
    for crowd in st.crowds.values():
        close(crowd)
    st.crowds.clear()
    for pending in st.op_queue.values():
        while pending:
            close(pending.pop(0))
    for running in st.service.values():
        while running:
            close(running.pop(0))


# ----------------------------------------------------------------------
# Queries over folded spans
# ----------------------------------------------------------------------
def spans_by_kind(spans: Iterable[Span]) -> Dict[str, List[Span]]:
    """Group spans by kind."""
    grouped: Dict[str, List[Span]] = {}
    for span in spans:
        grouped.setdefault(span.kind, []).append(span)
    return grouped


def blocked_time_by_object(spans: Iterable[Span]) -> Dict[str, int]:
    """Total blocked duration (seq units) per waited-on object."""
    totals: Dict[str, int] = {}
    for span in spans:
        if span.kind == "blocked":
            totals[span.obj] = totals.get(span.obj, 0) + span.duration
    return totals


def max_concurrent(spans: Iterable[Span], kind: str,
                   obj: Optional[str] = None) -> Dict[str, int]:
    """Per object: the maximum number of simultaneously open spans of
    ``kind`` — e.g. ``kind="blocked"`` gives the deepest wait queue each
    object ever accumulated (a sweep over span endpoints)."""
    edges: Dict[str, List[Tuple[int, int]]] = {}
    for span in spans:
        if span.kind != kind or (obj is not None and span.obj != obj):
            continue
        edges.setdefault(span.obj, []).append((span.start_seq, 1))
        edges.setdefault(span.obj, []).append((span.end_seq, -1))
    peaks: Dict[str, int] = {}
    for name, points in edges.items():
        depth = peak = 0
        # Close (-1) before open (+1) at the same seq: handoff, not overlap.
        for __, delta in sorted(points, key=lambda p: (p[0], p[1])):
            depth += delta
            peak = max(peak, depth)
        peaks[name] = peak
    return peaks
