"""Critical-path extraction and what-if (virtual-speedup) analysis.

Given a trace, :func:`compute_critical_path` walks **backward** from the
last event, following the waker chain :mod:`repro.obs.causality` recovers:

* while the cursor process was *running*, the elapsed ticks are a ``run``
  segment on the path;
* when the cursor process had been *woken* from a wait, the whole blocked
  window becomes a ``blocked`` segment attributed to the wait's constraint
  kind (exclusion vs priority) and information types (T1–T6, DESIGN.md §8
  and §10), and the walk jumps to the **waker** at the moment the wait
  began — "before P could proceed, it waited on X; X was released by W;
  before that, W was ...";
* timer waits (sleeps, timed-park expiries) become ``timer`` segments —
  virtual time itself was the cause;
* ticks before the cursor process's first event are a ``startup`` segment.

The segments tile the makespan exactly — every tick of ``[first_seq,
last_seq]`` belongs to exactly one segment — which is the conservation
property the tests assert: **critical-path tick totals plus off-path slack
equal the makespan** (slack is computed independently by interval
subtraction and is zero when the walk is sound).  All durations are on the
``seq`` axis, the meaningful clock of this discrete-event runtime.

What-if speedups are causal-profiling style upper-bound estimates: "if
``nonempty`` were signalled ``d`` ticks earlier each time it appears on
the path, the makespan would drop by at most ``sum(min(d, wait))``."

Everything here is computed post-hoc from the trace — nothing runs in the
scheduler hot path, so the E15 null-sink overhead bound is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..runtime.trace import Event, RunResult
from .causality import Wake, classify_wait, wake_records, CAUSALITY_SCHEMA


@dataclass(frozen=True)
class Segment:
    """One critical-path interval (see module docstring for kinds)."""

    start_seq: int
    end_seq: int
    pid: int
    pname: str
    kind: str  # "run" | "blocked" | "timer" | "startup"
    obj: str = ""
    reason: str = ""
    constraint: str = ""
    info_types: Tuple[str, ...] = ()

    @property
    def duration(self) -> int:
        return self.end_seq - self.start_seq

    def to_dict(self) -> Dict[str, object]:
        return {
            "start_seq": self.start_seq,
            "end_seq": self.end_seq,
            "duration": self.duration,
            "pid": self.pid,
            "pname": self.pname,
            "kind": self.kind,
            "obj": self.obj,
            "reason": self.reason,
            "constraint": self.constraint,
            "info_types": list(self.info_types),
        }


@dataclass
class CriticalPathReport:
    """The extracted path plus every derived attribution."""

    segments: List[Segment]  # forward (seq) order
    start_seq: int
    end_seq: int

    @property
    def makespan(self) -> int:
        return self.end_seq - self.start_seq

    @property
    def path_ticks(self) -> int:
        return sum(seg.duration for seg in self.segments)

    @property
    def slack(self) -> int:
        """Ticks of the makespan *not* covered by any path segment,
        computed independently by interval union — the conservation
        counterweight (zero when the walk is sound)."""
        covered = 0
        cursor = self.start_seq
        for seg in sorted(self.segments, key=lambda s: s.start_seq):
            lo = max(seg.start_seq, cursor)
            hi = max(seg.end_seq, cursor)
            covered += hi - lo
            cursor = max(cursor, seg.end_seq)
        return self.makespan - covered

    # ------------------------------------------------------------------
    # Attribution
    # ------------------------------------------------------------------
    def ticks_by(self, key) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for seg in self.segments:
            name = key(seg)
            if name is None:
                continue
            totals[name] = totals.get(name, 0) + seg.duration
        return totals

    def constraint_ticks(self) -> Dict[str, int]:
        """Path ticks per constraint kind; running time under ``"run"``."""
        return self.ticks_by(
            lambda seg: seg.constraint if seg.kind in ("blocked", "timer")
            else seg.kind)

    def info_type_ticks(self) -> Dict[str, int]:
        """Blocked path ticks per information type (a wait consulting two
        types counts toward both — shares, not a partition)."""
        totals: Dict[str, int] = {}
        for seg in self.segments:
            for t in seg.info_types:
                totals[t] = totals.get(t, 0) + seg.duration
        return totals

    def blocked_ticks_by_object(self) -> Dict[str, int]:
        return self.ticks_by(
            lambda seg: seg.obj if seg.kind in ("blocked", "timer") else None)

    def per_process(self) -> Dict[str, Dict[str, int]]:
        """Per process: on-path ticks and off-path slack
        (``on_path + slack == makespan`` for every process)."""
        on_path: Dict[str, int] = {}
        for seg in self.segments:
            name = seg.pname if seg.pid >= 0 else "<sched>"
            on_path[name] = on_path.get(name, 0) + seg.duration
        return {
            name: {"on_path": ticks, "slack": self.makespan - ticks}
            for name, ticks in sorted(on_path.items())
        }

    # ------------------------------------------------------------------
    # What-if virtual speedups (causal-profiling style)
    # ------------------------------------------------------------------
    def virtual_speedups(self, earlier: int = 1) -> Dict[str, Dict[str, int]]:
        """Per waited-on object: the estimated makespan reduction if every
        on-path wait on it resolved ``earlier`` ticks sooner, plus the
        upper bound (the wait vanishing entirely).  Estimates, not exact
        re-simulations: shortening one chain can expose another."""
        out: Dict[str, Dict[str, int]] = {}
        for seg in self.segments:
            if seg.kind not in ("blocked", "timer") or not seg.obj:
                continue
            entry = out.setdefault(seg.obj, {"earlier_by": earlier,
                                             "saved": 0, "bound": 0})
            entry["saved"] += min(earlier, seg.duration)
            entry["bound"] += seg.duration
        return {obj: out[obj] for obj in sorted(out)}

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": CAUSALITY_SCHEMA,
            "start_seq": self.start_seq,
            "end_seq": self.end_seq,
            "makespan": self.makespan,
            "path_ticks": self.path_ticks,
            "slack": self.slack,
            "segments": [seg.to_dict() for seg in self.segments],
            "constraint_ticks": dict(sorted(self.constraint_ticks().items())),
            "info_type_ticks": dict(sorted(self.info_type_ticks().items())),
            "blocked_by_object": dict(
                sorted(self.blocked_ticks_by_object().items())),
            "per_process": self.per_process(),
            "speedups": self.virtual_speedups(),
        }

    def render(self, label: str = "") -> str:
        """Human-readable critical-path report."""
        lines = [
            "critical path{}: makespan {} ticks (seq {}..{}), "
            "{} segment(s), slack {}".format(
                " " + label if label else "", self.makespan,
                self.start_seq, self.end_seq, len(self.segments),
                self.slack),
        ]
        for seg in self.segments:
            who = seg.pname if seg.pid >= 0 else "<sched>"
            line = "  seq %5d..%5d %5d  %-8s %-12s" % (
                seg.start_seq, seg.end_seq, seg.duration, seg.kind, who)
            if seg.kind in ("blocked", "timer"):
                line += " on %s" % (seg.reason or seg.obj)
                if seg.constraint and seg.constraint != "unknown":
                    line += "  [%s%s]" % (
                        seg.constraint,
                        " " + "+".join(seg.info_types)
                        if seg.info_types else "")
            lines.append(line)
        shares = self.constraint_ticks()
        if shares and self.makespan:
            lines.append("attribution: " + "  ".join(
                "%s %d (%d%%)" % (name, ticks,
                                  100 * ticks // self.makespan)
                for name, ticks in sorted(shares.items(),
                                          key=lambda kv: -kv[1])))
        speedups = self.virtual_speedups()
        tops = sorted(speedups.items(), key=lambda kv: -kv[1]["bound"])[:3]
        for obj, entry in tops:
            lines.append(
                "what-if: {} resolved 1 tick earlier -> makespan -{} "
                "(bound -{})".format(obj, entry["saved"], entry["bound"]))
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------
def compute_critical_path(trace) -> CriticalPathReport:
    """Walk the waker chain backward from the last event (see module
    docstring).  Accepts a :class:`~repro.runtime.trace.Trace`, an event
    list, or a :class:`~repro.runtime.trace.RunResult`."""
    if isinstance(trace, RunResult):
        trace = trace.trace
    events: List[Event] = list(trace)
    if not events:
        return CriticalPathReport([], 0, 0)
    start = events[0].seq
    end = events[-1].seq
    by_pid: Dict[int, List[Event]] = {}
    for ev in events:
        if ev.pid >= 0:
            by_pid.setdefault(ev.pid, []).append(ev)
    names = {pid: own[0].pname for pid, own in by_pid.items()}
    wakes_by_pid: Dict[int, List[Wake]] = {}
    for wake in wake_records(events):
        wakes_by_pid.setdefault(wake.woken_pid, []).append(wake)

    def latest_own(pid: int, seq: int) -> Optional[Event]:
        own = by_pid.get(pid, [])
        lo, hi = 0, len(own)
        while lo < hi:
            mid = (lo + hi) // 2
            if own[mid].seq <= seq:
                lo = mid + 1
            else:
                hi = mid
        return own[lo - 1] if lo else None

    def latest_wake(pid: int, seq: int) -> Optional[Wake]:
        wakes = wakes_by_pid.get(pid, [])
        lo, hi = 0, len(wakes)
        while lo < hi:
            mid = (lo + hi) // 2
            if wakes[mid].seq <= seq:
                lo = mid + 1
            else:
                hi = mid
        return wakes[lo - 1] if lo else None

    def blocked_segment(pid: int, lo: int, hi: int, reason: str,
                        obj: str, timer: bool) -> Segment:
        wc = classify_wait(reason)
        kind = "timer" if timer or wc.category == "timer" else "blocked"
        return Segment(lo, hi, pid, names.get(pid, "P{}".format(pid)),
                       kind, obj=obj, reason=reason,
                       constraint=wc.constraint, info_types=wc.info_types)

    segments: List[Segment] = []
    if not by_pid:
        segments.append(Segment(start, end, -1, "<sched>", "startup"))
        return CriticalPathReport(segments, start, end)

    cur = events[-1].pid
    if cur < 0:
        # Final event is the scheduler's (e.g. a timer log); hand the
        # cursor to the last process that acted.
        for ev in reversed(events):
            if ev.pid >= 0:
                cur = ev.pid
                break
    t = end
    while t > start:
        last = latest_own(cur, t)
        if last is None:
            # Before this process's first event: attribute to startup.
            segments.append(Segment(start, t, -1, "<sched>", "startup"))
            break
        wake = latest_wake(cur, t)
        if (last.kind == "blocked" and last.seq < t
                and (wake is None or wake.seq <= last.seq)):
            # Blocked at t with the wakeup outside the window (truncated
            # wait: deadlocked waiter, or a jump landed mid-wait).
            reason = (last.detail if isinstance(last.detail, str)
                      else last.obj)
            segments.append(blocked_segment(cur, last.seq, t, reason,
                                            last.obj, False))
            t = last.seq
            continue
        if wake is None:
            # Running since its first event.
            first = by_pid[cur][0].seq
            lo = max(first, start)
            if lo < t:
                segments.append(Segment(
                    lo, t, cur, names[cur], "run"))
            if lo > start:
                segments.append(Segment(start, lo, -1, "<sched>", "startup"))
            break
        # Running from the wakeup to t ...
        if wake.seq < t:
            segments.append(Segment(wake.seq, t, cur, names[cur], "run"))
        # ... preceded by the wait the wakeup resolved.
        if wake.blocked_seq < wake.seq:
            segments.append(blocked_segment(
                cur, wake.blocked_seq, wake.seq, wake.reason, wake.obj,
                wake.kind in ("timer", "timeout")))
        t = wake.blocked_seq
        # Follow the waker chain: what was the (eventual) waker doing
        # before this wait began?  Timer wakes stay with the sleeper.
        if (wake.waker_pid >= 0 and wake.waker_pid != cur
                and latest_own(wake.waker_pid, t) is not None):
            cur = wake.waker_pid
    segments.reverse()
    segments.sort(key=lambda seg: (seg.start_seq, seg.end_seq))
    return CriticalPathReport(segments, start, end)


def causal_chain(report: CriticalPathReport, limit: int = 6) -> List[str]:
    """A compact, human-readable causal story: the last ``limit`` path
    segments, newest last — used by the explore engine to explain a
    minimized witness."""
    lines: List[str] = []
    for seg in report.segments[-limit:]:
        who = seg.pname if seg.pid >= 0 else "<sched>"
        if seg.kind in ("blocked", "timer"):
            lines.append("{} waited {} tick(s) on {} [{}]".format(
                who, seg.duration, seg.reason or seg.obj,
                seg.constraint or seg.kind))
        elif seg.kind == "run":
            lines.append("{} ran {} tick(s)".format(who, seg.duration))
        else:
            lines.append("{} {} tick(s)".format(seg.kind, seg.duration))
    return lines
