"""Observability layer: instrumentation sinks, span folding, metrics,
exporters, and profile runners.

Layered *on top of* the runtime: the runtime never imports this package
(the scheduler's ``sink`` hook is duck-typed), so ``repro.runtime`` stays
dependency-free and uninstrumented runs pay nothing.

Quick use::

    from repro.obs import run_profile
    report = run_profile("bounded_buffer", "monitor")
    print(report.metrics.render())

or from the command line::

    python -m repro profile bounded_buffer monitor --export chrome \
        --out /tmp/trace.json
"""

from .exporters import (
    ascii_contention,
    ascii_timeline,
    chrome_trace,
    jsonl_lines,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import Histogram, ObjectMetrics, RunMetrics, compute_metrics
from .profiles import (
    WORKLOADS,
    ProfileReport,
    comparison_table,
    metrics_suite,
    profileable,
    run_profile,
)
from .sink import InstrumentationSink, MetricsSink, NullSink, RecordingSink
from .spans import (
    Span,
    blocked_time_by_object,
    fold_spans,
    max_concurrent,
    spans_by_kind,
)

__all__ = [
    "InstrumentationSink",
    "NullSink",
    "MetricsSink",
    "RecordingSink",
    "Span",
    "fold_spans",
    "spans_by_kind",
    "blocked_time_by_object",
    "max_concurrent",
    "Histogram",
    "ObjectMetrics",
    "RunMetrics",
    "compute_metrics",
    "chrome_trace",
    "write_chrome_trace",
    "jsonl_lines",
    "write_jsonl",
    "ascii_timeline",
    "ascii_contention",
    "ProfileReport",
    "WORKLOADS",
    "run_profile",
    "metrics_suite",
    "comparison_table",
    "profileable",
]
