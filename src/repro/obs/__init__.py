"""Observability layer: instrumentation sinks, span folding, metrics,
exporters, and profile runners.

Layered *on top of* the runtime: the runtime never imports this package
(the scheduler's ``sink`` hook is duck-typed), so ``repro.runtime`` stays
dependency-free and uninstrumented runs pay nothing.

Quick use::

    from repro.obs import run_profile
    report = run_profile("bounded_buffer", "monitor")
    print(report.metrics.render())

or from the command line::

    python -m repro profile bounded_buffer monitor --export chrome \
        --out /tmp/trace.json
"""

from .causality import (
    HBEdge,
    HBGraph,
    Wake,
    WaitClass,
    build_hb_graph,
    classify_wait,
    wake_records,
)
from .critical_path import (
    CriticalPathReport,
    Segment,
    causal_chain,
    compute_critical_path,
)
from .exporters import (
    ascii_contention,
    ascii_timeline,
    chrome_trace,
    jsonl_lines,
    parse_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from .harness import (
    PHASES,
    HarnessTelemetry,
    Hotspot,
    HotspotReport,
    NullHarnessTelemetry,
    WaveStat,
    WorkerItem,
    explore_record,
    normalize_telemetry,
    self_profile,
)
from .metrics import Histogram, ObjectMetrics, RunMetrics, compute_metrics
from .profiles import (
    WORKLOADS,
    CausalReport,
    ProfileReport,
    comparison_table,
    metrics_suite,
    profileable,
    run_causal,
    run_profile,
)
from .runstore import (
    Regression,
    RunRecord,
    RunStore,
    compare_records,
    dump_baseline,
    load_baseline,
    render_comparison,
)
from .recovery import (
    PartitionRecoveryMetrics,
    PartitionRecoverySpan,
    RecoveryMetrics,
    RecoverySpan,
    compute_partition_mttr,
    compute_recovery_metrics,
    partition_recovery_spans,
    recovery_spans,
)
from .sink import InstrumentationSink, MetricsSink, NullSink, RecordingSink
from .streaming import QuantileSketch, StreamingSink, WindowedSeries
from .spans import (
    Span,
    blocked_time_by_object,
    fold_spans,
    max_concurrent,
    spans_by_kind,
)

__all__ = [
    "InstrumentationSink",
    "NullSink",
    "MetricsSink",
    "RecordingSink",
    "StreamingSink",
    "QuantileSketch",
    "WindowedSeries",
    "Span",
    "fold_spans",
    "spans_by_kind",
    "blocked_time_by_object",
    "max_concurrent",
    "Histogram",
    "ObjectMetrics",
    "RunMetrics",
    "compute_metrics",
    "chrome_trace",
    "write_chrome_trace",
    "jsonl_lines",
    "write_jsonl",
    "ascii_timeline",
    "ascii_contention",
    "ProfileReport",
    "WORKLOADS",
    "run_profile",
    "metrics_suite",
    "comparison_table",
    "profileable",
    "HBGraph",
    "HBEdge",
    "Wake",
    "WaitClass",
    "build_hb_graph",
    "wake_records",
    "classify_wait",
    "CriticalPathReport",
    "Segment",
    "compute_critical_path",
    "causal_chain",
    "parse_jsonl",
    "CausalReport",
    "run_causal",
    "RunRecord",
    "RunStore",
    "Regression",
    "compare_records",
    "load_baseline",
    "dump_baseline",
    "render_comparison",
    "RecoverySpan",
    "RecoveryMetrics",
    "recovery_spans",
    "compute_recovery_metrics",
    "PartitionRecoverySpan",
    "PartitionRecoveryMetrics",
    "partition_recovery_spans",
    "compute_partition_mttr",
    "PHASES",
    "HarnessTelemetry",
    "NullHarnessTelemetry",
    "WorkerItem",
    "WaveStat",
    "normalize_telemetry",
    "explore_record",
    "Hotspot",
    "HotspotReport",
    "self_profile",
]
