"""Instrumentation sinks: the runtime's publish side of observability.

The :class:`~repro.runtime.scheduler.Scheduler` publishes three streams to
an attached sink:

* :meth:`InstrumentationSink.on_event` — every trace event, as it is logged;
* :meth:`InstrumentationSink.on_step` — every scheduling step (a process is
  handed the virtual CPU), which is how context switches become countable
  without bloating the trace with one event per step;
* :meth:`InstrumentationSink.on_probe` — gauge samples published by the
  mechanisms themselves (queue depths, crowd sizes, waiter counts), labelled
  with the mechanism-specific object (``"condition buf.nonempty"``,
  ``"queue ser.readq"``, ``"semaphore fullslots"``), via
  :meth:`~repro.runtime.scheduler.Scheduler.probe`.

**Zero-overhead null sink.**  The scheduler stores ``sink=None`` for the
uninstrumented case and guards every publish with a single ``is not None``
check; passing :class:`NullSink` is normalized to ``None`` at construction
(the class carries ``IS_NULL = True``), so an uninstrumented run executes the
*identical* code path — it pays nothing, not even no-op method calls.  This
is the property ``benchmarks/bench_observability.py`` measures.

:class:`MetricsSink` aggregates counters online (cheap, O(1) per publish);
:class:`RecordingSink` additionally keeps the raw sample/step timelines the
contention analysis and exporters consume.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple


class InstrumentationSink:
    """Base protocol: every hook is a no-op; subclasses override what they
    need.  Hooks must be non-blocking and must never raise — they run inside
    the scheduler's hot loop."""

    #: Sinks flagged ``IS_NULL`` are normalized to ``None`` by the scheduler,
    #: making them literally free (see module docstring).
    IS_NULL = False

    def on_event(self, event) -> None:
        """One trace :class:`~repro.runtime.trace.Event` was logged."""

    def on_step(self, proc, seq: int, time: int) -> None:
        """``proc`` was dispatched for one run-to-yield step."""

    def on_probe(
        self, category: str, obj: str, value: Any, seq: int, time: int
    ) -> None:
        """A mechanism published a gauge sample (e.g. queue depth)."""

    def on_run_end(self, result) -> None:
        """The run finished; ``result`` is the
        :class:`~repro.runtime.trace.RunResult`."""


class NullSink(InstrumentationSink):
    """The do-nothing sink.  Attaching it is exactly equivalent to attaching
    no sink at all: the scheduler normalizes it to ``None`` and skips every
    publish site (see module docstring)."""

    IS_NULL = True


class MetricsSink(InstrumentationSink):
    """Online counters: context switches, dispatch steps, event-kind tallies,
    and per-object maximum queue depth.  O(1) work per publish; suitable for
    always-on instrumentation."""

    def __init__(self) -> None:
        self.steps = 0
        self.context_switches = 0
        self.events = 0
        self.kind_counts: Dict[str, int] = {}
        #: per probed object: highest gauge value ever seen.
        self.max_depth: Dict[str, int] = {}
        #: per probed object: number of samples published.
        self.probe_counts: Dict[str, int] = {}
        self._last_pid: Optional[int] = None

    # ------------------------------------------------------------------
    def on_event(self, event) -> None:
        self.events += 1
        self.kind_counts[event.kind] = self.kind_counts.get(event.kind, 0) + 1

    def on_step(self, proc, seq: int, time: int) -> None:
        self.steps += 1
        if self._last_pid is not None and self._last_pid != proc.pid:
            self.context_switches += 1
        self._last_pid = proc.pid

    def on_probe(
        self, category: str, obj: str, value: Any, seq: int, time: int
    ) -> None:
        self.probe_counts[obj] = self.probe_counts.get(obj, 0) + 1
        try:
            depth = int(value)
        except (TypeError, ValueError):
            return
        if depth > self.max_depth.get(obj, 0):
            self.max_depth[obj] = depth

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Counters as plain JSON-ready data."""
        return {
            "steps": self.steps,
            "context_switches": self.context_switches,
            "events": self.events,
            "kind_counts": dict(self.kind_counts),
            "max_depth": dict(self.max_depth),
        }


class RecordingSink(MetricsSink):
    """Full recording: everything :class:`MetricsSink` counts, plus the raw
    probe-sample timeline (``(seq, time, category, obj, value)``) and the
    dispatch timeline (``(seq, time, pid, pname)``).  This is what
    ``python -m repro profile`` attaches; it trades memory for the ability
    to reconstruct queue-depth and contention timelines exactly."""

    def __init__(self) -> None:
        super().__init__()
        self.samples: List[Tuple[int, int, str, str, Any]] = []
        self.dispatches: List[Tuple[int, int, int, str]] = []

    def on_step(self, proc, seq: int, time: int) -> None:
        super().on_step(proc, seq, time)
        self.dispatches.append((seq, time, proc.pid, proc.name))

    def on_probe(
        self, category: str, obj: str, value: Any, seq: int, time: int
    ) -> None:
        super().on_probe(category, obj, value, seq, time)
        self.samples.append((seq, time, category, obj, value))

    # ------------------------------------------------------------------
    def depth_timeline(self, obj: str) -> List[Tuple[int, int]]:
        """``(seq, depth)`` samples for one probed object, in seq order."""
        return [
            (seq, value)
            for seq, __, __, sample_obj, value in self.samples
            if sample_obj == obj
        ]
