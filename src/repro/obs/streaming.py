"""Streaming telemetry: bounded-memory observability for heavy-traffic runs.

The recording pipeline from PR 2 (:class:`~repro.obs.sink.RecordingSink` →
:func:`~repro.obs.spans.fold_spans` → :func:`~repro.obs.metrics.compute_metrics`)
buffers every event and folds spans post-hoc — O(events) memory.  That is
the right trade for the paper's footnote-2 toys (hundreds of events) and
structurally wrong for the load observatory (:mod:`repro.load`), where one
sweep point can log millions of events.  This module is the streaming
counterpart: everything folds **on arrival** and total retained state is

    O(objects × sketch buckets  +  retained windows  +  in-flight ops)

— bounded by the *width* of the system (shards, live clients), never by
its *length* (events, virtual time).  Three pieces:

* :class:`QuantileSketch` — a mergeable fixed-relative-error quantile
  sketch over log-spaced buckets (the DDSketch construction): bucket ``k``
  covers ``(γ^(k-1), γ^k]`` with ``γ = (1+ε)/(1-ε)``, so reporting the
  bucket midpoint answers any quantile within relative error ε.  Memory is
  the number of *touched* buckets: O(log(max/min)/ε), independent of the
  observation count.  Sketches merge by bucket-wise addition, which is how
  per-shard latency distributions combine into a fleet-wide percentile
  without ever co-locating raw samples.
* :class:`WindowedSeries` — time-series counters aligned to the virtual
  clock: tick ``t`` lands in window ``t // width`` (window 0 starts at
  t=0, so runs with identical plans align window-for-window).  At most
  ``max_windows`` windows are retained; older ones fold into a running
  total as they scroll off, keeping long runs bounded.
* :class:`StreamingSink` — an :class:`~repro.obs.sink.InstrumentationSink`
  that folds the uniform trace vocabulary (``request`` / ``op_start`` /
  ``op_end`` / ``blocked`` / ``unblocked`` / kills) into wait and latency
  sketches per object plus windowed throughput / arrivals / contention /
  queue-depth series.  It never stores an event.

The sink piggybacks on the scheduler's existing publish sites — no runtime
changes — so the uninstrumented null path (``sink=None``) is untouched and
the E15 "<5% null overhead" gate keeps applying (re-asserted by
``benchmarks/bench_load.py``).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from .sink import InstrumentationSink

#: Default relative error for latency sketches: 1% is two orders of
#: magnitude tighter than the shape differences E19 compares.
DEFAULT_REL_ERROR = 0.01


class QuantileSketch:
    """Mergeable quantile sketch with a guaranteed relative error bound.

    Non-negative observations only (durations).  Zero is exact (its own
    counter); positive values land in log-spaced buckets; quantile queries
    return the matched bucket's midpoint, which is within ``rel_error`` of
    the true value (relative), regardless of how many values were observed.
    """

    __slots__ = ("rel_error", "_gamma", "_log_gamma", "_buckets",
                 "_zero", "count", "total", "min", "max")

    def __init__(self, rel_error: float = DEFAULT_REL_ERROR) -> None:
        if not 0.0 < rel_error < 1.0:
            raise ValueError("rel_error must be in (0, 1)")
        self.rel_error = rel_error
        self._gamma = (1.0 + rel_error) / (1.0 - rel_error)
        self._log_gamma = math.log(self._gamma)
        self._buckets: Dict[int, int] = {}
        self._zero = 0
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max = 0

    # ------------------------------------------------------------------
    def observe(self, value: int, n: int = 1) -> None:
        """Fold ``n`` occurrences of ``value`` (a non-negative duration)."""
        if value < 0:
            raise ValueError("sketch values must be non-negative")
        self.count += n
        self.total += value * n
        if self.min is None or value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value == 0:
            self._zero += n
            return
        key = int(math.ceil(math.log(value) / self._log_gamma))
        self._buckets[key] = self._buckets.get(key, 0) + n

    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other`` into this sketch (bucket-wise addition).  Both
        must share the same error bound — merged accuracy stays ε."""
        if abs(other.rel_error - self.rel_error) > 1e-12:
            raise ValueError("cannot merge sketches with different error "
                             "bounds ({} vs {})".format(self.rel_error,
                                                        other.rel_error))
        self.count += other.count
        self.total += other.total
        self._zero += other._zero
        if other.min is not None and (self.min is None
                                      or other.min < self.min):
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        for key, n in other._buckets.items():
            self._buckets[key] = self._buckets.get(key, 0) + n

    # ------------------------------------------------------------------
    def quantile(self, q: float) -> float:
        """The q-th percentile (q in [0, 100]), within ``rel_error``
        relative of the exact nearest-rank answer.  0 for an empty sketch."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        if self.count == 0:
            return 0.0
        # Nearest-rank on the merged (zero + buckets) distribution.
        rank = max(1, int(math.ceil(q / 100.0 * self.count)))
        if rank <= self._zero:
            return 0.0
        seen = self._zero
        for key in sorted(self._buckets):
            seen += self._buckets[key]
            if seen >= rank:
                # Midpoint of (γ^(k-1), γ^k]: within ε of anything inside.
                return (2.0 * self._gamma ** key) / (self._gamma + 1.0)
        return float(self.max)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def bucket_count(self) -> int:
        """Retained cells — the memory bound the E19 test asserts."""
        return len(self._buckets) + (1 if self._zero else 0)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "mean": round(self.mean, 3),
            "min": self.min or 0,
            "max": self.max,
            "p50": round(self.quantile(50), 3),
            "p95": round(self.quantile(95), 3),
            "p99": round(self.quantile(99), 3),
            "rel_error": self.rel_error,
            "buckets": self.bucket_count(),
        }


class WindowedSeries:
    """Per-window counters on the virtual clock, with bounded retention.

    Each window aggregates named counters (summed) and gauges (maxed).
    Windows are absolute — index ``t // width`` — so two runs under the
    same plan produce comparable series.  Only the newest ``max_windows``
    are kept; evicted windows fold into ``evicted`` totals so conservation
    checks still balance on arbitrarily long runs.
    """

    def __init__(self, width: int = 32, max_windows: int = 64) -> None:
        if width <= 0 or max_windows <= 0:
            raise ValueError("width and max_windows must be positive")
        self.width = width
        self.max_windows = max_windows
        self._windows: Dict[int, Dict[str, int]] = {}
        self.evicted: Dict[str, int] = {}
        self.evicted_windows = 0

    # ------------------------------------------------------------------
    def _window(self, time: int) -> Dict[str, int]:
        index = time // self.width
        win = self._windows.get(index)
        if win is None:
            win = self._windows[index] = {}
            if len(self._windows) > self.max_windows:
                oldest = min(self._windows)
                dead = self._windows.pop(oldest)
                self.evicted_windows += 1
                for key, val in dead.items():
                    if key.startswith("max_"):
                        self.evicted[key] = max(self.evicted.get(key, 0), val)
                    else:
                        self.evicted[key] = self.evicted.get(key, 0) + val
        return win

    def add(self, time: int, key: str, amount: int = 1) -> None:
        """Accumulate ``amount`` into ``key`` for the window covering
        ``time``."""
        win = self._window(time)
        win[key] = win.get(key, 0) + amount

    def gauge(self, time: int, key: str, value: int) -> None:
        """Record a gauge sample; windows keep the maximum.  Keys are
        prefixed ``max_`` so eviction folds them with max, not sum."""
        key = "max_" + key
        win = self._window(time)
        if value > win.get(key, 0):
            win[key] = value

    # ------------------------------------------------------------------
    def cells(self) -> int:
        """Retained counter cells (the memory bound)."""
        return sum(len(win) for win in self._windows.values())

    def series(self) -> List[Dict[str, Any]]:
        """The retained windows, oldest first, each tagged with its start
        tick and a derived contention ratio when the inputs are present."""
        out = []
        for index in sorted(self._windows):
            win = dict(self._windows[index])
            win["start"] = index * self.width
            if "op_start" in win or "blocked" in win:
                win["contention"] = round(
                    win.get("blocked", 0)
                    / float(max(win.get("op_start", 0), 1)), 4)
            out.append(win)
        return out

    def total(self, key: str) -> int:
        live = sum(win.get(key, 0) for win in self._windows.values())
        return live + self.evicted.get(key, 0)


class StreamingSink(InstrumentationSink):
    """Fold events on arrival; never store one.

    Retained state, by owner:

    * per *operation object* (``"<shard>.<op>"``): three
      :class:`QuantileSketch` — queue (``request``→``op_start``), service
      (``op_start``→``op_end``) and total (``request``→``op_end``) latency
      on the seq axis (the meaningful clock — see DESIGN.md §8);
    * per *wait object*: one wait-duration sketch (``blocked``→
      ``unblocked``);
    * one :class:`WindowedSeries` on the virtual clock: arrivals, op
      starts, completions (throughput), blocked entries, and max probed
      queue depth per window;
    * in-flight maps (open requests / services / blocked processes) —
      O(concurrent clients), drained as operations finish and scrubbed on
      kills so crashed clients never pin memory.

    ``shard_prefix`` optionally collapses object labels to their shard
    (``"shard3.put"`` → ``"shard3"``), keeping sketch count O(shards)
    instead of O(shards × ops) when per-op resolution is not needed.
    """

    def __init__(
        self,
        window: int = 32,
        max_windows: int = 64,
        rel_error: float = DEFAULT_REL_ERROR,
        shard_prefix: bool = False,
    ) -> None:
        self.rel_error = rel_error
        self.shard_prefix = shard_prefix
        self.windows = WindowedSeries(width=window, max_windows=max_windows)
        #: obj -> {"queue": sketch, "service": sketch, "total": sketch}
        self.op_sketches: Dict[str, Dict[str, QuantileSketch]] = {}
        #: wait-obj -> blocked-duration sketch
        self.wait_sketches: Dict[str, QuantileSketch] = {}
        self.events = 0
        self.steps = 0
        self.context_switches = 0
        self.completed = 0
        self.max_depth: Dict[str, int] = {}
        self._last_pid: Optional[int] = None
        #: obj -> FIFO of (pname, start_seq) for open requests.  Matched
        #: oldest-first on op_start, mirroring the cross-process rule the
        #: span folder uses (a CSP server serves another process's request).
        self._pending: Dict[str, List[Tuple[str, int]]] = {}
        #: (pname, obj) -> (op_start seq, request seq or None)
        self._service: Dict[Tuple[str, str], Tuple[int, Optional[int]]] = {}
        #: pname -> (wait obj, start seq)
        self._blocked: Dict[str, Tuple[str, int]] = {}

    # ------------------------------------------------------------------
    def _label(self, obj: str) -> str:
        if self.shard_prefix:
            head, dot, __ = obj.partition(".")
            if dot:
                return head
        return obj

    def _op(self, obj: str) -> Dict[str, QuantileSketch]:
        sketches = self.op_sketches.get(obj)
        if sketches is None:
            sketches = self.op_sketches[obj] = {
                "queue": QuantileSketch(self.rel_error),
                "service": QuantileSketch(self.rel_error),
                "total": QuantileSketch(self.rel_error),
            }
        return sketches

    # ------------------------------------------------------------------
    # Sink protocol
    # ------------------------------------------------------------------
    def on_step(self, proc, seq: int, time: int) -> None:
        self.steps += 1
        if self._last_pid is not None and self._last_pid != proc.pid:
            self.context_switches += 1
        self._last_pid = proc.pid

    def on_probe(
        self, category: str, obj: str, value: Any, seq: int, time: int
    ) -> None:
        try:
            depth = int(value)
        except (TypeError, ValueError):
            return
        label = self._label(obj)
        if depth > self.max_depth.get(label, 0):
            self.max_depth[label] = depth
        self.windows.gauge(time, "depth", depth)

    def on_event(self, event) -> None:
        self.events += 1
        kind = event.kind
        if kind == "request":
            obj = self._label(event.obj)
            self._pending.setdefault(obj, []).append(
                (event.pname, event.seq))
            self.windows.add(event.time, "arrivals")
        elif kind == "op_start":
            obj = self._label(event.obj)
            fifo = self._pending.get(obj)
            requested: Optional[int] = None
            if fifo:
                __, requested = fifo.pop(0)
                if not fifo:
                    del self._pending[obj]
                self._op(obj)["queue"].observe(event.seq - requested)
            self._service[(event.pname, obj)] = (event.seq, requested)
            self.windows.add(event.time, "op_start")
        elif kind in ("op_end", "op_abort"):
            obj = self._label(event.obj)
            open_op = self._service.pop((event.pname, obj), None)
            if open_op is not None and kind == "op_end":
                started, requested = open_op
                sketches = self._op(obj)
                sketches["service"].observe(event.seq - started)
                if requested is not None:
                    sketches["total"].observe(event.seq - requested)
                self.completed += 1
                self.windows.add(event.time, "completed")
        elif kind == "blocked":
            self._blocked[event.pname] = (self._label(event.obj), event.seq)
            self.windows.add(event.time, "blocked")
        elif kind == "unblocked":
            # obj carries the *woken* process's name (waker-attributed).
            open_wait = self._blocked.pop(event.obj, None)
            if open_wait is not None:
                waited_on, since = open_wait
                sketch = self.wait_sketches.get(waited_on)
                if sketch is None:
                    sketch = self.wait_sketches[waited_on] = QuantileSketch(
                        self.rel_error)
                sketch.observe(event.seq - since)
        elif kind in ("killed", "failed", "exit"):
            # Scrub the victim's in-flight state so crashed or finished
            # clients never pin memory (partial ops are dropped, not
            # counted — a half-measured latency would skew the sketch).
            name = event.obj if kind != "exit" else event.pname
            self._blocked.pop(name, None)
            for key in [k for k in self._service if k[0] == name]:
                del self._service[key]
            for fifo in self._pending.values():
                fifo[:] = [entry for entry in fifo if entry[0] != name]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def memory_cells(self) -> int:
        """Total retained cells across every structure — the number the
        O(shards × windows) bench assertion pins.  Proportional to actual
        memory (each cell is one dict slot), and deterministic, which a
        tracemalloc byte count is not."""
        cells = self.windows.cells()
        for sketches in self.op_sketches.values():
            cells += sum(s.bucket_count() for s in sketches.values())
        cells += sum(s.bucket_count() for s in self.wait_sketches.values())
        cells += sum(len(fifo) for fifo in self._pending.values())
        cells += len(self._service) + len(self._blocked)
        return cells

    def in_flight(self) -> int:
        """Open requests + services + waits (should drain to 0 on a clean
        run once every client finished)."""
        return (sum(len(f) for f in self._pending.values())
                + len(self._service) + len(self._blocked))

    def merged_latency(self, half: str = "total") -> QuantileSketch:
        """One fleet-wide sketch: every object's ``half`` sketch merged —
        the mergeability story (per-shard sketches combine without raw
        samples)."""
        merged = QuantileSketch(self.rel_error)
        for sketches in self.op_sketches.values():
            merged.merge(sketches[half])
        return merged

    def merged_wait(self) -> QuantileSketch:
        merged = QuantileSketch(self.rel_error)
        for sketch in self.wait_sketches.values():
            merged.merge(sketch)
        return merged

    def to_dict(self) -> Dict[str, Any]:
        return {
            "events": self.events,
            "steps": self.steps,
            "context_switches": self.context_switches,
            "completed": self.completed,
            "in_flight": self.in_flight(),
            "memory_cells": self.memory_cells(),
            "max_depth": dict(self.max_depth),
            "latency": {
                half: self.merged_latency(half).to_dict()
                for half in ("queue", "service", "total")
            },
            "wait": self.merged_wait().to_dict(),
            "objects": {
                obj: {half: s.to_dict() for half, s in sketches.items()}
                for obj, sketches in sorted(self.op_sketches.items())
            },
            "windows": self.windows.series(),
            "evicted_windows": self.windows.evicted_windows,
        }
