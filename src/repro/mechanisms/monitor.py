"""Hoare monitors (substrate S3).

Implements the monitor construct of Hoare's "Monitors: An Operating System
Structuring Concept" (CACM 1974), the mechanism evaluated in §5.2 of the
paper, with:

* a FIFO **entry queue**;
* **condition variables** with FIFO queues and Hoare's *priority wait*
  (``wait(priority=p)`` — smallest ``p`` woken first), the feature the disk
  scheduler and alarm clock examples rely on (information type T3);
* **Hoare signal semantics** by default: ``signal`` hands possession of the
  monitor directly to the longest-waiting (or highest-priority) waiter, and
  the signaller is suspended on the *urgent stack*, resuming with priority
  over the entry queue when the monitor next becomes free;
* optional **Mesa semantics** (``signal_semantics="mesa"``): ``signal`` moves
  one waiter to the entry queue and the signaller continues — waiters must
  re-check their predicate in a loop.

Monitor procedures are written as generator functions bracketed by
``yield from mon.enter()`` / ``mon.exit()``; the :meth:`Monitor.procedure`
helper removes the boilerplate.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from ..runtime.errors import IllegalOperationError
from ..runtime.process import SimProcess
from ..runtime.scheduler import Scheduler

HOARE = "hoare"
MESA = "mesa"


class Monitor:
    """A monitor: mutual exclusion plus condition variables.

    Args:
        sched: owning scheduler.
        name: trace label.
        signal_semantics: ``"hoare"`` (default) or ``"mesa"``.
    """

    def __init__(
        self,
        sched: Scheduler,
        name: str = "monitor",
        signal_semantics: str = HOARE,
    ) -> None:
        if signal_semantics not in (HOARE, MESA):
            raise ValueError(
                "unknown signal semantics {!r}".format(signal_semantics)
            )
        self._sched = sched
        self.name = name
        self.signal_semantics = signal_semantics
        self._active: Optional[SimProcess] = None
        self._entry: List[SimProcess] = []
        self._urgent: List[SimProcess] = []  # LIFO stack of signallers

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def active_name(self) -> Optional[str]:
        """Name of the process currently inside the monitor, if any."""
        return self._active.name if self._active else None

    @property
    def entry_count(self) -> int:
        """Number of processes waiting to enter."""
        return len(self._entry)

    def _require_active(self, what: str) -> SimProcess:
        me = self._sched.current
        if me is None or self._active is not me:
            raise IllegalOperationError(
                "{} called outside monitor {} (active={})".format(
                    what, self.name, self.active_name
                )
            )
        return me

    # ------------------------------------------------------------------
    # Possession transfer
    # ------------------------------------------------------------------
    def enter(self) -> Generator:
        """Gain exclusive possession of the monitor (FIFO entry queue)."""
        yield from self._sched.checkpoint()
        me = self._sched.current
        if self._active is me:
            raise IllegalOperationError(
                "{} re-entered monitor {}".format(me.name, self.name)
            )
        if self._active is None and not self._entry and not self._urgent:
            self._active = me
            self._sched.log("enter", self.name)
            return
        self._entry.append(me)
        yield from self._sched.park("enter({})".format(self.name), self.name)
        self._sched.log("enter", self.name, "handoff")

    def exit(self) -> None:
        """Release the monitor; wakes the urgent stack first, then entry."""
        self._require_active("exit")
        self._sched.log("leave", self.name)
        self._pass_possession()

    def _pass_possession(self) -> None:
        """Hand the monitor to the next rightful process, if any."""
        if self._urgent:
            nxt = self._urgent.pop()  # LIFO, per Hoare
        elif self._entry:
            nxt = self._entry.pop(0)
        else:
            self._active = None
            return
        self._active = nxt
        self._sched.unpark(nxt)

    # ------------------------------------------------------------------
    # Conditions
    # ------------------------------------------------------------------
    def condition(self, name: str) -> "Condition":
        """Create a condition variable attached to this monitor."""
        return Condition(self, name)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def procedure(self, body: Generator) -> Generator:
        """Run ``body`` (a generator) as a monitor procedure: enter, delegate,
        exit — with exit guaranteed even if the body raises."""
        yield from self.enter()
        try:
            result = yield from body
        finally:
            if self._active is self._sched.current:
                self.exit()
        return result


class Condition:
    """A condition variable inside a :class:`Monitor`.

    Waiters queue in FIFO order, or by ascending ``priority`` when the
    priority-wait form is used (Hoare §"priority wait"; ties break FIFO).
    """

    def __init__(self, monitor: Monitor, name: str) -> None:
        self._monitor = monitor
        self._sched = monitor._sched
        self.name = name
        # Each entry: (priority, enqueue_seq, process).
        self._waiters: List[Tuple[int, int, SimProcess]] = []
        self._counter = 0

    # ------------------------------------------------------------------
    @property
    def queue(self) -> bool:
        """Hoare's ``condition.queue``: True when at least one process waits.

        This is the canonical way a monitor solution reads synchronization
        state (information type T4) about *waiting* processes.
        """
        return bool(self._waiters)

    def __len__(self) -> int:
        return len(self._waiters)

    def minrank(self) -> Optional[int]:
        """Priority of the next process to be woken (Hoare's ``minrank``),
        or ``None`` when nobody waits.  Used by the alarm-clock solution."""
        if not self._waiters:
            return None
        return min(self._waiters)[0]

    # ------------------------------------------------------------------
    def wait(self, priority: int = 0) -> Generator:
        """Release the monitor and wait on this condition.

        On Hoare semantics the waiter owns the monitor again when ``wait``
        returns (handed over by the signaller); on Mesa semantics the waiter
        re-entered through the entry queue and must re-check its predicate.
        """
        me = self._monitor._require_active("wait({})".format(self.name))
        self._counter += 1
        self._waiters.append((priority, self._counter, me))
        self._waiters.sort(key=lambda item: (item[0], item[1]))
        self._sched.log("wait", self.name, priority)
        self._monitor._pass_possession()
        yield from self._sched.park(
            "wait({}.{})".format(self._monitor.name, self.name), self.name
        )

    def signal(self) -> Generator:
        """Wake the first waiter (by priority, then FIFO); no-op if none.

        Hoare semantics: possession passes to the woken process immediately
        and the signaller blocks on the urgent stack — so this is a
        *generator* and must be invoked as ``yield from cond.signal()``.
        Mesa semantics: the waiter is moved to the entry queue and the
        signaller keeps running (still invoked with ``yield from`` for a
        uniform call shape).
        """
        me = self._monitor._require_active("signal({})".format(self.name))
        if not self._waiters:
            self._sched.log("signal", self.name, "empty")
            return
        __, __, waiter = self._waiters.pop(0)
        self._sched.log("signal", self.name, "wake:{}".format(waiter.name))
        if self._monitor.signal_semantics == MESA:
            # Signal-and-continue: waiter re-queues for entry.
            self._monitor._entry.append(waiter)
            return
        # Hoare signal-and-urgent-wait: direct possession handoff.
        self._monitor._urgent.append(me)
        self._monitor._active = waiter
        self._sched.unpark(waiter)
        yield from self._sched.park(
            "urgent({})".format(self._monitor.name), self._monitor.name
        )

    def signal_and_exit(self) -> None:
        """Hoare's optimized form: signal then immediately leave the monitor
        (the signaller does not return to the monitor).  Non-blocking."""
        me = self._monitor._require_active(
            "signal_and_exit({})".format(self.name)
        )
        del me
        self._sched.log("signal", self.name, "and_exit")
        if self._waiters:
            __, __, waiter = self._waiters.pop(0)
            self._monitor._active = waiter
            self._sched.unpark(waiter)
        else:
            self._monitor._pass_possession()

    def broadcast(self) -> Generator:
        """Wake every waiter (Mesa idiom).  Under Hoare semantics this
        signals repeatedly, handing possession around until the queue drains."""
        while self._waiters:
            yield from self.signal()
