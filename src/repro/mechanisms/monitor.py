"""Hoare monitors (substrate S3).

Implements the monitor construct of Hoare's "Monitors: An Operating System
Structuring Concept" (CACM 1974), the mechanism evaluated in §5.2 of the
paper, with:

* a FIFO **entry queue**;
* **condition variables** with FIFO queues and Hoare's *priority wait*
  (``wait(priority=p)`` — smallest ``p`` woken first), the feature the disk
  scheduler and alarm clock examples rely on (information type T3);
* **Hoare signal semantics** by default: ``signal`` hands possession of the
  monitor directly to the longest-waiting (or highest-priority) waiter, and
  the signaller is suspended on the *urgent stack*, resuming with priority
  over the entry queue when the monitor next becomes free;
* optional **Mesa semantics** (``signal_semantics="mesa"``): ``signal`` moves
  one waiter to the entry queue and the signaller continues — waiters must
  re-check their predicate in a loop.

Monitor procedures are written as generator functions bracketed by
``yield from mon.enter()`` / ``mon.exit()``; the :meth:`Monitor.procedure`
helper removes the boilerplate.

Crash semantics (DESIGN.md "Fault model"): the monitor is **fault-
containing**.  A dead occupant releases possession to the next rightful
process; dead entry, urgent, or condition waiters are dequeued.  Timed
variants: ``enter(timeout=...)`` gives up from the entry queue;
``wait(timeout=...)`` re-enters the monitor through the entry queue and
*then* raises :class:`WaitTimeout` — so the caller always owns the monitor
when the timeout surfaces, and must still exit it.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Set, Tuple

from ..runtime.errors import IllegalOperationError, WaitTimeout
from ..runtime.process import SimProcess
from ..runtime.scheduler import Scheduler

HOARE = "hoare"
MESA = "mesa"


class Monitor:
    """A monitor: mutual exclusion plus condition variables.

    Args:
        sched: owning scheduler.
        name: trace label.
        signal_semantics: ``"hoare"`` (default) or ``"mesa"``.
    """

    def __init__(
        self,
        sched: Scheduler,
        name: str = "monitor",
        signal_semantics: str = HOARE,
    ) -> None:
        if signal_semantics not in (HOARE, MESA):
            raise ValueError(
                "unknown signal semantics {!r}".format(signal_semantics)
            )
        self._sched = sched
        self.name = name
        self.signal_semantics = signal_semantics
        self._label = "monitor {}".format(name)
        self._active_key = ("mon_active", id(self))
        self._entry_key = ("mon_entry", id(self))
        self._urgent_key = ("mon_urgent", id(self))
        self._active: Optional[SimProcess] = None
        self._entry: List[SimProcess] = []
        self._urgent: List[SimProcess] = []  # LIFO stack of signallers
        self._degraded = False  # conditions ignore priority when set

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def active_name(self) -> Optional[str]:
        """Name of the process currently inside the monitor, if any."""
        return self._active.name if self._active else None

    @property
    def entry_count(self) -> int:
        """Number of processes waiting to enter."""
        return len(self._entry)

    def _probe_entry(self) -> None:
        self._sched.probe("monitor", "{}.entry".format(self._label),
                          len(self._entry))

    def _probe_urgent(self) -> None:
        self._sched.probe("monitor", "{}.urgent".format(self._label),
                          len(self._urgent))

    def _require_active(self, what: str) -> SimProcess:
        me = self._sched.current
        if me is None or self._active is not me:
            raise IllegalOperationError(
                "{} called outside monitor {} (active={})".format(
                    what, self.name, self.active_name
                )
            )
        return me

    # ------------------------------------------------------------------
    # Possession transfer
    # ------------------------------------------------------------------
    def enter(self, timeout: Optional[int] = None) -> Generator:
        """Gain exclusive possession of the monitor (FIFO entry queue).

        ``timeout`` bounds the entry wait in virtual time; expiry leaves the
        queue and raises :class:`WaitTimeout`."""
        yield from self._sched.checkpoint()
        me = self._sched.current
        if self._active is me:
            raise IllegalOperationError(
                "{} re-entered monitor {}".format(me.name, self.name)
            )
        if self._active is None and not self._entry and not self._urgent:
            self._set_active(me)
            self._sched.log("enter", self.name)
            return
        self._entry.append(me)
        self._probe_entry()
        self._sched.register_cleanup(self._entry_key, self._on_entry_death)
        try:
            yield from self._sched.park(
                "enter({})".format(self.name), self.name,
                timeout=timeout,
                on_timeout=lambda: self._discard_entry(me),
                resource=self._label,
            )
        finally:
            self._sched.unregister_cleanup(self._entry_key, me)
        self._sched.log("enter", self.name, "handoff")

    def exit(self) -> None:
        """Release the monitor; wakes the urgent stack first, then entry."""
        me = self._require_active("exit")
        self._sched.log("leave", self.name)
        self._release_possession(me)
        self._pass_possession()

    # ------------------------------------------------------------------
    # Possession bookkeeping (crash semantics live here)
    # ------------------------------------------------------------------
    def _set_active(self, proc: SimProcess) -> None:
        self._active = proc
        self._sched.note_hold(self._label, proc)
        self._sched.register_cleanup(
            self._active_key, self._on_active_death, proc=proc
        )

    def _release_possession(self, proc: SimProcess) -> None:
        self._sched.unregister_cleanup(self._active_key, proc)
        self._sched.note_release(self._label, proc)
        self._active = None

    def _pass_possession(self) -> None:
        """Hand the monitor to the next rightful process, if any."""
        if self._urgent:
            nxt = self._urgent.pop()  # LIFO, per Hoare
            self._probe_urgent()
        elif self._entry:
            nxt = self._entry.pop(0)
            self._probe_entry()
        else:
            return
        self._set_active(nxt)
        self._sched.unpark(nxt)

    def _discard_entry(self, proc: SimProcess) -> None:
        if proc in self._entry:
            self._entry.remove(proc)
            self._probe_entry()

    def _on_entry_death(self, proc: SimProcess) -> None:
        self._discard_entry(proc)

    def _on_urgent_death(self, proc: SimProcess) -> None:
        if proc in self._urgent:
            self._urgent.remove(proc)
            self._probe_urgent()

    def _on_active_death(self, proc: SimProcess) -> None:
        """A dead occupant releases the monitor — survivors proceed."""
        if self._active is not proc:
            return
        self._sched.log("leave", self.name, "crash_release", proc=proc)
        self._sched.note_release(self._label, proc)
        self._active = None
        self._pass_possession()

    # ------------------------------------------------------------------
    # Recovery hooks (lease reclamation / graceful degradation)
    # ------------------------------------------------------------------
    def crash_reclaim(self, proc: SimProcess) -> Optional[str]:
        """Lease reclamation.  The monitor is already fault-containing (a
        dead occupant's cleanup releases possession), so this is a
        defensive sweep for the supervisor's uniform reclaim pass."""
        if self._active is proc:
            self._on_active_death(proc)
            return "released"
        if proc in self._entry:
            self._discard_entry(proc)
            return "dequeued"
        if proc in self._urgent:
            self._on_urgent_death(proc)
            return "dequeued"
        return None

    def degrade(self) -> Optional[str]:
        """Graceful degradation: condition queues stop honouring priority
        waits and serve strictly FIFO.  Mutual exclusion (possession) is
        untouched — only the paper's *priority* constraints are relaxed."""
        if self._degraded:
            return None
        self._degraded = True
        return "priority waits -> fifo"

    # ------------------------------------------------------------------
    # Conditions
    # ------------------------------------------------------------------
    def condition(self, name: str) -> "Condition":
        """Create a condition variable attached to this monitor."""
        return Condition(self, name)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def procedure(self, body: Generator) -> Generator:
        """Run ``body`` (a generator) as a monitor procedure: enter, delegate,
        exit — with exit guaranteed even if the body raises."""
        yield from self.enter()
        try:
            result = yield from body
        finally:
            if self._active is self._sched.current:
                self.exit()
        return result


class Condition:
    """A condition variable inside a :class:`Monitor`.

    Waiters queue in FIFO order, or by ascending ``priority`` when the
    priority-wait form is used (Hoare §"priority wait"; ties break FIFO).
    """

    def __init__(self, monitor: Monitor, name: str) -> None:
        self._monitor = monitor
        self._sched = monitor._sched
        self.name = name
        self._label = "condition {}.{}".format(monitor.name, name)
        self._wait_key = ("cond_wait", id(self))
        # Each entry: (priority, enqueue_seq, process).
        self._waiters: List[Tuple[int, int, SimProcess]] = []
        self._timed_out: Set[int] = set()  # pids granted re-entry by timeout
        self._counter = 0

    def _probe(self) -> None:
        self._sched.probe("condition", self._label, len(self._waiters))

    # ------------------------------------------------------------------
    @property
    def queue(self) -> bool:
        """Hoare's ``condition.queue``: True when at least one process waits.

        This is the canonical way a monitor solution reads synchronization
        state (information type T4) about *waiting* processes.
        """
        return bool(self._waiters)

    def __len__(self) -> int:
        return len(self._waiters)

    def minrank(self) -> Optional[int]:
        """Priority of the next process to be woken (Hoare's ``minrank``),
        or ``None`` when nobody waits.  Used by the alarm-clock solution."""
        if not self._waiters:
            return None
        return min(self._waiters)[0]

    # ------------------------------------------------------------------
    def wait(
        self, priority: int = 0, timeout: Optional[int] = None
    ) -> Generator:
        """Release the monitor and wait on this condition.

        On Hoare semantics the waiter owns the monitor again when ``wait``
        returns (handed over by the signaller); on Mesa semantics the waiter
        re-entered through the entry queue and must re-check its predicate.

        ``timeout`` bounds the wait in virtual time.  On expiry the waiter
        is moved to the entry queue, re-acquires the monitor, and *then*
        raises :class:`WaitTimeout` — so the caller owns the monitor in the
        ``except`` block and must still exit it (``Monitor.procedure`` does).
        """
        me = self._monitor._require_active("wait({})".format(self.name))
        self._counter += 1
        if self._monitor._degraded:
            priority = 0  # degraded mode: arrival order only
        self._waiters.append((priority, self._counter, me))
        self._waiters.sort(key=lambda item: (item[0], item[1]))
        self._probe()
        self._sched.log("wait", self.name, priority)
        self._monitor._release_possession(me)
        self._monitor._pass_possession()
        self._sched.register_cleanup(self._wait_key, self._on_waiter_death)
        try:
            yield from self._sched.park(
                "wait({}.{})".format(self._monitor.name, self.name), self.name,
                timeout=timeout,
                on_timeout=lambda: self._requeue_timed_out(me),
                resource=self._label,
            )
        finally:
            self._sched.unregister_cleanup(self._wait_key, me)
        if me.pid in self._timed_out:
            self._timed_out.discard(me.pid)
            raise WaitTimeout(self._label, timeout)

    def _requeue_timed_out(self, proc: SimProcess) -> bool:
        """Timer callback: abandon the condition, queue for re-entry.

        Returns ``True`` so the scheduler does not wake the process itself —
        the monitor's entry machinery will, once possession is available, and
        :meth:`wait` raises only after it owns the monitor again.
        """
        self._discard_waiter(proc)
        self._timed_out.add(proc.pid)
        self._monitor._entry.append(proc)
        self._monitor._probe_entry()
        if self._monitor._active is None:
            self._monitor._pass_possession()
        return True

    def _discard_waiter(self, proc: SimProcess) -> None:
        for index, (__, __, waiter) in enumerate(self._waiters):
            if waiter is proc:
                del self._waiters[index]
                self._probe()
                return

    def _on_waiter_death(self, proc: SimProcess) -> None:
        """A dead waiter is dequeued wherever it sits — the condition queue,
        or the entry queue it was moved to by a timeout or a Mesa signal."""
        self._discard_waiter(proc)
        self._monitor._discard_entry(proc)
        self._timed_out.discard(proc.pid)

    def signal(self) -> Generator:
        """Wake the first waiter (by priority, then FIFO); no-op if none.

        Hoare semantics: possession passes to the woken process immediately
        and the signaller blocks on the urgent stack — so this is a
        *generator* and must be invoked as ``yield from cond.signal()``.
        Mesa semantics: the waiter is moved to the entry queue and the
        signaller keeps running (still invoked with ``yield from`` for a
        uniform call shape).

        Subject to ``drop_signal`` fault injection: a dropped signal
        vanishes and the waiter stays parked (a lost wakeup).
        """
        me = self._monitor._require_active("signal({})".format(self.name))
        if self._sched.fault_drop(self.name):
            self._sched.log("fault_drop", self.name, "signal")
            return
        if not self._waiters:
            self._sched.log("signal", self.name, "empty")
            return
        __, __, waiter = self._waiters.pop(0)
        self._probe()
        self._sched.log("signal", self.name, "wake:{}".format(waiter.name))
        if self._monitor.signal_semantics == MESA:
            # Signal-and-continue: waiter re-queues for entry.
            self._monitor._entry.append(waiter)
            self._monitor._probe_entry()
            return
        # Hoare signal-and-urgent-wait: direct possession handoff.
        self._monitor._release_possession(me)
        self._monitor._urgent.append(me)
        self._monitor._probe_urgent()
        self._monitor._set_active(waiter)
        self._sched.unpark(waiter)
        self._sched.register_cleanup(
            self._monitor._urgent_key, self._monitor._on_urgent_death
        )
        try:
            yield from self._sched.park(
                "urgent({})".format(self._monitor.name), self._monitor.name,
                resource=self._monitor._label,
            )
        finally:
            self._sched.unregister_cleanup(self._monitor._urgent_key, me)

    def signal_and_exit(self) -> None:
        """Hoare's optimized form: signal then immediately leave the monitor
        (the signaller does not return to the monitor).  Non-blocking."""
        me = self._monitor._require_active(
            "signal_and_exit({})".format(self.name)
        )
        self._sched.log("signal", self.name, "and_exit")
        self._monitor._release_possession(me)
        if self._waiters:
            __, __, waiter = self._waiters.pop(0)
            self._probe()
            self._monitor._set_active(waiter)
            self._sched.unpark(waiter)
        else:
            self._monitor._pass_possession()

    def broadcast(self) -> Generator:
        """Wake every waiter (Mesa idiom).  Under Hoare semantics this
        signals repeatedly, handing possession around until the queue drains."""
        while self._waiters:
            yield from self.signal()
