"""Synchronous message passing — CSP channels with guarded alternative.

§6 of the paper: "We have not looked extensively at message-passing models,
or more recent mechanisms, such as guarded commands [19] and the mechanism
proposed by Hoare in 'Communicating Sequential Processes' [20] … it is
important to be able to evaluate and compare them.  The techniques presented
in this paper may prove useful in these evaluations."

This module supplies that mechanism so the methodology can be applied to it
(experiment E11): rendezvous channels in the style of CSP '78, plus the
guarded alternative (``select``) that corresponds to Dijkstra's guarded
commands.

* :class:`Channel` — rendezvous by default: ``send`` and ``receive``
  complete together; waiters queue FIFO, so a channel doubles as an
  arrival-order record (information type T2).  ``capacity > 0`` turns it
  into an asynchronous mailbox (sends complete while the buffer has room).
* :func:`select` — wait on several send/receive alternatives at once, each
  optionally guarded by a boolean; the first matchable alternative fires.
  Immediate matches resolve in alternative order (deterministic, like a
  textually-ordered guarded command).

Synchronization schemes in this model are *server processes*: clients send
requests (parameters ride in the message — T3 is trivially accessible) and
the server's select loop encodes the constraints.

Crash semantics (DESIGN.md "Fault model"): channels are **fault-
propagating**, in the Erlang-link tradition.  Every process that touches a
channel becomes a *user*; when a user dies abnormally the channel *breaks*:
every parked counterpart is woken with :class:`PeerFailed`, and later
operations raise it immediately.  A rendezvous partner cannot silently wait
forever for a dead peer — the failure travels.  Construct with
``peer_fault="ignore"`` for bare CSP semantics (survivors block forever;
the deadlock detector's wait-for graph then names the dead peer instead).
Timed variants: ``send``/``receive``/``select`` accept ``timeout=`` and
raise :class:`WaitTimeout` after withdrawing their offers.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Sequence, Set, Union

from ..runtime.errors import IllegalOperationError, PeerFailed
from ..runtime.faults import deliver
from ..runtime.process import ProcessState, SimProcess
from ..runtime.scheduler import Scheduler


class _Offer:
    """One parked communication attempt (possibly one arm of a select)."""

    __slots__ = ("proc", "kind", "value", "group", "index")

    def __init__(self, proc: SimProcess, kind: str, value: Any,
                 group: Optional["_SelectGroup"], index: int) -> None:
        self.proc = proc
        self.kind = kind  # 'send' | 'recv'
        self.value = value
        self.group = group
        self.index = index

    def claimable(self) -> bool:
        # A claim ends in unpark, so the offer's process must still be
        # parked.  A corpse's offer can linger when nothing breaks the
        # channel on death (``peer_fault="ignore"``, e.g. a network
        # mailbox whose receiver was crash-injected): claiming it would
        # blow up the *deliverer*.  Dead peers mean silence, not poison.
        if self.proc.state is not ProcessState.BLOCKED:
            return False
        return self.group is None or not self.group.resolved


class _SelectGroup:
    """Shared state linking the arms of one select call."""

    __slots__ = ("resolved",)

    def __init__(self) -> None:
        self.resolved = False


class Channel:
    """A channel: rendezvous by default, optionally buffered.

    ``capacity == 0`` (the CSP '78 default): ``send`` blocks until a
    receiver takes the value, ``receive`` blocks until a sender offers one.
    ``capacity > 0`` (asynchronous mailbox): ``send`` completes immediately
    while the buffer has room and blocks only when full; ``receive`` drains
    the buffer in FIFO order.  All queues are FIFO.

    ``peer_fault`` selects the crash semantics: ``"break"`` (default)
    propagates a user's abnormal death to its partners as
    :class:`PeerFailed`; ``"ignore"`` keeps bare CSP semantics where a dead
    peer simply never communicates.
    """

    def __init__(self, sched: Scheduler, name: str = "chan",
                 capacity: int = 0, peer_fault: str = "break") -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        if peer_fault not in ("break", "ignore"):
            raise ValueError("unknown peer_fault {!r}".format(peer_fault))
        self._sched = sched
        self.name = name
        self.capacity = capacity
        self.peer_fault = peer_fault
        self._label = "channel {}".format(name)
        self._buffer: List[Any] = []
        self._senders: List[_Offer] = []
        self._receivers: List[_Offer] = []
        self._users: Set[int] = set()  # pids that ever touched the channel
        self.broken = False
        self.broken_by: Optional[str] = None

    @property
    def buffered(self) -> int:
        """Messages sitting in the buffer (0 for rendezvous channels)."""
        return len(self._buffer)

    def _has_space(self) -> bool:
        return len(self._buffer) < self.capacity

    # ------------------------------------------------------------------
    # Peer-failure propagation
    # ------------------------------------------------------------------
    def _attach(self) -> None:
        """Record the current process as a channel user; its abnormal death
        will break the channel (``peer_fault="break"`` only)."""
        if self.peer_fault != "break":
            return
        me = self._sched.current
        if me is None or me.pid in self._users:
            return
        self._users.add(me.pid)
        # Death-only cleanup, never unregistered: it fires solely on
        # abnormal termination, where "user died" is exactly the trigger.
        self._sched.register_cleanup(
            ("chan_user", id(self)), self._on_user_death, proc=me
        )

    def link(self, proc: SimProcess) -> None:
        """Explicitly register ``proc`` as a channel user (Erlang's
        ``spawn_link``): its abnormal death breaks the channel even if it
        dies *before* its first send/receive — which implicit attachment on
        first touch cannot see.  No-op under ``peer_fault="ignore"``."""
        if self.peer_fault != "break" or proc.pid in self._users:
            return
        self._users.add(proc.pid)
        self._sched.register_cleanup(
            ("chan_user", id(self)), self._on_user_death, proc=proc
        )

    def _on_user_death(self, proc: SimProcess) -> None:
        """Break the channel: fail every parked counterpart with
        :class:`PeerFailed` so nobody rendezvouses with the dead."""
        if self.broken:
            return
        self.broken = True
        self.broken_by = proc.name
        self._sched.log("chan_break", self.name, proc.name, proc=proc)
        for offer in self._senders + self._receivers:
            if not offer.claimable() or offer.proc is proc:
                continue
            if offer.proc.state is not ProcessState.BLOCKED:
                continue
            if offer.group is not None:
                offer.group.resolved = True
            self._sched.unpark(
                offer.proc, deliver(PeerFailed(self.name, proc.name))
            )
        self._senders.clear()
        self._receivers.clear()
        self._probe_offers()

    def _check_broken(self) -> None:
        if self.broken:
            raise PeerFailed(self.name, self.broken_by or "?")

    def crash_reclaim(self, proc: SimProcess) -> Optional[str]:
        """Lease reclamation: lift the quarantine a dead user caused.

        A broken channel is *quarantined* — every later operation raises
        :class:`PeerFailed`.  Once a supervisor has reclaimed the dead
        user's other holds and is about to restart it, that quarantine must
        lift or the restarted incarnation (and its partners) could never
        rendezvous again: the broken flag is reset, the corpse is dropped
        from the user set, and any stale offers are cleared.  Buffered
        messages survive — they were sent before the crash and remain
        deliverable."""
        was_user = proc.pid in self._users
        self._users.discard(proc.pid)
        if not self.broken or not was_user:
            return None
        self.broken = False
        self.broken_by = None
        self._senders = [
            o for o in self._senders
            if o.claimable() and o.proc.alive
        ]
        self._receivers = [
            o for o in self._receivers
            if o.claimable() and o.proc.alive
        ]
        self._probe_offers()
        self._sched.log("chan_reset", self.name, proc.name, proc=proc)
        return "reset"

    # ------------------------------------------------------------------
    def _first_claimable(self, offers: List[_Offer]) -> Optional[_Offer]:
        for offer in offers:
            if offer.claimable():
                return offer
        return None

    def _probe_offers(self) -> None:
        self._sched.probe("channel", "{}.senders".format(self._label),
                          len(self._senders))
        self._sched.probe("channel", "{}.receivers".format(self._label),
                          len(self._receivers))

    def _discard_dead(self) -> None:
        self._senders = [o for o in self._senders if o.claimable()]
        self._receivers = [o for o in self._receivers if o.claimable()]

    def _withdraw(self, offer: _Offer) -> None:
        """Remove a timed-out offer so no later match targets a quitter."""
        if offer in self._senders:
            self._senders.remove(offer)
        if offer in self._receivers:
            self._receivers.remove(offer)
        self._probe_offers()

    @property
    def senders_waiting(self) -> int:
        """Parked senders (live offers only)."""
        return sum(1 for o in self._senders if o.claimable())

    @property
    def receivers_waiting(self) -> int:
        """Parked receivers (live offers only)."""
        return sum(1 for o in self._receivers if o.claimable())

    # ------------------------------------------------------------------
    def send(self, value: Any, timeout: Optional[int] = None) -> Generator:
        """Offer ``value``; returns once a receiver has taken it (rendezvous)
        or once it is buffered (buffered channel with room).

        ``timeout`` bounds the wait in virtual time; expiry withdraws the
        offer and raises :class:`WaitTimeout`."""
        self._check_broken()
        self._attach()
        self._discard_dead()
        match = self._first_claimable(self._receivers)
        if match is not None:
            self._claim(match, deliver=value)
            self._sched.log("send", self.name, value)
            return
        if self._has_space():
            self._buffer.append(value)
            self._sched.log("send", self.name, value)
            return
        me = self._sched.current
        offer = _Offer(me, "send", value, None, 0)
        self._senders.append(offer)
        self._probe_offers()
        yield from self._sched.park(
            "send({})".format(self.name), self.name,
            timeout=timeout,
            on_timeout=lambda: self._withdraw(offer),
            resource=self._label,
        )
        self._sched.log("send", self.name, value)

    def receive(self, timeout: Optional[int] = None) -> Generator:
        """Take the next value; returns it.

        ``timeout`` bounds the wait in virtual time; expiry withdraws the
        offer and raises :class:`WaitTimeout`."""
        self._check_broken()
        self._attach()
        self._discard_dead()
        if self._buffer:
            value = self._buffer.pop(0)
            self._refill_from_senders()
            self._sched.log("recv", self.name, value)
            return value
        match = self._first_claimable(self._senders)
        if match is not None:
            value = match.value
            self._claim(match)
            self._sched.log("recv", self.name, value)
            return value
        me = self._sched.current
        offer = _Offer(me, "recv", None, None, 0)
        self._receivers.append(offer)
        self._probe_offers()
        value = yield from self._sched.park(
            "recv({})".format(self.name), self.name,
            timeout=timeout,
            on_timeout=lambda: self._withdraw(offer),
            resource=self._label,
        )
        self._sched.log("recv", self.name, value)
        return value

    # ------------------------------------------------------------------
    def _refill_from_senders(self) -> None:
        """After a buffered receive frees a slot, move the oldest parked
        sender's value into the buffer and release the sender."""
        while self._has_space():
            offer = self._first_claimable(self._senders)
            if offer is None:
                return
            self._buffer.append(offer.value)
            self._claim(offer)

    def _deposit(self, value: Any) -> None:
        """Non-blocking delivery, bypassing the capacity limit: hand
        ``value`` to the oldest parked receiver, or append it to the
        buffer.  Used by the dist network layer, which owns its own
        delivery discipline (drops, delays, duplicates) and models the
        mailbox as unbounded."""
        self._check_broken()
        self._discard_dead()
        match = self._first_claimable(self._receivers)
        if match is not None:
            self._claim(match, deliver=value)
        else:
            self._buffer.append(value)

    def _claim(self, offer: _Offer, deliver: Any = None) -> None:
        """Complete a rendezvous with a parked counterpart."""
        if offer in self._senders:
            self._senders.remove(offer)
        if offer in self._receivers:
            self._receivers.remove(offer)
        self._probe_offers()
        if offer.group is not None:
            offer.group.resolved = True
            wake_value = (offer.index, deliver if offer.kind == "recv" else None)
        else:
            wake_value = deliver if offer.kind == "recv" else None
        self._sched.unpark(offer.proc, wake_value)


class SendOp:
    """A ``select`` arm offering ``value`` on ``channel``."""

    __slots__ = ("channel", "value", "guard")

    def __init__(self, channel: Channel, value: Any, guard: bool = True) -> None:
        self.channel = channel
        self.value = value
        self.guard = guard


class ReceiveOp:
    """A ``select`` arm taking a value from ``channel``."""

    __slots__ = ("channel", "guard")

    def __init__(self, channel: Channel, guard: bool = True) -> None:
        self.channel = channel
        self.guard = guard


SelectArm = Union[SendOp, ReceiveOp]


def select(
    sched: Scheduler,
    arms: Sequence[SelectArm],
    timeout: Optional[int] = None,
) -> Generator:
    """Guarded alternative: wait until one enabled arm can communicate.

    Returns ``(index, value)`` — ``value`` is the received message for a
    :class:`ReceiveOp` arm and ``None`` for a :class:`SendOp` arm.  Guards
    are evaluated once, on entry (re-issue the select to re-evaluate, as a
    CSP repetitive command would).  Raises if every guard is false — the
    guarded-command failure case.

    ``timeout`` bounds the wait in virtual time; expiry withdraws every
    parked arm and raises :class:`WaitTimeout`.  An enabled arm on a broken
    channel raises :class:`PeerFailed` immediately.
    """
    enabled = [(i, arm) for i, arm in enumerate(arms) if arm.guard]
    if not enabled:
        raise IllegalOperationError("select with all guards false")
    # Immediate pass: first arm that can communicate right now wins
    # (buffered content / space counts as communicable).
    for index, arm in enabled:
        chan = arm.channel
        chan._check_broken()
        chan._attach()
        chan._discard_dead()
        if isinstance(arm, ReceiveOp):
            if chan._buffer:
                value = chan._buffer.pop(0)
                chan._refill_from_senders()
                sched.log("recv", chan.name, value)
                return (index, value)
            match = chan._first_claimable(chan._senders)
            if match is not None:
                value = match.value
                chan._claim(match)
                sched.log("recv", chan.name, value)
                return (index, value)
        else:
            match = chan._first_claimable(chan._receivers)
            if match is not None:
                chan._claim(match, deliver=arm.value)
                sched.log("send", chan.name, arm.value)
                return (index, None)
            if chan._has_space():
                chan._buffer.append(arm.value)
                sched.log("send", chan.name, arm.value)
                return (index, None)
    # Park one offer per enabled arm, linked through a select group.
    me = sched.current
    group = _SelectGroup()
    for index, arm in enabled:
        offer = _Offer(
            me,
            "recv" if isinstance(arm, ReceiveOp) else "send",
            None if isinstance(arm, ReceiveOp) else arm.value,
            group,
            index,
        )
        if isinstance(arm, ReceiveOp):
            arm.channel._receivers.append(offer)
        else:
            arm.channel._senders.append(offer)
        arm.channel._probe_offers()
    result = yield from sched.park(
        "select", "select",
        timeout=timeout,
        # Marking the group resolved withdraws every arm at once: stale
        # offers stop being claimable and are lazily discarded.
        on_timeout=lambda: setattr(group, "resolved", True),
        resource="select",
    )
    index, value = result
    arm = arms[index]
    sched.log(
        "recv" if isinstance(arm, ReceiveOp) else "send",
        arm.channel.name,
        value,
    )
    return (index, value)
