"""Eventcounts and sequencers (Reed & Kanodia, SOSP 1979).

Published at the *same conference* as the paper under reproduction, this is
the era's other lockless-flavoured proposal and a natural further target for
the methodology (experiment E11 family):

* an **eventcount** is a monotone counter of event occurrences with three
  operations — ``advance()`` (signal one occurrence), ``read()`` (current
  count), and ``await(v)`` (block until the count reaches ``v``);
* a **sequencer** issues strictly increasing ``ticket()`` values, totally
  ordering contenders.

The canonical usage patterns reproduced in the problem suite:

* mutual exclusion / FCFS: ``t = S.ticket(); E.await(t); …; E.advance()``
  — the ticket machine (request time made *explicit state*, like the CCR
  ticket protocol but provided by the construct itself);
* bounded buffer: producer ``await(out >= i - N)``, consumer
  ``await(in >= i)`` over two eventcounts ``in``/``out`` — the Reed–Kanodia
  paper's own example.

The methodology's verdict (recorded in the solution descriptions): request
time is DIRECT (tickets), history is DIRECT (counts), but request *type*
and priority have no purchase at all — eventcounts order occurrences, they
cannot distinguish kinds.
"""

from __future__ import annotations

from typing import Generator, List, Tuple

from ..runtime.process import SimProcess
from ..runtime.scheduler import Scheduler


class EventCount:
    """A monotone occurrence counter with blocking ``await``."""

    def __init__(self, sched: Scheduler, name: str = "ec") -> None:
        self._sched = sched
        self.name = name
        self._count = 0
        # waiters: (threshold, arrival, process), released when count >= threshold
        self._waiters: List[Tuple[int, int, SimProcess]] = []
        self._arrivals = 0

    def read(self) -> int:
        """The number of ``advance`` calls so far."""
        return self._count

    def advance(self) -> None:
        """Record one occurrence; wakes every waiter whose threshold is
        reached (in threshold order, then arrival order)."""
        self._count += 1
        self._sched.log("advance", self.name, self._count)
        due = [w for w in self._waiters if w[0] <= self._count]
        if due:
            self._waiters = [w for w in self._waiters if w[0] > self._count]
            self._sched.probe("eventcount", "eventcount {}".format(self.name),
                              len(self._waiters))
            for __, __, proc in sorted(due):
                self._sched.unpark(proc)

    def await_(self, value: int) -> Generator:
        """Block until the count reaches ``value`` (immediate if already
        there).  Named ``await_`` because ``await`` is a Python keyword."""
        yield from self._sched.checkpoint()
        if self._count >= value:
            return
        self._arrivals += 1
        self._waiters.append((value, self._arrivals, self._sched.current))
        self._waiters.sort()
        self._sched.probe("eventcount", "eventcount {}".format(self.name),
                          len(self._waiters))
        yield from self._sched.park(
            "await({} >= {})".format(self.name, value), self.name
        )

    @property
    def waiters(self) -> int:
        """Processes currently blocked in ``await``."""
        return len(self._waiters)


class Sequencer:
    """A ticket dispenser: each ``ticket()`` returns the next integer,
    starting at 0.  Non-blocking; ordering totality is the whole point."""

    def __init__(self, sched: Scheduler, name: str = "seq") -> None:
        self._sched = sched
        self.name = name
        self._next = 0

    def ticket(self) -> int:
        """Take the next ticket (atomic: no yield points inside)."""
        value = self._next
        self._next += 1
        self._sched.log("ticket", self.name, value)
        return value

    @property
    def issued(self) -> int:
        """How many tickets have been handed out."""
        return self._next
