"""Conditional critical regions (Brinch Hansen / Hoare, ~1972).

The paper's reference [6] (Brinch Hansen, *Operating System Principles*)
popularized the construct this module implements::

    region v when B do S

A process enters the region when no other process is inside **and** the
boolean guard ``B`` holds; guards are re-evaluated automatically whenever
the region is released (no signalling).  CCRs sit historically between
semaphores and monitors, and extending the paper's evaluation to them
(experiment E11) shows exactly where they land:

* local state (T5) and history-as-state (T6): **direct** — that is what the
  ``when`` clause is for;
* request time (T2): not expressible in a guard; only recoverable by a
  hand-rolled ticket protocol (indirect);
* priority constraints: guards can encode them only through extra shared
  variables (indirect) — the same weakness the paper's methodology exposes
  in base path expressions.

Usage::

    cell = SharedRegion(sched, {"count": 0}, name="v")
    yield from cell.enter(lambda v: v["count"] > 0)   # region v when ...
    cell.vars["count"] -= 1
    cell.leave()
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..runtime.errors import IllegalOperationError
from ..runtime.process import SimProcess
from ..runtime.scheduler import Scheduler

Guard = Optional[Callable[[Dict[str, Any]], bool]]


class SharedRegion:
    """A shared variable bundle with ``region … when …`` access.

    Args:
        sched: owning scheduler.
        variables: initial contents of the shared variable (a dict the
            guard receives and region bodies may mutate).
        name: trace label.

    Waiters are served in arrival order among those whose guards hold when
    the region frees up (FIFO re-evaluation, the common fair semantics).
    """

    def __init__(
        self,
        sched: Scheduler,
        variables: Optional[Dict[str, Any]] = None,
        name: str = "region",
    ) -> None:
        self._sched = sched
        self.name = name
        self.vars: Dict[str, Any] = dict(variables or {})
        self._label = "region {}".format(name)
        self._occ_key = ("region_occ", id(self))
        self._wait_key = ("region_wait", id(self))
        self._occupant: Optional[SimProcess] = None
        self._arrivals = 0
        # (arrival, proc, guard)
        self._waiters: List[Tuple[int, SimProcess, Guard]] = []

    # ------------------------------------------------------------------
    @property
    def occupied(self) -> bool:
        """True while some process is inside the region."""
        return self._occupant is not None

    @property
    def waiting(self) -> int:
        """Number of processes blocked on entry."""
        return len(self._waiters)

    def _guard_holds(self, guard: Guard) -> bool:
        return guard is None or bool(guard(self.vars))

    # ------------------------------------------------------------------
    def enter(self, guard: Guard = None) -> Generator:
        """``region v when guard(v) do …`` — blocks until free and true.

        Guards must be side-effect-free; they are re-evaluated every time
        the region is released.
        """
        yield from self._sched.checkpoint()
        me = self._sched.current
        if self._occupant is me:
            raise IllegalOperationError(
                "{} re-entered region {}".format(me.name, self.name)
            )
        self._arrivals += 1
        self._waiters.append((self._arrivals, me, guard))
        self._waiters.sort(key=lambda item: item[0])
        self._sched.probe("region", self._label, len(self._waiters))
        self._sched.register_cleanup(self._wait_key, self._on_waiter_death)
        if self._occupant is None:
            winner = self._pick_eligible()
            if winner is me:
                self._sched.unregister_cleanup(self._wait_key, me)
                self._take(me)
                self._sched.log("enter", self.name)
                return
            if winner is not None:
                # An earlier-arrived eligible waiter outranks us; hand the
                # region to it and park ourselves.
                self._take(winner)
                self._sched.unpark(winner)
        try:
            yield from self._sched.park(
                "region({})".format(self.name), self.name,
                resource=self._label,
            )
        finally:
            self._sched.unregister_cleanup(self._wait_key, me)
        # Woken as the region's occupant: the guard held at dispatch time,
        # and occupancy was assigned before anyone else could run, so no
        # other region body can have invalidated it (vars are only mutated
        # inside regions).
        self._sched.log("enter", self.name, "handoff")

    def leave(self) -> None:
        """Exit the region; wakes the earliest waiter whose guard holds."""
        me = self._sched.current
        if self._occupant is not me:
            raise IllegalOperationError(
                "{} left region {} occupied by {}".format(
                    me.name if me else "<sched>",
                    self.name,
                    self._occupant.name if self._occupant else None,
                )
            )
        self._sched.log("leave", self.name)
        self._release(me)
        self._dispatch()

    def _pick_eligible(self) -> Optional[SimProcess]:
        """Remove and return the earliest-arrived waiter whose guard holds
        (``None`` when nobody is eligible).  Dead waiters are discarded on
        the way (their crash cleanup normally removes them already)."""
        for position, (__, proc, guard) in enumerate(list(self._waiters)):
            if not proc.alive:
                continue
            if self._guard_holds(guard):
                self._waiters.remove((__, proc, guard))
                self._sched.probe("region", self._label, len(self._waiters))
                return proc
        return None

    def _dispatch(self) -> None:
        winner = self._pick_eligible()
        if winner is not None:
            self._take(winner)
            self._sched.unpark(winner)

    # ------------------------------------------------------------------
    # Occupancy bookkeeping (crash semantics live here)
    # ------------------------------------------------------------------
    def _take(self, proc: SimProcess) -> None:
        """Assign occupancy (possibly to a still-parked waiter: handoff),
        recording the hold and a crash cleanup so a dead occupant can never
        wedge the region."""
        self._occupant = proc
        self._sched.note_hold(self._label, proc)
        self._sched.register_cleanup(
            self._occ_key, self._on_occupant_death, proc=proc
        )

    def _release(self, proc: SimProcess) -> None:
        self._sched.unregister_cleanup(self._occ_key, proc)
        self._sched.note_release(self._label, proc)
        self._occupant = None

    def _on_waiter_death(self, proc: SimProcess) -> None:
        """A dead entry waiter is dequeued — no dispatch ever targets it."""
        for entry in self._waiters:
            if entry[1] is proc:
                self._waiters.remove(entry)
                self._sched.probe("region", self._label, len(self._waiters))
                return

    def _on_occupant_death(self, proc: SimProcess) -> None:
        """A dead occupant releases the region — survivors re-evaluate
        guards and proceed (the region is fault-containing)."""
        if self._occupant is not proc:
            return
        self._sched.log("leave", self.name, "crash_release", proc=proc)
        self._sched.note_release(self._label, proc)
        self._occupant = None
        self._dispatch()

    # ------------------------------------------------------------------
    # Recovery hook (lease reclamation)
    # ------------------------------------------------------------------
    def crash_reclaim(self, proc: SimProcess) -> Optional[str]:
        """Lease reclamation: defensive sweep mirroring the crash cleanups
        (release a dead occupant, dequeue a dead waiter)."""
        if self._occupant is proc:
            self._on_occupant_death(proc)
            return "released"
        if any(entry[1] is proc for entry in self._waiters):
            self._on_waiter_death(proc)
            return "dequeued"
        return None

    # ------------------------------------------------------------------
    def region(self, guard: Guard, body: Callable[[Dict[str, Any]], Any]) -> Generator:
        """One-shot form: enter, run ``body(vars)``, leave.

        ``body`` is a plain function (regions should be short); its return
        value is passed through.
        """
        yield from self.enter(guard)
        try:
            result = body(self.vars)
        finally:
            self.leave()
        return result
