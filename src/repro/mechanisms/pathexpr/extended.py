"""Extended ("open") path expressions.

§5.1.2 of the paper traces how later path-expression versions patched the
weaknesses its methodology exposed:

* Habermann 1975 added a **priority operator** and a conditional operator for
  resource/synchronization state;
* Flon & Habermann 1976 added a **numeric operator** for explicit
  synchronization-state and history counts;
* Andler 1977/78 added **predicates and state variables**.

This module reproduces that lineage as :class:`GuardedPathResource`: a
:class:`~repro.mechanisms.pathexpr.runtime.PathResource` wrapped in a guard
layer.

* ``guards`` attach a predicate to an operation (Andler's predicates): a
  request parks until the predicate is true.  Predicates may read resource
  state, the built-in start/complete counters (the numeric operator), or any
  user state variable.
* ``priorities`` order the wake-up scan (the priority operator): among
  parked requests whose predicates hold, the highest-priority one proceeds
  first; ties break by arrival (FIFO).
* predicates are re-evaluated after every operation start/end — automatic
  signalling, no user code.

The guard layer runs *before* the base path prologues, so base paths still
enforce ordering/exclusion; guards add the conditions base paths cannot
express (parameters T3, local state T5, direct priority).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ...runtime.process import SimProcess
from .runtime import PathResource

GuardPredicate = Callable[["GuardedPathResource", Tuple[Any, ...]], bool]


class GuardedPathResource(PathResource):
    """A path-protected resource with Andler-style predicates and priorities.

    Args:
        guards: ``{op: predicate}``; ``predicate(res, args)`` must be
            side-effect-free and non-blocking.  Operations without a guard
            pass straight through to the base prologue.
        priorities: ``{op: int}``; larger is more urgent.  Default 0.
        (remaining arguments as for :class:`PathResource`)
    """

    def __init__(
        self,
        sched,
        paths,
        operations: Optional[Dict[str, Callable]] = None,
        guards: Optional[Dict[str, GuardPredicate]] = None,
        priorities: Optional[Dict[str, int]] = None,
        name: str = "openpath",
        wake_policy: str = "fifo",
        seed: int = 0,
    ) -> None:
        super().__init__(
            sched,
            paths,
            operations=operations,
            name=name,
            wake_policy=wake_policy,
            seed=seed,
        )
        self.guards: Dict[str, GuardPredicate] = dict(guards or {})
        self.priorities: Dict[str, int] = dict(priorities or {})
        self.state: Dict[str, Any] = {}  # Andler's state variables
        # Parked guarded requests: (neg_priority, arrival, proc, op, args).
        self._gate: List[Tuple[int, int, SimProcess, str, Tuple[Any, ...]]] = []
        self._arrivals = 0
        self.add_listener(self._on_event)

    # ------------------------------------------------------------------
    def set_guard(self, op: str, predicate: GuardPredicate) -> None:
        """Attach (or replace) the predicate for ``op``."""
        self.guards[op] = predicate

    def set_priority(self, op: str, priority: int) -> None:
        """Attach (or replace) the wake priority for ``op``."""
        self.priorities[op] = priority

    def _guard_holds(self, op: str, args: Tuple[Any, ...]) -> bool:
        predicate = self.guards.get(op)
        if predicate is None:
            return True
        return bool(predicate(self, args))

    # ------------------------------------------------------------------
    def invoke(self, op: str, *args: Any) -> Generator:
        """As :meth:`PathResource.invoke`, but first clears the guard.

        The guard is re-checked after every wake-up (Mesa discipline): state
        may have changed between the wake and this process actually running.
        Arrival order is preserved across re-parks so FIFO fairness holds.
        """
        self._arrivals += 1
        arrival = self._arrivals
        while not self._guard_holds(op, args):
            entry = (
                -self.priorities.get(op, 0),
                arrival,
                self._sched.current,
                op,
                args,
            )
            self._gate.append(entry)
            self._gate.sort(key=lambda item: (item[0], item[1]))
            yield from self._sched.park(
                "guard({}.{})".format(self.name, op), op
            )
        result = yield from super().invoke(op, *args)
        return result

    # ------------------------------------------------------------------
    def _on_event(self, phase: str, op: str, detail: Any) -> None:
        """Automatic signalling: after any state change, admit every parked
        request (best priority first) whose predicate now holds."""
        if phase not in ("op_start", "op_end"):
            return
        self.recheck_guards()

    def recheck_guards(self) -> None:
        """Re-evaluate all parked guards; wake the newly-eligible ones.

        Called automatically after each operation event; call it manually
        after mutating :attr:`state` outside any operation.
        """
        admitted = True
        while admitted:
            admitted = False
            for index, entry in enumerate(self._gate):
                __, __, proc, parked_op, parked_args = entry
                if self._guard_holds(parked_op, parked_args):
                    del self._gate[index]
                    self._sched.unpark(proc)
                    admitted = True
                    break

    @property
    def gate_depth(self) -> int:
        """Number of requests currently parked on guards."""
        return len(self._gate)
