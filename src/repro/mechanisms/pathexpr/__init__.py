"""Path expressions (substrates S5–S6).

The Campbell–Habermann mechanism evaluated in §5.1 of the paper, plus the
extended ("open") variants its later versions introduced.

Public surface:

* :func:`parse_path` / :func:`parse_paths` — concrete syntax → AST.
* AST node classes — :class:`PathExpr`, :class:`Name`, :class:`Sequence`,
  :class:`Selection`, :class:`Burst`.
* :class:`PathResource` — a resource protected by compiled paths.
* :class:`GuardedPathResource` — predicates, state variables, priorities.
* :class:`PathCompiler` and action classes — the semaphore translation.
* :class:`PathSyntaxError`, :class:`PathCompileError`.
"""

from .ast import Burst, Name, PathExpr, PathNode, Selection, Sequence
from .compiler import (
    Action,
    BurstCounter,
    BurstEnter,
    BurstExit,
    PAction,
    PathCompileError,
    PathCompiler,
    VAction,
)
from .extended import GuardedPathResource
from .parser import PathSyntaxError, parse_path, parse_paths
from .runtime import PathResource

__all__ = [
    "Action",
    "Burst",
    "BurstCounter",
    "BurstEnter",
    "BurstExit",
    "GuardedPathResource",
    "Name",
    "PAction",
    "PathCompileError",
    "PathCompiler",
    "PathExpr",
    "PathNode",
    "PathResource",
    "PathSyntaxError",
    "Selection",
    "Sequence",
    "VAction",
    "parse_path",
    "parse_paths",
]
