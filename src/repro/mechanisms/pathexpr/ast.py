"""Abstract syntax for path expressions.

The grammar is the Campbell–Habermann (1974) variant used in the paper's
Figures 1 and 2:

.. code-block:: text

    path      ::= 'path' selection 'end'
    selection ::= sequence (',' sequence)*          -- exclusive selection
    sequence  ::= element (';' element)*            -- strict ordering
    element   ::= NAME                              -- one operation execution
                | '{' selection '}'                 -- burst: concurrent repetitions
                | '(' selection ')'                 -- grouping

Repetition is implicit: the whole path body repeats forever.  Selection
(``,``) binds loosest, sequencing (``;``) tighter, so
``path a ; b , c end`` parses as ``(a ; b) , c``; the paper's figures always
parenthesize explicitly, so both conventions read them identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set, Tuple


class PathNode:
    """Base class for all AST nodes."""

    def operation_names(self) -> Set[str]:
        """All operation names appearing under this node."""
        raise NotImplementedError

    def unparse(self) -> str:
        """Render back to concrete syntax (canonical spacing)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Name(PathNode):
    """A single operation occurrence."""

    value: str

    def operation_names(self) -> Set[str]:
        return {self.value}

    def unparse(self) -> str:
        return self.value


@dataclass(frozen=True)
class Sequence(PathNode):
    """``a ; b ; c`` — each element may start only after its predecessor
    (in the current cycle) has finished."""

    elements: Tuple[PathNode, ...]

    def operation_names(self) -> Set[str]:
        names: Set[str] = set()
        for el in self.elements:
            names |= el.operation_names()
        return names

    def unparse(self) -> str:
        parts = []
        for el in self.elements:
            text = el.unparse()
            # Parenthesize nested selections (precedence) and nested
            # sequences (so explicit grouping survives a round-trip).
            if isinstance(el, (Selection, Sequence)):
                text = "({})".format(text)
            parts.append(text)
        return " ; ".join(parts)


@dataclass(frozen=True)
class Selection(PathNode):
    """``a , b`` — exactly one alternative executes per cycle."""

    alternatives: Tuple[PathNode, ...]

    def operation_names(self) -> Set[str]:
        names: Set[str] = set()
        for alt in self.alternatives:
            names |= alt.operation_names()
        return names

    def unparse(self) -> str:
        parts = []
        for alt in self.alternatives:
            text = alt.unparse()
            if isinstance(alt, Selection):  # keep explicit grouping
                text = "({})".format(text)
            parts.append(text)
        return " , ".join(parts)


@dataclass(frozen=True)
class Burst(PathNode):
    """``{ a }`` — any number of concurrent executions; the path position
    advances only when the last one finishes ("first in opens, last out
    closes")."""

    body: PathNode

    def operation_names(self) -> Set[str]:
        return self.body.operation_names()

    def unparse(self) -> str:
        return "{{ {} }}".format(self.body.unparse())


@dataclass(frozen=True)
class PathExpr(PathNode):
    """A complete ``path ... end`` declaration (implicitly cyclic).

    ``multiplicity`` is the Flon–Habermann *numeric operator*
    (``path N : body end``): up to N activations of the cycle may be in
    flight simultaneously — the construct §5.1.2 says was added to improve
    "explicit use of synchronization state information, as well as history
    information" (e.g. it bounds a buffer at capacity N).
    """

    body: PathNode
    multiplicity: int = 1

    def operation_names(self) -> Set[str]:
        return self.body.operation_names()

    def unparse(self) -> str:
        if self.multiplicity != 1:
            return "path {} : ( {} ) end".format(
                self.multiplicity, self.body.unparse()
            )
        return "path {} end".format(self.body.unparse())


def _normalize(node: PathNode) -> PathNode:
    """Collapse single-element sequences/selections (parser helper)."""
    if isinstance(node, Sequence) and len(node.elements) == 1:
        return node.elements[0]
    if isinstance(node, Selection) and len(node.alternatives) == 1:
        return node.alternatives[0]
    return node
