"""The Campbell–Habermann semaphore translation for path expressions.

A path declaration compiles to a set of *prologue* and *epilogue* actions per
operation name, exactly following the translation rules of Campbell &
Habermann, "The Specification of Process Synchronization by Path Expressions"
(LNCS 16, 1974):

* the whole (cyclic) path owns one semaphore ``S`` initialized to 1; the
  body is translated with prologue source ``P(S)`` and epilogue sink ``V(S)``;
* a **sequence** ``e1 ; e2`` introduces an internal semaphore ``m`` (init 0):
  ``e1`` keeps the incoming prologue and gets epilogue ``V(m)``, ``e2`` gets
  prologue ``P(m)`` and keeps the outgoing epilogue;
* a **selection** ``e1 , e2`` hands the *same* prologue/epilogue pair to each
  alternative — mutual exclusion between alternatives falls out of the shared
  semaphore, and FIFO semaphores realize the paper's added assumption that
  "the selection operator always chooses the process that has been waiting
  longest" (§5.1);
* a **burst** ``{ e }`` wraps its child's boundary in a counter: the *first*
  activation performs the inherited prologue, the *last* completion performs
  the inherited epilogue, and any number of activations may overlap in
  between.

Actions compose recursively (a burst's boundary action may itself be another
burst's boundary action), which is how nested ``{ { a } }`` and
``{ (a ; b) }`` shapes come out right.

Restriction (as in Campbell–Habermann): an operation name may occur at most
once per path declaration; it may of course occur in many different paths,
in which case its prologues run in path-declaration order.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Tuple

from ...runtime.errors import IllegalOperationError
from ...runtime.primitives import Mutex, Semaphore
from ...runtime.scheduler import Scheduler
from .ast import Burst, Name, PathExpr, PathNode, Selection, Sequence


class PathCompileError(ValueError):
    """Raised when a path declaration cannot be translated."""


class Action:
    """A micro-operation executed as part of an operation's prologue or
    epilogue.  ``execute`` is a generator and may block (prologue side);
    ``timeout`` bounds any blocking in virtual time (:class:`WaitTimeout`).

    The two ``*_nonblocking`` hooks power crash recovery
    (:meth:`PathResource.invoke`): they perform or undo the action's
    semaphore effect *without blocking* when that is possible, returning
    ``True`` on success.  Burst boundaries need the region lock and so
    cannot recover this way — they return ``False`` and recovery logs the
    abandonment instead of wedging.
    """

    def execute(self, timeout: Optional[int] = None) -> Generator:
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable rendering (used in solution descriptions)."""
        raise NotImplementedError

    def fire_nonblocking(self) -> bool:
        """Perform the action's effect without blocking (epilogue recovery
        after the body ran); ``False`` when the action may block."""
        return False

    def undo_nonblocking(self) -> bool:
        """Reverse the action's effect without blocking (prologue rollback
        when the body never ran); ``False`` when not reversible this way."""
        return False


class PAction(Action):
    """``P(sem)`` — may block."""

    def __init__(self, sem: Semaphore) -> None:
        self.sem = sem

    def execute(self, timeout: Optional[int] = None) -> Generator:
        yield from self.sem.p(timeout=timeout)

    def undo_nonblocking(self) -> bool:
        self.sem.v()
        return True

    def describe(self) -> str:
        return "P({})".format(self.sem.name)


class VAction(Action):
    """``V(sem)`` — never blocks."""

    def __init__(self, sem: Semaphore) -> None:
        self.sem = sem

    def execute(self, timeout: Optional[int] = None) -> Generator:
        self.sem.v()
        return
        yield  # pragma: no cover - makes this a generator function

    def fire_nonblocking(self) -> bool:
        self.sem.v()
        return True

    def describe(self) -> str:
        return "V({})".format(self.sem.name)


class BurstCounter:
    """Shared occupancy counter for one ``{ ... }`` region."""

    def __init__(self, sched: Scheduler, name: str) -> None:
        self.lock = Mutex(sched, name + ".lock")
        self.count = 0
        self.name = name


class BurstEnter(Action):
    """First activation of a burst performs the inherited boundary action.

    Faithful to the original translation, the region lock is *held* while the
    boundary action blocks: a burst that cannot open also holds back everyone
    queued behind it, preserving arrival order into the region.
    """

    def __init__(self, counter: BurstCounter, boundary: Action) -> None:
        self.counter = counter
        self.boundary = boundary

    def execute(self, timeout: Optional[int] = None) -> Generator:
        yield from self.counter.lock.acquire(timeout=timeout)
        self.counter.count += 1
        if self.counter.count == 1:
            try:
                yield from self.boundary.execute(timeout=timeout)
            except BaseException:
                self.counter.count -= 1  # the region never opened
                try:
                    self.counter.lock.release()
                except IllegalOperationError:
                    pass  # a crash already released the lock for us
                raise
        self.counter.lock.release()

    def describe(self) -> str:
        return "burst_enter({}, {})".format(
            self.counter.name, self.boundary.describe()
        )


class BurstExit(Action):
    """Last completion of a burst performs the inherited boundary action."""

    def __init__(self, counter: BurstCounter, boundary: Action) -> None:
        self.counter = counter
        self.boundary = boundary

    def execute(self, timeout: Optional[int] = None) -> Generator:
        yield from self.counter.lock.acquire(timeout=timeout)
        self.counter.count -= 1
        if self.counter.count == 0:
            try:
                yield from self.boundary.execute(timeout=timeout)
            except BaseException:
                self.counter.count += 1  # the region never closed
                try:
                    self.counter.lock.release()
                except IllegalOperationError:
                    pass  # a crash already released the lock for us
                raise
        self.counter.lock.release()

    def describe(self) -> str:
        return "burst_exit({}, {})".format(
            self.counter.name, self.boundary.describe()
        )


OpTable = Dict[str, Tuple[Action, Action]]


class PathCompiler:
    """Compiles one :class:`PathExpr` into per-operation action pairs."""

    def __init__(
        self,
        sched: Scheduler,
        path_name: str,
        wake_policy: str = "fifo",
        seed: int = 0,
    ) -> None:
        self._sched = sched
        self._path_name = path_name
        self._wake_policy = wake_policy
        self._seed = seed
        self._sem_counter = 0
        self._burst_counter = 0
        self.table: OpTable = {}

    def compile(self, path: PathExpr) -> OpTable:
        """Return ``{operation: (prologue_action, epilogue_action)}``.

        The cycle semaphore starts at the path's multiplicity: ``path N :
        body end`` keeps up to N cycles in flight (numeric operator).
        """
        start = self._new_semaphore(initial=path.multiplicity, label="cycle")
        self._translate(path.body, PAction(start), VAction(start))
        return self.table

    # ------------------------------------------------------------------
    def _new_semaphore(self, initial: int, label: str) -> Semaphore:
        name = "{}.{}{}".format(self._path_name, label, self._sem_counter)
        self._sem_counter += 1
        return Semaphore(
            self._sched,
            initial=initial,
            name=name,
            wake_policy=self._wake_policy,
            seed=self._seed,
        )

    def _translate(self, node: PathNode, pre: Action, post: Action) -> None:
        if isinstance(node, Name):
            if node.value in self.table:
                raise PathCompileError(
                    "operation {!r} occurs twice in {}; the Campbell-"
                    "Habermann translation requires at most one occurrence "
                    "per path".format(node.value, self._path_name)
                )
            self.table[node.value] = (pre, post)
        elif isinstance(node, Sequence):
            elements = node.elements
            links = [
                self._new_semaphore(initial=0, label="seq")
                for __ in range(len(elements) - 1)
            ]
            for index, element in enumerate(elements):
                element_pre = pre if index == 0 else PAction(links[index - 1])
                element_post = (
                    post if index == len(elements) - 1 else VAction(links[index])
                )
                self._translate(element, element_pre, element_post)
        elif isinstance(node, Selection):
            for alternative in node.alternatives:
                self._translate(alternative, pre, post)
        elif isinstance(node, Burst):
            counter = BurstCounter(
                self._sched,
                "{}.burst{}".format(self._path_name, self._burst_counter),
            )
            self._burst_counter += 1
            self._translate(
                node.body, BurstEnter(counter, pre), BurstExit(counter, post)
            )
        else:  # pragma: no cover - parser only produces the above
            raise PathCompileError("unknown node type {!r}".format(node))
