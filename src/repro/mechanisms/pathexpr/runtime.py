"""Runtime enforcement of path expressions over a resource.

A :class:`PathResource` bundles a set of path declarations with the
operations they govern.  Invoking an operation runs, in order:

1. one prologue action per path that names the operation (in path-declaration
   order) — this is where blocking happens;
2. the operation body (a generator; it may invoke *other* operations of the
   same resource, which is how the paper's Figure 1 programs nest, e.g.
   ``READ = begin requestread end`` with ``requestread = begin read end``);
3. one epilogue action per path, same order.

Operations named in paths but given no body act as pure synchronization
gates — the "synchronization procedures" whose necessity §5.1.1 of the paper
identifies as a path-expression weakness.

Crash semantics (DESIGN.md "Fault model"): an operation that dies (or whose
body raises) is recovered so the compiled semaphore network stays
consistent.  If the body never started, completed prologue ``P``s are undone
in reverse (a ``V`` on the same semaphore); if it did start, the remaining
epilogue ``V``s are fired forward.  Both directions are non-blocking;
burst-region boundaries, which need the region lock, cannot be recovered
this way and are *abandoned with a trace log* (``path_abandon``) — the
honest middle ground between wedging survivors and forging lock ownership.
``invoke(..., timeout=...)`` bounds prologue blocking; on
:class:`WaitTimeout` the same rollback runs before the exception surfaces.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence as Seq, Tuple, Union

from ...runtime.errors import IllegalOperationError
from ...runtime.process import SimProcess
from ...runtime.scheduler import Scheduler
from .ast import PathExpr
from .compiler import Action, OpTable, PathCompiler
from .parser import parse_path, parse_paths

PathInput = Union[str, PathExpr]
EventListener = Callable[[str, str, Any], None]


class PathResource:
    """A shared resource protected by one or more path expressions.

    Args:
        sched: owning scheduler.
        paths: either one string containing several ``path ... end``
            declarations, or a list of strings / parsed :class:`PathExpr`.
        operations: mapping of operation name to body.  A body is a
            generator function ``body(res, *args)`` (it may block or invoke
            other operations via ``yield from res.invoke(...)``) or a plain
            function for non-blocking bodies.  Operations named in paths but
            absent here are no-op gates; bodies for names not mentioned in
            any path run completely unsynchronized.
        name: trace label.
        wake_policy: passed to every internal semaphore; ``"fifo"`` realizes
            the paper's longest-waiting selection rule (ablated in E9).
    """

    def __init__(
        self,
        sched: Scheduler,
        paths: Union[str, Seq[PathInput]],
        operations: Optional[Dict[str, Callable]] = None,
        name: str = "pathres",
        wake_policy: str = "fifo",
        seed: int = 0,
    ) -> None:
        self._sched = sched
        self.name = name
        self.paths: List[PathExpr] = self._parse_inputs(paths)
        self._tables: List[OpTable] = []
        for index, path in enumerate(self.paths):
            compiler = PathCompiler(
                sched,
                "{}.path{}".format(name, index),
                wake_policy=wake_policy,
                seed=seed,
            )
            self._tables.append(compiler.compile(path))
        self._bodies: Dict[str, Optional[Callable]] = {}
        self._ops: Dict[str, List[Tuple[Action, Action]]] = {}
        for table in self._tables:
            for op, pair in table.items():
                self._ops.setdefault(op, []).append(pair)
                self._bodies.setdefault(op, None)
        for op, body in (operations or {}).items():
            self.define(op, body)
        self.listeners: List[EventListener] = []
        self._started: Dict[str, int] = {}
        self._completed: Dict[str, int] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def _parse_inputs(paths: Union[str, Seq[PathInput]]) -> List[PathExpr]:
        if isinstance(paths, str):
            return parse_paths(paths)
        parsed: List[PathExpr] = []
        for item in paths:
            if isinstance(item, PathExpr):
                parsed.append(item)
            else:
                parsed.append(parse_path(item))
        return parsed

    # ------------------------------------------------------------------
    @property
    def operation_names(self) -> List[str]:
        """Every operation known to the resource (path-named or body-only)."""
        return sorted(set(self._ops) | set(self._bodies))

    def define(self, op: str, body: Callable) -> None:
        """Attach (or replace) the body of operation ``op``."""
        self._bodies[op] = body

    def started(self, op: str) -> int:
        """How many executions of ``op`` have begun (history info, T6)."""
        return self._started.get(op, 0)

    def completed(self, op: str) -> int:
        """How many executions of ``op`` have finished (history info, T6)."""
        return self._completed.get(op, 0)

    def active(self, op: str) -> int:
        """Executions of ``op`` currently in progress (sync state, T4)."""
        return self.started(op) - self.completed(op)

    def add_listener(self, listener: EventListener) -> None:
        """Subscribe to (phase, op, detail) notifications; phases are
        ``request``, ``op_start``, ``op_end``.  Used by the extended-path
        engine to re-evaluate predicates."""
        self.listeners.append(listener)

    def _notify(self, phase: str, op: str, detail: Any = None) -> None:
        for listener in self.listeners:
            listener(phase, op, detail)

    # ------------------------------------------------------------------
    def invoke(
        self, op: str, *args: Any, timeout: Optional[int] = None
    ) -> Generator:
        """Execute operation ``op`` under path control.

        Returns the body's return value.  Must be delegated to with
        ``yield from``.  ``timeout`` bounds each blocking prologue step in
        virtual time (:class:`WaitTimeout`); if the operation dies or raises
        part-way through, the semaphore network is recovered (see module
        docstring).
        """
        if op not in self._bodies and op not in self._ops:
            raise IllegalOperationError(
                "unknown operation {!r} on {}".format(op, self.name)
            )
        pairs = self._ops.get(op, [])
        self._sched.log("request", "{}.{}".format(self.name, op), args or None)
        self._notify("request", op, args)
        # Per-invocation progress record; drives idempotent crash recovery.
        progress = {"prologues": 0, "body": False, "counted": False,
                    "epilogues": 0, "recovered": False}
        key = ("path_op", id(self))
        self._sched.register_cleanup(
            key, lambda proc: self._recover(op, pairs, progress)
        )
        try:
            for index, (prologue, __) in enumerate(pairs):
                yield from prologue.execute(timeout=timeout)
                progress["prologues"] = index + 1
            self._started[op] = self._started.get(op, 0) + 1
            progress["body"] = True
            self._sched.log("op_start", "{}.{}".format(self.name, op))
            self._sched.probe("path", "path {}.{}".format(self.name, op),
                              self.active(op))
            self._notify("op_start", op, args)
            body = self._bodies.get(op)
            result = None
            if body is not None:
                if inspect.isgeneratorfunction(body):
                    result = yield from body(self, *args)
                else:
                    result = body(self, *args)
            self._completed[op] = self._completed.get(op, 0) + 1
            progress["counted"] = True
            self._sched.log("op_end", "{}.{}".format(self.name, op))
            self._sched.probe("path", "path {}.{}".format(self.name, op),
                              self.active(op))
            self._notify("op_end", op, args)
            for index, (__, epilogue) in enumerate(pairs):
                yield from epilogue.execute(timeout=timeout)
                progress["epilogues"] = index + 1
            progress["recovered"] = True  # complete: recovery is a no-op
        except BaseException:
            # Covers body exceptions, prologue/epilogue timeouts, and the
            # GeneratorExit of a kill (where the registered cleanup usually
            # ran first — _recover is idempotent either way).
            self._recover(op, pairs, progress)
            raise
        finally:
            self._sched.unregister_cleanup(key)
        return result

    def _recover(self, op: str, pairs, progress: dict) -> None:
        """Repair the semaphore network after a crashed/failed invocation.

        Idempotent: the first call (registered cleanup or the ``except``
        path in :meth:`invoke`, whichever fires first) does the work."""
        if progress["recovered"]:
            return
        progress["recovered"] = True
        label = "{}.{}".format(self.name, op)
        if progress["body"]:
            # The body started: complete the cycle forward so successors
            # (sequence/cycle semaphores) are not starved.
            if not progress["counted"]:
                self._completed[op] = self._completed.get(op, 0) + 1
                self._sched.log("op_abort", label)
                self._notify("op_end", op, None)
            for __, epilogue in pairs[progress["epilogues"]:]:
                if epilogue.fire_nonblocking():
                    self._sched.log("path_recover", label,
                                    "fired {}".format(epilogue.describe()))
                else:
                    self._sched.log("path_abandon", label,
                                    epilogue.describe())
        else:
            # The body never started: roll the completed prologues back.
            for prologue, __ in reversed(pairs[:progress["prologues"]]):
                if prologue.undo_nonblocking():
                    self._sched.log("path_recover", label,
                                    "undid {}".format(prologue.describe()))
                else:
                    self._sched.log("path_abandon", label,
                                    prologue.describe())

    def crash_reclaim(self, proc: SimProcess) -> Optional[str]:
        """Lease reclamation hook (recovery runtime).

        Path expressions are already self-recovering: every ``invoke``
        registers a per-invocation cleanup that repairs the semaphore
        network the moment its process dies (see :meth:`_recover`), so by
        the time a lease manager sweeps a corpse there is nothing left to
        revoke.  Returns ``None`` (nothing reclaimed) by design.
        """
        return None

    def operation(self, op: str) -> Callable[..., Generator]:
        """A convenience callable: ``read = res.operation('read')`` then
        ``yield from read(args...)``."""
        def call(*args: Any) -> Generator:
            result = yield from self.invoke(op, *args)
            return result

        call.__name__ = op
        return call

    def describe_ops(self) -> Dict[str, List[str]]:
        """For each operation, the compiled prologue/epilogue actions —
        machine-readable structure used by the evaluation methodology."""
        described: Dict[str, List[str]] = {}
        for op, pairs in self._ops.items():
            described[op] = [
                "pre:{} post:{}".format(pre.describe(), post.describe())
                for pre, post in pairs
            ]
        return described
