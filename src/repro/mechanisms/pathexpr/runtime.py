"""Runtime enforcement of path expressions over a resource.

A :class:`PathResource` bundles a set of path declarations with the
operations they govern.  Invoking an operation runs, in order:

1. one prologue action per path that names the operation (in path-declaration
   order) — this is where blocking happens;
2. the operation body (a generator; it may invoke *other* operations of the
   same resource, which is how the paper's Figure 1 programs nest, e.g.
   ``READ = begin requestread end`` with ``requestread = begin read end``);
3. one epilogue action per path, same order.

Operations named in paths but given no body act as pure synchronization
gates — the "synchronization procedures" whose necessity §5.1.1 of the paper
identifies as a path-expression weakness.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence as Seq, Tuple, Union

from ...runtime.errors import IllegalOperationError
from ...runtime.scheduler import Scheduler
from .ast import PathExpr
from .compiler import Action, OpTable, PathCompiler
from .parser import parse_path, parse_paths

PathInput = Union[str, PathExpr]
EventListener = Callable[[str, str, Any], None]


class PathResource:
    """A shared resource protected by one or more path expressions.

    Args:
        sched: owning scheduler.
        paths: either one string containing several ``path ... end``
            declarations, or a list of strings / parsed :class:`PathExpr`.
        operations: mapping of operation name to body.  A body is a
            generator function ``body(res, *args)`` (it may block or invoke
            other operations via ``yield from res.invoke(...)``) or a plain
            function for non-blocking bodies.  Operations named in paths but
            absent here are no-op gates; bodies for names not mentioned in
            any path run completely unsynchronized.
        name: trace label.
        wake_policy: passed to every internal semaphore; ``"fifo"`` realizes
            the paper's longest-waiting selection rule (ablated in E9).
    """

    def __init__(
        self,
        sched: Scheduler,
        paths: Union[str, Seq[PathInput]],
        operations: Optional[Dict[str, Callable]] = None,
        name: str = "pathres",
        wake_policy: str = "fifo",
        seed: int = 0,
    ) -> None:
        self._sched = sched
        self.name = name
        self.paths: List[PathExpr] = self._parse_inputs(paths)
        self._tables: List[OpTable] = []
        for index, path in enumerate(self.paths):
            compiler = PathCompiler(
                sched,
                "{}.path{}".format(name, index),
                wake_policy=wake_policy,
                seed=seed,
            )
            self._tables.append(compiler.compile(path))
        self._bodies: Dict[str, Optional[Callable]] = {}
        self._ops: Dict[str, List[Tuple[Action, Action]]] = {}
        for table in self._tables:
            for op, pair in table.items():
                self._ops.setdefault(op, []).append(pair)
                self._bodies.setdefault(op, None)
        for op, body in (operations or {}).items():
            self.define(op, body)
        self.listeners: List[EventListener] = []
        self._started: Dict[str, int] = {}
        self._completed: Dict[str, int] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def _parse_inputs(paths: Union[str, Seq[PathInput]]) -> List[PathExpr]:
        if isinstance(paths, str):
            return parse_paths(paths)
        parsed: List[PathExpr] = []
        for item in paths:
            if isinstance(item, PathExpr):
                parsed.append(item)
            else:
                parsed.append(parse_path(item))
        return parsed

    # ------------------------------------------------------------------
    @property
    def operation_names(self) -> List[str]:
        """Every operation known to the resource (path-named or body-only)."""
        return sorted(set(self._ops) | set(self._bodies))

    def define(self, op: str, body: Callable) -> None:
        """Attach (or replace) the body of operation ``op``."""
        self._bodies[op] = body

    def started(self, op: str) -> int:
        """How many executions of ``op`` have begun (history info, T6)."""
        return self._started.get(op, 0)

    def completed(self, op: str) -> int:
        """How many executions of ``op`` have finished (history info, T6)."""
        return self._completed.get(op, 0)

    def active(self, op: str) -> int:
        """Executions of ``op`` currently in progress (sync state, T4)."""
        return self.started(op) - self.completed(op)

    def add_listener(self, listener: EventListener) -> None:
        """Subscribe to (phase, op, detail) notifications; phases are
        ``request``, ``op_start``, ``op_end``.  Used by the extended-path
        engine to re-evaluate predicates."""
        self.listeners.append(listener)

    def _notify(self, phase: str, op: str, detail: Any = None) -> None:
        for listener in self.listeners:
            listener(phase, op, detail)

    # ------------------------------------------------------------------
    def invoke(self, op: str, *args: Any) -> Generator:
        """Execute operation ``op`` under path control.

        Returns the body's return value.  Must be delegated to with
        ``yield from``.
        """
        if op not in self._bodies and op not in self._ops:
            raise IllegalOperationError(
                "unknown operation {!r} on {}".format(op, self.name)
            )
        pairs = self._ops.get(op, [])
        self._sched.log("request", "{}.{}".format(self.name, op), args or None)
        self._notify("request", op, args)
        for prologue, __ in pairs:
            yield from prologue.execute()
        self._started[op] = self._started.get(op, 0) + 1
        self._sched.log("op_start", "{}.{}".format(self.name, op))
        self._notify("op_start", op, args)
        body = self._bodies.get(op)
        result = None
        if body is not None:
            if inspect.isgeneratorfunction(body):
                result = yield from body(self, *args)
            else:
                result = body(self, *args)
        self._completed[op] = self._completed.get(op, 0) + 1
        self._sched.log("op_end", "{}.{}".format(self.name, op))
        self._notify("op_end", op, args)
        for __, epilogue in pairs:
            yield from epilogue.execute()
        return result

    def operation(self, op: str) -> Callable[..., Generator]:
        """A convenience callable: ``read = res.operation('read')`` then
        ``yield from read(args...)``."""
        def call(*args: Any) -> Generator:
            result = yield from self.invoke(op, *args)
            return result

        call.__name__ = op
        return call

    def describe_ops(self) -> Dict[str, List[str]]:
        """For each operation, the compiled prologue/epilogue actions —
        machine-readable structure used by the evaluation methodology."""
        described: Dict[str, List[str]] = {}
        for op, pairs in self._ops.items():
            described[op] = [
                "pre:{} post:{}".format(pre.describe(), post.describe())
                for pre, post in pairs
            ]
        return described
