"""Parser for the path-expression concrete syntax.

Hand-written tokenizer + recursive-descent parser; see
:mod:`repro.mechanisms.pathexpr.ast` for the grammar.  Errors carry position
information so malformed paths in user programs are easy to pinpoint.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

from .ast import Burst, Name, PathExpr, PathNode, Selection, Sequence, _normalize


class PathSyntaxError(ValueError):
    """Raised on malformed path-expression text."""

    def __init__(self, message: str, position: int, text: str) -> None:
        super().__init__(
            "{} at position {}: ...{!r}".format(message, position, text[position:position + 20])
        )
        self.position = position


@dataclass(frozen=True)
class _Token:
    kind: str  # 'path', 'end', 'name', ';', ',', '{', '}', '(', ')'
    value: str
    position: int


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<name>[A-Za-z_][A-Za-z0-9_]*)|(?P<number>\d+)|(?P<punct>[;,{}():]))"
)


_COMMENT_RE = re.compile(r"--[^\n]*")


def tokenize(text: str) -> List[_Token]:
    """Split path text into tokens; raises :class:`PathSyntaxError` on junk.

    ``--`` starts a comment running to end of line (stripped before
    tokenizing, preserving character positions for error messages).
    """
    text = _COMMENT_RE.sub(lambda m: " " * len(m.group(0)), text)
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            remainder = text[position:]
            if remainder.strip() == "":
                break
            # Point at the offending character, not the whitespace before it.
            offender = position + len(remainder) - len(remainder.lstrip())
            raise PathSyntaxError("unexpected character", offender, text)
        if match.group("name"):
            word = match.group("name")
            kind = word if word in ("path", "end") else "name"
            tokens.append(_Token(kind, word, match.start("name")))
        elif match.group("number"):
            tokens.append(
                _Token("number", match.group("number"), match.start("number"))
            )
        else:
            punct = match.group("punct")
            tokens.append(_Token(punct, punct, match.start("punct")))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token], text: str) -> None:
        self._tokens = tokens
        self._text = text
        self._index = 0

    def _peek(self) -> _Token:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return _Token("eof", "", len(self._text))

    def _advance(self) -> _Token:
        token = self._peek()
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token.kind != kind:
            raise PathSyntaxError(
                "expected {!r}, found {!r}".format(kind, token.value or "end of input"),
                token.position,
                self._text,
            )
        return self._advance()

    # path ::= 'path' [NUMBER ':'] selection 'end'
    def parse_path(self) -> PathExpr:
        self._expect("path")
        multiplicity = 1
        if self._peek().kind == "number":
            token = self._advance()
            multiplicity = int(token.value)
            if multiplicity < 1:
                raise PathSyntaxError(
                    "numeric operator must be >= 1", token.position, self._text
                )
            self._expect(":")
        body = self.parse_selection()
        self._expect("end")
        return PathExpr(body, multiplicity)

    # selection ::= sequence (',' sequence)*
    def parse_selection(self) -> PathNode:
        alternatives = [self.parse_sequence()]
        while self._peek().kind == ",":
            self._advance()
            alternatives.append(self.parse_sequence())
        return _normalize(Selection(tuple(alternatives)))

    # sequence ::= element (';' element)*
    def parse_sequence(self) -> PathNode:
        elements = [self.parse_element()]
        while self._peek().kind == ";":
            self._advance()
            elements.append(self.parse_element())
        return _normalize(Sequence(tuple(elements)))

    # element ::= NAME | '{' selection '}' | '(' selection ')'
    def parse_element(self) -> PathNode:
        token = self._peek()
        if token.kind == "name":
            self._advance()
            return Name(token.value)
        if token.kind == "{":
            self._advance()
            body = self.parse_selection()
            self._expect("}")
            return Burst(body)
        if token.kind == "(":
            self._advance()
            body = self.parse_selection()
            self._expect(")")
            return body
        raise PathSyntaxError(
            "expected operation name, '{{' or '('; found {!r}".format(
                token.value or "end of input"
            ),
            token.position,
            self._text,
        )


def parse_path(text: str) -> PathExpr:
    """Parse one ``path ... end`` declaration.

    >>> parse_path("path { read } , write end").unparse()
    'path { read } , write end'
    """
    parser = _Parser(tokenize(text), text)
    result = parser.parse_path()
    trailing = parser._peek()
    if trailing.kind != "eof":
        raise PathSyntaxError(
            "trailing input after 'end'", trailing.position, text
        )
    return result


def parse_paths(text: str) -> List[PathExpr]:
    """Parse a program of several path declarations, in order.

    Declarations may be separated by arbitrary whitespace/newlines::

        path writeattempt end
        path { requestread } , requestwrite end
    """
    tokens = tokenize(text)
    parser = _Parser(tokens, text)
    paths: List[PathExpr] = []
    while parser._peek().kind != "eof":
        paths.append(parser.parse_path())
    if not paths:
        raise PathSyntaxError("no path declarations found", 0, text)
    return paths
