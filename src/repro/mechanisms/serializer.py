"""Serializers (substrate S4).

Implements the serializer construct of Atkinson & Hewitt, "Synchronization
and Proof Techniques for Serializers" (IEEE TSE 1979) — the third mechanism
evaluated in §5.2 of the paper.  The construct's distinguishing features, all
reproduced here:

* **Possession** — at most one process executes serializer code at a time,
  like a monitor, but possession is released *automatically* at every wait
  point (no explicit ``signal``).
* **Queues with guarantees** — ``enqueue(q, guarantee)`` releases possession
  and parks the caller in FIFO queue ``q``; it resumes (with possession) once
  it is at the *head* of its queue and its guarantee predicate evaluates
  true.  Guarantees are re-evaluated automatically whenever possession is
  released: this is the *automatic signalling* that, per the paper, separates
  request-time from request-type information (§5.2).
* **Crowds** — ``join_crowd(c)`` records the caller as *using the resource*
  and releases possession; ``leave_crowd(c)`` re-acquires possession and
  removes the caller.  Crowds hold synchronization-state information (T4)
  without user-maintained counts, and the join/leave pattern is what avoids
  the nested-monitor-call problem (experiment E7).

Dispatch order when possession frees up: processes re-entering from a crowd
first, then queue heads with true guarantees (queues in creation order), then
the entry queue — all FIFO within a class.

Crash semantics (DESIGN.md "Fault model"): the serializer is **fault-
containing**.  A dead possessor releases possession and dispatch continues;
dead entry/queue/rejoin waiters are dequeued; a dead crowd member leaves the
crowd, so guarantees like ``crowd.empty`` become true again.  Timed
variants: ``enter(timeout=...)`` gives up from the entry queue;
``enqueue(timeout=...)`` re-acquires possession through the entry queue and
*then* raises :class:`WaitTimeout` — the caller owns possession in the
``except`` block and must still ``exit()``.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional, Set, Tuple

from ..runtime.errors import IllegalOperationError, WaitTimeout
from ..runtime.process import SimProcess
from ..runtime.scheduler import Scheduler

Guarantee = Optional[Callable[[], bool]]


class SerializerQueue:
    """A FIFO queue inside a serializer; each waiter carries a guarantee."""

    def __init__(self, serializer: "Serializer", name: str) -> None:
        self._serializer = serializer
        self.name = name
        self._waiters: List[Tuple[SimProcess, Guarantee]] = []

    def __len__(self) -> int:
        return len(self._waiters)

    def _probe(self) -> None:
        self._serializer._sched.probe(
            "queue",
            "queue {}.{}".format(self._serializer.name, self.name),
            len(self._waiters),
        )

    @property
    def empty(self) -> bool:
        """True when no process waits here (usable inside guarantees)."""
        return not self._waiters

    def head_eligible(self) -> bool:
        """True when the queue head exists and its guarantee holds."""
        if not self._waiters:
            return False
        __, guarantee = self._waiters[0]
        return guarantee is None or bool(guarantee())

    def _push(self, proc: SimProcess, guarantee: Guarantee) -> None:
        self._waiters.append((proc, guarantee))
        self._probe()

    def _pop(self) -> SimProcess:
        proc, __ = self._waiters.pop(0)
        self._probe()
        return proc

    def _discard(self, proc: SimProcess) -> None:
        """Drop ``proc`` wherever it waits (crash / timeout dequeue)."""
        for index, (waiter, __) in enumerate(self._waiters):
            if waiter is proc:
                del self._waiters[index]
                self._probe()
                return


class SerializerPriorityQueue(SerializerQueue):
    """A queue ordered by caller-supplied rank instead of arrival.

    §5.2 records that the first serializer version "had essentially been
    created around the readers-writers problems" and that "local variables
    and priority queues had to be added later" for parameter-based problems
    (disk scheduler, alarm clock).  This class is that later addition: pass
    ``priority`` to :meth:`Serializer.enqueue`; the *head* is the waiter
    with the smallest rank (ties break by arrival).
    """

    def __init__(self, serializer: "Serializer", name: str) -> None:
        super().__init__(serializer, name)
        self._arrivals = 0

    def _push(self, proc: SimProcess, guarantee: Guarantee,
              priority: int = 0) -> None:
        self._arrivals += 1
        self._waiters.append((priority, self._arrivals, proc, guarantee))
        self._waiters.sort(key=lambda item: (item[0], item[1]))
        self._probe()

    def _pop(self) -> SimProcess:
        __, __, proc, __ = self._waiters.pop(0)
        self._probe()
        return proc

    def _discard(self, proc: SimProcess) -> None:
        for index, (__, __, waiter, __) in enumerate(self._waiters):
            if waiter is proc:
                del self._waiters[index]
                self._probe()
                return

    def head_eligible(self) -> bool:
        if not self._waiters:
            return False
        __, __, __, guarantee = self._waiters[0]
        return guarantee is None or bool(guarantee())

    def head_priority(self) -> Optional[int]:
        """Rank of the next waiter to be released, or ``None`` if empty."""
        if not self._waiters:
            return None
        return self._waiters[0][0]


class GuaranteeOrderQueue(SerializerQueue):
    """A queue released in *guarantee* order rather than strict FIFO: the
    earliest-arrived waiter whose guarantee holds is eligible, even if a
    waiter ahead of it is still blocked.

    Used for disciplines whose service order is computed dynamically from
    request parameters (the disk elevator), where exactly one waiter's
    guarantee is true at a time.  Like :class:`SerializerPriorityQueue`,
    this is a later-version extension: the original construct's strict-FIFO
    queues cannot reorder by parameter (§5.2's observation that parameter
    handling "had to be added later").
    """

    def head_eligible(self) -> bool:
        return self._find_eligible() is not None

    def _find_eligible(self) -> Optional[int]:
        for index, (__, guarantee) in enumerate(self._waiters):
            if guarantee is None or bool(guarantee()):
                return index
        return None

    def _pop(self) -> SimProcess:
        index = self._find_eligible()
        if index is None:  # pragma: no cover - dispatch checks eligibility
            raise IllegalOperationError("pop from ineligible queue")
        proc, __ = self._waiters.pop(index)
        self._probe()
        return proc


class Crowd:
    """The set of processes currently using the resource.

    A crowd is the serializer's built-in representation of synchronization
    state (information type T4): ``crowd.empty`` replaces the explicit
    occupancy counters a monitor solution must maintain.
    """

    def __init__(self, serializer: "Serializer", name: str) -> None:
        self._serializer = serializer
        self.name = name
        self._label = "crowd {}.{}".format(serializer.name, name)
        self._members: List[SimProcess] = []

    def __len__(self) -> int:
        return len(self._members)

    @property
    def empty(self) -> bool:
        """True when no process is in the crowd (usable inside guarantees)."""
        return not self._members

    def member_names(self) -> List[str]:
        """Names of current members, in join order."""
        return [p.name for p in self._members]


class Serializer:
    """The serializer construct: automatic-signalling protected access.

    Args:
        sched: owning scheduler.
        name: trace label.
    """

    def __init__(self, sched: Scheduler, name: str = "serializer") -> None:
        self._sched = sched
        self.name = name
        self._label = "serializer {}".format(name)
        self._poss_key = ("ser_poss", id(self))
        self._entry_key = ("ser_entry", id(self))
        self._rejoin_key = ("ser_rejoin", id(self))
        self._possessor: Optional[SimProcess] = None
        self._entry: List[SimProcess] = []
        self._rejoin: List[SimProcess] = []  # leave_crowd waiters (top priority)
        self._queues: List[SerializerQueue] = []
        self._crowds: List[Crowd] = []
        self._timed_out: Set[int] = set()  # pids re-entering after a timeout
        self._degraded = False  # priority queues serve FIFO when set

    # ------------------------------------------------------------------
    # Construction of sub-objects
    # ------------------------------------------------------------------
    def queue(self, name: str) -> SerializerQueue:
        """Declare a queue; earlier-declared queues have dispatch priority."""
        q = SerializerQueue(self, name)
        self._queues.append(q)
        return q

    def priority_queue(self, name: str) -> SerializerPriorityQueue:
        """Declare a rank-ordered queue (the later-version extension §5.2
        mentions; see :class:`SerializerPriorityQueue`)."""
        q = SerializerPriorityQueue(self, name)
        self._queues.append(q)
        return q

    def guarantee_order_queue(self, name: str) -> GuaranteeOrderQueue:
        """Declare a guarantee-order queue (see
        :class:`GuaranteeOrderQueue`)."""
        q = GuaranteeOrderQueue(self, name)
        self._queues.append(q)
        return q

    def crowd(self, name: str) -> Crowd:
        """Declare a crowd."""
        c = Crowd(self, name)
        self._crowds.append(c)
        return c

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def possessor_name(self) -> Optional[str]:
        """Name of the process holding possession, if any."""
        return self._possessor.name if self._possessor else None

    def _probe_entry(self) -> None:
        self._sched.probe("serializer", "{}.entry".format(self._label),
                          len(self._entry))

    def _probe_rejoin(self) -> None:
        self._sched.probe("serializer", "{}.rejoin".format(self._label),
                          len(self._rejoin))

    def _probe_crowd(self, crowd: "Crowd") -> None:
        self._sched.probe("crowd", crowd._label, len(crowd._members))

    def _require_possession(self, what: str) -> SimProcess:
        me = self._sched.current
        if me is None or self._possessor is not me:
            raise IllegalOperationError(
                "{} called without possession of {} (possessor={})".format(
                    what, self.name, self.possessor_name
                )
            )
        return me

    # ------------------------------------------------------------------
    # Possession bookkeeping (crash semantics live here)
    # ------------------------------------------------------------------
    def _set_possessor(self, proc: SimProcess) -> None:
        self._possessor = proc
        self._sched.note_hold(self._label, proc)
        self._sched.register_cleanup(
            self._poss_key, self._on_possessor_death, proc=proc
        )

    def _release_possession(self, proc: SimProcess) -> None:
        self._sched.unregister_cleanup(self._poss_key, proc)
        self._sched.note_release(self._label, proc)
        self._possessor = None

    def _on_possessor_death(self, proc: SimProcess) -> None:
        """A dead possessor releases the serializer — dispatch continues."""
        if self._possessor is not proc:
            return
        self._sched.log("leave", self.name, "crash_release", proc=proc)
        self._sched.note_release(self._label, proc)
        self._possessor = None
        self._dispatch()

    def _on_entry_death(self, proc: SimProcess) -> None:
        if proc in self._entry:
            self._entry.remove(proc)
            self._probe_entry()

    def _on_rejoin_death(self, proc: SimProcess) -> None:
        if proc in self._rejoin:
            self._rejoin.remove(proc)
            self._probe_rejoin()

    def _on_crowd_death(self, crowd: Crowd, proc: SimProcess) -> None:
        """A dead crowd member leaves the crowd, so guarantees such as
        ``crowd.empty`` can become true again; re-dispatch if idle."""
        if proc not in crowd._members:
            return
        crowd._members.remove(proc)
        self._probe_crowd(crowd)
        self._sched.note_release(crowd._label, proc)
        self._sched.log("leave_crowd", crowd.name, "crash", proc=proc)
        if self._possessor is None:
            self._dispatch()

    # ------------------------------------------------------------------
    # Recovery hooks (lease reclamation / graceful degradation)
    # ------------------------------------------------------------------
    def crash_reclaim(self, proc: SimProcess) -> Optional[str]:
        """Lease reclamation.  The serializer is already fault-containing
        (possessor death releases, dead waiters and crowd members are
        dequeued), so this is a defensive sweep plus a crowd check for the
        supervisor's uniform reclaim pass."""
        if self._possessor is proc:
            self._on_possessor_death(proc)
            return "released"
        if proc in self._entry:
            self._on_entry_death(proc)
            return "dequeued"
        if proc in self._rejoin:
            self._on_rejoin_death(proc)
            return "dequeued"
        for crowd in self._crowds:
            if proc in crowd._members:
                self._on_crowd_death(crowd, proc)
                return "left crowd {}".format(crowd.name)
        return None

    def degrade(self) -> Optional[str]:
        """Graceful degradation: priority queues stop honouring ranks and
        release waiters in arrival order.  Possession exclusion and
        guarantee evaluation are untouched."""
        if self._degraded:
            return None
        self._degraded = True
        return "priority queues -> fifo"

    # ------------------------------------------------------------------
    # Possession protocol
    # ------------------------------------------------------------------
    def enter(self, timeout: Optional[int] = None) -> Generator:
        """Gain possession of the serializer (entry has lowest priority).

        ``timeout`` bounds the entry wait in virtual time; expiry leaves the
        queue and raises :class:`WaitTimeout`."""
        yield from self._sched.checkpoint()
        me = self._sched.current
        if self._possessor is me:
            raise IllegalOperationError(
                "{} re-entered serializer {}".format(me.name, self.name)
            )
        self._entry.append(me)
        self._probe_entry()
        if self._possessor is None and self._grant_next(me):
            self._sched.log("enter", self.name)
            return
        self._sched.register_cleanup(self._entry_key, self._on_entry_death)
        try:
            yield from self._sched.park(
                "enter({})".format(self.name), self.name,
                timeout=timeout,
                on_timeout=lambda: self._on_entry_death(me),
                resource=self._label,
            )
        finally:
            self._sched.unregister_cleanup(self._entry_key, me)
        self._sched.log("enter", self.name, "handoff")

    def exit(self) -> None:
        """Release possession and leave; triggers automatic dispatch."""
        me = self._require_possession("exit")
        self._sched.log("leave", self.name)
        self._release_possession(me)
        self._dispatch()

    def enqueue(
        self,
        q: SerializerQueue,
        guarantee: Guarantee = None,
        priority: int = 0,
        timeout: Optional[int] = None,
    ) -> Generator:
        """Release possession; wait until head of ``q`` with a true guarantee.

        Returns holding possession again.  ``guarantee`` is a zero-argument
        predicate evaluated by the serializer's automatic dispatcher; it may
        read crowds, queues, and any user state, but must not block.
        ``priority`` is honoured only by :class:`SerializerPriorityQueue`
        (smaller ranks released first); plain queues ignore it.

        ``timeout`` bounds the wait in virtual time.  On expiry the waiter
        abandons ``q``, re-acquires possession through the entry queue, and
        *then* raises :class:`WaitTimeout` — the caller holds possession in
        the ``except`` block and must still ``exit()``.
        """
        me = self._require_possession("enqueue({})".format(q.name))
        self._sched.log("wait", q.name)
        if isinstance(q, SerializerPriorityQueue):
            if self._degraded:
                priority = 0  # degraded mode: arrival order only
            q._push(me, guarantee, priority)
        else:
            q._push(me, guarantee)
        self._release_possession(me)
        if self._grant_next(me):
            # Our own guarantee already held and nobody outranked us.
            self._sched.log("proceed", q.name, "immediate")
            return
        queue_key = ("ser_q", id(q))
        self._sched.register_cleanup(queue_key, q._discard)
        try:
            yield from self._sched.park(
                "enqueue({}.{})".format(self.name, q.name), q.name,
                timeout=timeout,
                on_timeout=lambda: self._requeue_timed_out(q, me),
                resource="queue {}.{}".format(self.name, q.name),
            )
        finally:
            self._sched.unregister_cleanup(queue_key, me)
        if me.pid in self._timed_out:
            self._timed_out.discard(me.pid)
            raise WaitTimeout("queue {}.{}".format(self.name, q.name), timeout)
        self._sched.log("proceed", q.name, "handoff")

    def _requeue_timed_out(self, q: SerializerQueue, proc: SimProcess) -> bool:
        """Timer callback: abandon the queue, re-enter for possession.

        Returns ``True`` so the scheduler does not wake the process itself —
        dispatch will, once possession is available, and :meth:`enqueue`
        raises only after the caller holds possession again."""
        q._discard(proc)
        self._timed_out.add(proc.pid)
        self._entry.append(proc)
        self._probe_entry()
        if self._possessor is None:
            self._dispatch()
        return True

    def join_crowd(self, crowd: Crowd) -> Generator:
        """Join ``crowd`` and release possession (resource access begins).

        The body between ``join_crowd`` and ``leave_crowd`` runs *outside*
        the serializer, so other processes may enter meanwhile — this is the
        concurrency (and nested-resource safety) monitors lack.
        """
        me = self._require_possession("join_crowd({})".format(crowd.name))
        crowd._members.append(me)
        self._probe_crowd(crowd)
        self._sched.note_hold(crowd._label, me)
        self._sched.register_cleanup(
            ("ser_crowd", id(crowd)),
            lambda proc: self._on_crowd_death(crowd, proc),
        )
        self._sched.log("join_crowd", crowd.name)
        self._release_possession(me)
        self._dispatch()
        # Joining never blocks; the caller continues outside possession.
        yield from self._sched.checkpoint()

    def leave_crowd(self, crowd: Crowd) -> Generator:
        """Re-acquire possession, then leave ``crowd``.

        Re-joining processes outrank every queue: they hold resource results
        and must be able to update state and depart promptly.
        """
        me = self._sched.current
        if me not in crowd._members:
            raise IllegalOperationError(
                "{} left crowd {} it never joined".format(me.name, crowd.name)
            )
        self._rejoin.append(me)
        self._probe_rejoin()
        if self._possessor is None and self._grant_next(me):
            pass  # possession granted synchronously
        else:
            self._sched.register_cleanup(
                self._rejoin_key, self._on_rejoin_death
            )
            try:
                yield from self._sched.park(
                    "rejoin({})".format(self.name), crowd.name,
                    resource=self._label,
                )
            finally:
                self._sched.unregister_cleanup(self._rejoin_key, me)
        crowd._members.remove(me)
        self._probe_crowd(crowd)
        self._sched.note_release(crowd._label, me)
        self._sched.unregister_cleanup(("ser_crowd", id(crowd)), me)
        self._sched.log("leave_crowd", crowd.name)

    # ------------------------------------------------------------------
    # Automatic dispatch
    # ------------------------------------------------------------------
    def _select_next(self) -> Optional[SimProcess]:
        """Pick who gets possession next; ``None`` when nobody is eligible."""
        if self._rejoin:
            nxt = self._rejoin.pop(0)
            self._probe_rejoin()
            return nxt
        for q in self._queues:
            if q.head_eligible():
                return q._pop()
        if self._entry:
            nxt = self._entry.pop(0)
            self._probe_entry()
            return nxt
        return None

    def _grant_next(self, me: SimProcess) -> bool:
        """Run one dispatch round; return True when ``me`` won possession
        synchronously (so the caller must not park)."""
        nxt = self._select_next()
        if nxt is None:
            return False
        self._set_possessor(nxt)
        if nxt is me:
            return True
        self._sched.unpark(nxt)
        return False

    def _dispatch(self) -> None:
        """Grant possession to the next eligible process, if any."""
        nxt = self._select_next()
        if nxt is None:
            return
        self._set_possessor(nxt)
        self._sched.unpark(nxt)
