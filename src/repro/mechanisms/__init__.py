"""The synchronization mechanisms under evaluation (substrates S3–S6).

Three high-level constructs, each built from scratch on the runtime:

* :class:`Monitor` / :class:`Condition` — Hoare monitors (§5.2).
* :class:`Serializer` / :class:`SerializerQueue` / :class:`Crowd` —
  Atkinson–Hewitt serializers (§5.2).
* :mod:`repro.mechanisms.pathexpr` — Campbell–Habermann path expressions and
  extended variants (§5.1).

Plain semaphores (the baseline the paper says these mechanisms must improve
on) live in :mod:`repro.runtime.primitives`.
"""

from .ccr import SharedRegion
from .eventcount import EventCount, Sequencer
from .channels import Channel, ReceiveOp, SendOp, select
from .monitor import HOARE, MESA, Condition, Monitor
from .pathexpr import (
    GuardedPathResource,
    PathCompileError,
    PathResource,
    PathSyntaxError,
    parse_path,
    parse_paths,
)
from .serializer import Crowd, Serializer, SerializerPriorityQueue, SerializerQueue

__all__ = [
    "Channel",
    "Condition",
    "Crowd",
    "EventCount",
    "ReceiveOp",
    "SendOp",
    "Sequencer",
    "SharedRegion",
    "select",
    "GuardedPathResource",
    "HOARE",
    "MESA",
    "Monitor",
    "PathCompileError",
    "PathResource",
    "PathSyntaxError",
    "Serializer",
    "SerializerPriorityQueue",
    "SerializerQueue",
    "parse_path",
    "parse_paths",
]
