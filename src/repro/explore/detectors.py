"""Pluggable run checkers: race (conflicting-access) and lost-wakeup
detection over explored schedules.

A ``Checker`` is anything callable as ``check(run) -> List[str]`` (empty =
ok), the same contract the trace oracles satisfy — so detectors, oracles,
and ad-hoc lambdas compose freely via :func:`compose_checkers` and plug
into :class:`~repro.explore.engine.ExplorationEngine`, the parallel
frontier, and :func:`~repro.verify.chaos.chaos_explore` alike.

Unlike the problem oracles (which check a discipline: FCFS, alternation,
priority), these two detect *mechanism-level* pathologies that any problem
can exhibit:

* :class:`ConflictingAccessChecker` — two operations active on the same
  resource at once where at least one is a declared writer: the
  schedule-level analogue of a data race.
* :class:`LostWakeupChecker` — a run ends with a process parked forever
  even though a wakeup-capable event on what it waits for happened *after*
  it blocked: the classic missed-signal bug (signal consumed by nobody,
  V dropped, notify before wait).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..runtime.trace import RunResult
from ..verify.oracles import check_mutual_exclusion

Checker = object  # documented protocol: __call__(RunResult) -> List[str]

#: Event kinds that (re-)enable a waiter on the object they name.  Mechanism
#: vocabulary: semaphore V, condition signal/notify, monitor/serializer
#: possession transfer, channel completion.
WAKE_KINDS = ("v", "signal", "notify", "release", "exit", "leave",
              "unblocked", "op_end")


def compose_checkers(*checkers) -> "Checker":
    """One checker that concatenates the messages of many."""

    def check(run: RunResult) -> List[str]:
        messages: List[str] = []
        for checker in checkers:
            messages.extend(checker(run))
        return messages

    return check


class ConflictingAccessChecker:
    """Race detector: flags overlapping operations on one resource where at
    least one side is a writer.

    Args:
        resource: the resource name operations are logged under
            (``<resource>.<op>`` objects).
        writes: op names that conflict with everything.
        reads: op names that conflict only with writes (may overlap each
            other).  Ops outside both sets are ignored.
    """

    def __init__(
        self,
        resource: str,
        writes: Sequence[str],
        reads: Sequence[str] = (),
    ) -> None:
        self.resource = resource
        self.writes = tuple(writes)
        self.reads = tuple(reads)

    def __call__(self, run: RunResult) -> List[str]:
        return [
            "conflicting access: " + message
            for message in check_mutual_exclusion(
                run.trace, self.resource,
                exclusive_ops=self.writes, shared_ops=self.reads,
            )
        ]

    def __repr__(self) -> str:
        return "ConflictingAccessChecker({!r}, writes={!r}, reads={!r})".format(
            self.resource, self.writes, self.reads
        )


class SplitBrainChecker:
    """Distributed-safety detector: flags runs where the dist layer's
    exclusivity invariants broke — two overlapping quorum-lease holders
    (``no-two-holders-across-partition``) or two ``leader_elected`` events
    in one term (``at-most-one-leader-per-term``).

    A thin composition of the partition oracles
    (:mod:`repro.verify.partition`) into the checker protocol, so split
    brain plugs into :class:`~repro.explore.engine.ExplorationEngine` and
    :func:`~repro.verify.chaos.chaos_explore` like any other detector.
    Runs without dist-layer events trivially pass.
    """

    def __call__(self, run: RunResult) -> List[str]:
        from ..verify.partition import (check_at_most_one_leader,
                                        check_lease_exclusion)

        return [
            "split brain: " + message
            for message in (check_lease_exclusion(run)
                            + check_at_most_one_leader(run))
        ]

    def __repr__(self) -> str:
        return "SplitBrainChecker()"


class LostWakeupChecker:
    """Flags processes parked forever whose block the wait-for graph cannot
    explain — the missed-signal signature.

    A run that ends with blocked survivors is either a genuine deadlock
    (what the waiter needs is held by another blocked process, a cycle, or
    a dead process — the wait-for graph has an edge out of the waiter) or a
    *lost wakeup*: nobody holds what it waits for, yet wake-capable traffic
    (:data:`WAKE_KINDS`) on that object shows the signal existed and landed
    nowhere — dropped, misrouted, or fired before the waiter parked.  A
    blocked process with neither an explaining edge nor any wake traffic is
    plain starvation (never signalled), which the liveness oracles own, so
    it is not reported here.

    Args:
        ignore: process names to exempt (e.g. a server meant to idle).
    """

    def __init__(self, ignore: Iterable[str] = ()) -> None:
        self.ignore = frozenset(ignore)

    def __call__(self, run: RunResult) -> List[str]:
        messages: List[str] = []
        graph = run.graph
        for name in run.blocked:
            if name in self.ignore:
                continue
            if graph is not None and graph.edges_from(name):
                continue  # held by someone (alive or dead): a deadlock
            parked = run.trace.last(kind="blocked", pname=name)
            if parked is None or not parked.obj:
                continue
            waited_on = parked.obj
            wake_traffic = [
                ev for ev in run.trace
                if ev.kind in WAKE_KINDS
                and ev.pname != name
                and (waited_on in ev.obj or (ev.obj and ev.obj in waited_on))
            ]
            if wake_traffic:
                last = wake_traffic[-1]
                messages.append(
                    "lost wakeup: {} parked on {!r} (seq {}) with no holder "
                    "to wait out, but {} wake-capable event(s) on it exist "
                    "(last: seq {} {} by {})".format(
                        name, waited_on, parked.seq, len(wake_traffic),
                        last.seq, last.kind, last.pname,
                    )
                )
        return messages

    def __repr__(self) -> str:
        return "LostWakeupChecker(ignore={!r})".format(sorted(self.ignore))
